"""A continuous characterization service.

The pipeline in :mod:`repro.pipeline` is batch-shaped: replay a trace, get
a result.  A deployed system (Fig. 3) instead runs *forever*: events arrive
as the kernel emits them, consumers ask for the current picture whenever
they like, and the learned state must survive restarts.  This module wraps
monitor + synopsis engine into that service shape:

* :meth:`CharacterizationService.submit` accepts block I/O events
  (from blktrace, a replayer, or tests) and drives the whole stack;
  :meth:`submit_many` is the batched form -- events flow through the
  monitor's amortized batch path and finished transactions are handed to
  the engine as one batch (optionally processed thread-per-shard when the
  engine is sharded);
* ``shards > 1`` backs the service with a
  :class:`~repro.engine.sharded.ShardedAnalyzer` instead of a single
  analyzer -- same queries, hash-partitioned tables;
* :meth:`snapshot` returns the current frequent correlations (optionally
  by R/W kind) without stopping ingestion;
* :meth:`checkpoint` / :meth:`restore` persist the synopsis -- format v2
  for a single analyzer, format v3 (per-shard CRC envelopes) for a
  sharded engine (see :mod:`repro.core.serialize` and
  :mod:`repro.engine.checkpoint`);
* registered observers are notified every ``snapshot_interval``
  transactions -- the hook an automatic optimization module attaches to;
* the whole stack publishes telemetry through one injectable
  :class:`~repro.telemetry.metrics.MetricsRegistry` (``registry=``):
  monitor and synopsis counters via collectors, submit/batch latency
  histograms, and per-stage spans (see ``docs/observability.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    BinaryIO,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from .core.config import AnalyzerConfig
from .core.extent import ExtentPair
from .core.typed import CorrelationKind, TypedOnlineAnalyzer
from .engine.checkpoint import as_typed_engine, dump_engine, load_engine
from .engine.sharded import ShardedAnalyzer
from .monitor.events import BlockIOEvent
from .monitor.monitor import (
    DEFAULT_MAX_TRANSACTION_SIZE,
    ClockPolicy,
    Monitor,
)
from .monitor.transaction import Transaction
from .monitor.window import DynamicLatencyWindow, WindowPolicy
from .telemetry.metrics import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    get_default_registry,
)
from .telemetry.tracing import StageTimer

SnapshotObserver = Callable[["ServiceSnapshot"], None]

#: The engine types a service may be backed by.
ServiceEngine = Union[TypedOnlineAnalyzer, ShardedAnalyzer]


@dataclass
class ServiceSnapshot:
    """The service's view of the workload at one instant."""

    transactions: int
    events: int
    frequent_pairs: List[Tuple[ExtentPair, int]]
    kind_summary: Dict[CorrelationKind, int]

    @property
    def correlations(self) -> int:
        return len(self.frequent_pairs)


class CharacterizationService:
    """Long-running ingest -> characterize -> notify loop."""

    def __init__(
        self,
        config: Optional[AnalyzerConfig] = None,
        window: Optional[WindowPolicy] = None,
        max_transaction_size: int = DEFAULT_MAX_TRANSACTION_SIZE,
        dedup: bool = True,
        min_support: int = 5,
        snapshot_interval: int = 1000,
        clock_policy: ClockPolicy = ClockPolicy.REORDER,
        max_clock_skew: Optional[float] = None,
        shards: int = 1,
        parallel_shards: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        """``shards`` selects the synopsis engine: 1 keeps the classic
        single typed analyzer; N > 1 hash-partitions the tables across N
        shard synopses at ``capacity / N`` each.  ``parallel_shards``
        additionally processes batched ingest (:meth:`submit_many`) with
        one worker thread per shard.

        ``registry`` selects the telemetry registry for the whole stack
        (monitor, engine, and the service's own latency histograms);
        ``None`` uses the process-local default, and
        :data:`~repro.telemetry.NULL_REGISTRY` disables telemetry with
        near-zero hot-path cost.
        """
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.min_support = min_support
        self.snapshot_interval = snapshot_interval
        self.shards = shards
        self.parallel_shards = parallel_shards
        registry = registry if registry is not None else \
            get_default_registry()
        self.registry = registry
        config = config or AnalyzerConfig()
        self.analyzer: ServiceEngine = (
            TypedOnlineAnalyzer(config, registry=registry) if shards == 1
            else ShardedAnalyzer(config, shards=shards, registry=registry)
        )
        self.monitor = Monitor(
            window=window if window is not None else DynamicLatencyWindow(),
            max_transaction_size=max_transaction_size,
            dedup=dedup,
            sinks=[self._on_transaction],
            clock_policy=clock_policy,
            max_clock_skew=max_clock_skew,
            registry=registry,
        )
        self._observers: List[SnapshotObserver] = []
        self._transactions = 0
        self._batch_buffer: Optional[List[Transaction]] = None
        self._closed = False
        self._bind_metrics(registry)

    # -- telemetry ----------------------------------------------------------

    def _bind_metrics(self, registry: MetricsRegistry) -> None:
        self._stage_timer = StageTimer(
            registry, stages=("monitor", "analyze", "notify")
        )
        if not registry.enabled:
            self._submit_hist = None
            return
        self._submit_hist = registry.histogram(
            "repro_service_submit_latency_seconds",
            "Wall time per ingest call",
            labelnames=("path",),
        ).labels(path="event")
        self._batch_hist = registry.histogram(
            "repro_service_submit_latency_seconds",
            "Wall time per ingest call",
            labelnames=("path",),
        ).labels(path="batch")
        self._batch_size_hist = registry.histogram(
            "repro_service_batch_events",
            "Events per submit_many call",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._snapshots_counter = registry.counter(
            "repro_service_snapshots_total",
            "Snapshots computed (periodic notifications and queries)",
        )
        self._checkpoint_counter = registry.counter(
            "repro_service_checkpoints_total",
            "Checkpoint operations",
            labelnames=("op",),
        )
        self._transactions_counter = registry.counter(
            "repro_service_transactions_total",
            "Transactions the service has characterized",
        )
        self._observers_gauge = registry.gauge(
            "repro_service_observers", "Registered snapshot observers"
        )
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        self._transactions_counter.set_total(self._transactions)
        self._observers_gauge.set(len(self._observers))

    # -- ingestion --------------------------------------------------------------

    def submit(self, event: BlockIOEvent) -> None:
        """Feed one block-layer issue event."""
        hist = self._submit_hist
        if hist is None:  # null registry: no clock reads on the hot path
            self.monitor.on_event(event)
            return
        started = time.perf_counter()
        self.monitor.on_event(event)
        hist.observe(time.perf_counter() - started)

    def submit_many(
        self,
        events: Iterable[BlockIOEvent],
        parallel: Optional[bool] = None,
    ) -> int:
        """Feed a batch of issue events; returns how many were consumed.

        The batch flows through the monitor's amortized
        :meth:`~repro.monitor.monitor.Monitor.on_events` path, and the
        finished transactions are handed to the engine as one
        :meth:`process_batch` call rather than one callback per
        transaction.  ``parallel`` overrides the service-level
        ``parallel_shards`` default (it only has an effect on a sharded
        engine).  Snapshot observers fire at most once per batch, after
        the whole batch lands, if one or more snapshot intervals were
        crossed.
        """
        if parallel is None:
            parallel = self.parallel_shards
        batch_started = time.perf_counter() if self._submit_hist is not None \
            else None
        batch: List[Transaction] = []
        self._batch_buffer = batch
        try:
            with self._stage_timer.span("monitor"):
                count = self.monitor.on_events(events)
        finally:
            self._batch_buffer = None
        if batch:
            self._process_batch(batch, parallel)
        if batch_started is not None:
            self._batch_hist.observe(time.perf_counter() - batch_started)
            self._batch_size_hist.observe(count)
        return count

    def flush(self) -> None:
        """Close any open transaction (e.g. before a checkpoint)."""
        self.monitor.flush()

    def close(self) -> None:
        """Shut the service down: flush the final open transaction window.

        Without this, events that arrived after the last window closed --
        the tail of every real stream -- would sit in the monitor's open
        transaction forever and never reach the analyzer.  Idempotent;
        the service remains queryable (and even ingestable) afterwards,
        ``close`` only guarantees nothing is left in flight *now*.
        """
        self.flush()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def transactions(self) -> int:
        """Transactions characterized so far (cheap, no snapshot)."""
        return self._transactions

    def __enter__(self) -> "CharacterizationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _on_transaction(self, transaction: Transaction) -> None:
        if self._batch_buffer is not None:
            self._batch_buffer.append(transaction)
            return
        self.analyzer.process_transaction(transaction)
        self._transactions += 1
        if self._transactions % self.snapshot_interval == 0:
            self._notify()

    def _process_batch(self, batch: List[Transaction],
                       parallel: bool) -> None:
        with self._stage_timer.span("analyze"):
            process_batch = getattr(self.analyzer, "process_batch", None)
            if process_batch is not None:
                process_batch(batch, parallel=parallel)
            else:  # a bare analyzer injected by a subclass/test
                for transaction in batch:
                    self.analyzer.process_transaction(transaction)
        interval = self.snapshot_interval
        before = self._transactions
        self._transactions += len(batch)
        if self._transactions // interval != before // interval:
            self._notify()

    def _notify(self) -> None:
        if not self._observers:
            return
        with self._stage_timer.span("notify"):
            snapshot = self.snapshot()
            for observer in self._observers:
                observer(snapshot)

    # -- queries -------------------------------------------------------------------

    def snapshot(self, kind: Optional[CorrelationKind] = None
                 ) -> ServiceSnapshot:
        """Current frequent correlations (optionally one R/W kind only)."""
        if self._submit_hist is not None:
            self._snapshots_counter.inc()
        if kind is None:
            frequent = self.analyzer.frequent_pairs(self.min_support)
        else:
            frequent = self.analyzer.frequent_pairs_of_kind(
                kind, self.min_support
            )
        return ServiceSnapshot(
            transactions=self._transactions,
            events=self.monitor.stats.events_seen,
            frequent_pairs=frequent,
            kind_summary=self.analyzer.kind_summary(),
        )

    def observe(self, observer: SnapshotObserver) -> None:
        """Register a periodic snapshot observer (the optimization hook)."""
        self._observers.append(observer)

    # -- persistence -----------------------------------------------------------------

    def checkpoint(self, stream: BinaryIO) -> int:
        """Persist the synopsis; returns bytes written.

        Open transactions are flushed first so nothing in flight is lost.
        A sharded engine is written as a format-v3 checkpoint (one CRC
        envelope per shard); a single analyzer keeps format v2.  Note the
        typed sidecar (R/W mixes) is rebuilt from future traffic after a
        restore; the tables themselves restore exactly.
        """
        self.flush()
        if self._submit_hist is not None:
            self._checkpoint_counter.labels(op="save").inc()
        return dump_engine(self.analyzer, stream)

    def restore(self, stream: BinaryIO) -> None:
        """Replace the synopsis with a previously checkpointed one.

        Either checkpoint format restores: a v3 checkpoint rebuilds a
        sharded engine (with that checkpoint's shard count), v1/v2 a
        single typed analyzer.
        """
        if self._submit_hist is not None:
            self._checkpoint_counter.labels(op="restore").inc()
        loaded = load_engine(stream, strict=True)
        self.analyzer = as_typed_engine(loaded)
        self.analyzer.rebind_metrics(self.registry)
        if isinstance(self.analyzer, ShardedAnalyzer):
            self.shards = self.analyzer.shards
        else:
            self.shards = 1
