"""A continuous characterization service.

The pipeline in :mod:`repro.pipeline` is batch-shaped: replay a trace, get
a result.  A deployed system (Fig. 3) instead runs *forever*: events arrive
as the kernel emits them, consumers ask for the current picture whenever
they like, and the learned state must survive restarts.  This module wraps
monitor + synopsis engine into that service shape:

* :meth:`CharacterizationService.submit` accepts block I/O events
  (from blktrace, a replayer, or tests) and drives the whole stack;
  :meth:`submit_many` is the batched form -- an
  :class:`~repro.monitor.batch.EventBatch` (or any event list past
  ``columnar_threshold``, converted automatically) flows through the
  monitor's vectorized columnar lane and finished transactions reach the
  engine as :class:`~repro.monitor.batch.TransactionBatch` columns;
  smaller lists keep the amortized object path (optionally processed
  thread-per-shard when the engine is sharded);
* ``shards > 1`` backs the service with a
  :class:`~repro.engine.sharded.ShardedAnalyzer` instead of a single
  analyzer -- same queries, hash-partitioned tables; ``shard_processes``
  upgrades that to a :class:`~repro.engine.procshard.ProcessShardedAnalyzer`
  (one worker *process* per shard, sidestepping the GIL) -- call
  :meth:`~CharacterizationService.release` when done with the service so
  the worker fleet shuts down cleanly;
* :meth:`snapshot` returns the current frequent correlations (optionally
  by R/W kind) without stopping ingestion;
* :meth:`checkpoint` / :meth:`restore` persist the synopsis -- format v2
  for a single analyzer, format v3 (per-shard CRC envelopes) for a
  sharded engine (see :mod:`repro.core.serialize` and
  :mod:`repro.engine.checkpoint`);
* registered observers are notified every ``snapshot_interval``
  transactions -- the hook an automatic optimization module attaches to;
* the whole stack publishes telemetry through one injectable
  :class:`~repro.telemetry.metrics.MetricsRegistry` (``registry=``):
  monitor and synopsis counters via collectors, submit/batch latency
  histograms, and per-stage spans (see ``docs/observability.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    BinaryIO,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from .core.config import AnalyzerConfig
from .core.extent import ExtentPair
from .core.typed import CorrelationKind, TypedOnlineAnalyzer
from .engine.backends.host import BackendEngine
from .engine.checkpoint import as_typed_engine, dump_engine, load_engine
from .engine.procshard import ProcessShardedAnalyzer
from .engine.sharded import ShardedAnalyzer
from .monitor.batch import EventBatch, TransactionBatch
from .monitor.events import BlockIOEvent
from .monitor.monitor import (
    DEFAULT_MAX_TRANSACTION_SIZE,
    ClockPolicy,
    Monitor,
)
from .monitor.transaction import Transaction
from .monitor.window import DynamicLatencyWindow, WindowPolicy
from .telemetry.metrics import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    get_default_registry,
)
from .telemetry.tracelog import trace_span
from .telemetry.tracing import StageTimer

SnapshotObserver = Callable[["ServiceSnapshot"], None]

#: The engine types a service may be backed by.
ServiceEngine = Union[
    TypedOnlineAnalyzer, ShardedAnalyzer, ProcessShardedAnalyzer,
    BackendEngine,
]

#: Event lists at least this long are converted to a columnar
#: :class:`EventBatch` inside :meth:`CharacterizationService.submit_many`
#: (overridable per service; ``None`` disables auto-conversion).
DEFAULT_COLUMNAR_THRESHOLD = 64


class _ServiceSink:
    """The monitor sink the service registers: finished transactions
    arrive either as objects (scalar lane, via ``__call__``) or as one
    columnar :class:`TransactionBatch` (batch lane), and both routes land
    on the owning service's buffering/notify logic."""

    __slots__ = ("_service",)

    def __init__(self, service: "CharacterizationService") -> None:
        self._service = service

    def __call__(self, transaction: Transaction) -> None:
        self._service._on_transaction(transaction)

    def on_transaction_batch(self, batch: TransactionBatch) -> None:
        self._service._on_transaction_batch(batch)


@dataclass
class ServiceSnapshot:
    """The service's view of the workload at one instant."""

    transactions: int
    events: int
    frequent_pairs: List[Tuple[ExtentPair, int]]
    kind_summary: Dict[CorrelationKind, int]

    @property
    def correlations(self) -> int:
        return len(self.frequent_pairs)


class CharacterizationService:
    """Long-running ingest -> characterize -> notify loop."""

    def __init__(
        self,
        config: Optional[AnalyzerConfig] = None,
        window: Optional[WindowPolicy] = None,
        max_transaction_size: int = DEFAULT_MAX_TRANSACTION_SIZE,
        dedup: bool = True,
        min_support: int = 5,
        snapshot_interval: int = 1000,
        clock_policy: ClockPolicy = ClockPolicy.REORDER,
        max_clock_skew: Optional[float] = None,
        shards: int = 1,
        parallel_shards: bool = False,
        shard_processes: bool = False,
        columnar_threshold: Optional[int] = DEFAULT_COLUMNAR_THRESHOLD,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        """``shards`` selects the synopsis engine: 1 keeps the classic
        single typed analyzer; N > 1 hash-partitions the tables across N
        shard synopses at ``capacity / N`` each.  ``parallel_shards``
        additionally processes batched ingest (:meth:`submit_many`) with
        one worker thread per shard.  ``shard_processes`` backs the
        shards with one worker *process* each instead (a
        :class:`ProcessShardedAnalyzer`; always parallel) -- pair it with
        :meth:`release` so the workers are shut down when the service
        retires.

        ``columnar_threshold`` sets the batch size at which
        :meth:`submit_many` converts an event list to a columnar
        :class:`EventBatch` before handing it to the monitor (``None``
        disables the conversion; callers can always pass an
        :class:`EventBatch` directly).

        ``registry`` selects the telemetry registry for the whole stack
        (monitor, engine, and the service's own latency histograms);
        ``None`` uses the process-local default, and
        :data:`~repro.telemetry.NULL_REGISTRY` disables telemetry with
        near-zero hot-path cost.
        """
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if columnar_threshold is not None and columnar_threshold < 1:
            raise ValueError("columnar_threshold must be >= 1 or None")
        self.min_support = min_support
        self.snapshot_interval = snapshot_interval
        self.shards = shards
        self.parallel_shards = parallel_shards
        self.shard_processes = shard_processes
        self.columnar_threshold = columnar_threshold
        registry = registry if registry is not None else \
            get_default_registry()
        self.registry = registry
        config = config or AnalyzerConfig()
        if shard_processes:
            # Handles both modes: two-tier analyzer workers, or one
            # synopsis backend per worker when the config selects one.
            self.analyzer: ServiceEngine = ProcessShardedAnalyzer(
                config, shards=shards, registry=registry
            )
        elif config.backend != "two-tier":
            self.analyzer = BackendEngine(
                config, shards=shards, registry=registry
            )
        elif shards == 1:
            self.analyzer = TypedOnlineAnalyzer(config, registry=registry)
        else:
            self.analyzer = ShardedAnalyzer(
                config, shards=shards, registry=registry
            )
        self.monitor = Monitor(
            window=window if window is not None else DynamicLatencyWindow(),
            max_transaction_size=max_transaction_size,
            dedup=dedup,
            sinks=[_ServiceSink(self)],
            clock_policy=clock_policy,
            max_clock_skew=max_clock_skew,
            registry=registry,
        )
        self._observers: List[SnapshotObserver] = []
        self._transactions = 0
        self._batch_buffer: Optional[List[Transaction]] = None
        self._txn_batches: Optional[List[TransactionBatch]] = None
        self._closed = False
        self._bind_metrics(registry)

    # -- telemetry ----------------------------------------------------------

    def _bind_metrics(self, registry: MetricsRegistry) -> None:
        self._stage_timer = StageTimer(
            registry, stages=("monitor", "analyze", "notify")
        )
        if not registry.enabled:
            self._submit_hist = None
            return
        self._submit_hist = registry.histogram(
            "repro_service_submit_latency_seconds",
            "Wall time per ingest call",
            labelnames=("path",),
        ).labels(path="event")
        self._batch_hist = registry.histogram(
            "repro_service_submit_latency_seconds",
            "Wall time per ingest call",
            labelnames=("path",),
        ).labels(path="batch")
        self._batch_size_hist = registry.histogram(
            "repro_service_batch_events",
            "Events per submit_many call",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._snapshots_counter = registry.counter(
            "repro_service_snapshots_total",
            "Snapshots computed (periodic notifications and queries)",
        )
        self._checkpoint_counter = registry.counter(
            "repro_service_checkpoints_total",
            "Checkpoint operations",
            labelnames=("op",),
        )
        self._transactions_counter = registry.counter(
            "repro_service_transactions_total",
            "Transactions the service has characterized",
        )
        self._observers_gauge = registry.gauge(
            "repro_service_observers", "Registered snapshot observers"
        )
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        self._transactions_counter.set_total(self._transactions)
        self._observers_gauge.set(len(self._observers))

    # -- ingestion --------------------------------------------------------------

    def submit(self, event: BlockIOEvent) -> None:
        """Feed one block-layer issue event."""
        hist = self._submit_hist
        if hist is None:  # null registry: no clock reads on the hot path
            self.monitor.on_event(event)
            return
        started = time.perf_counter()
        self.monitor.on_event(event)
        hist.observe(time.perf_counter() - started)

    def submit_many(
        self,
        events: Union[Iterable[BlockIOEvent], EventBatch],
        parallel: Optional[bool] = None,
    ) -> int:
        """Feed a batch of issue events; returns how many were consumed.

        An :class:`EventBatch` (or an event list of at least
        ``columnar_threshold`` events, converted here) takes the monitor's
        vectorized columnar lane and reaches the engine as
        :class:`TransactionBatch` columns; anything else flows through the
        amortized :meth:`~repro.monitor.monitor.Monitor.on_events` object
        path, and the finished transactions are handed to the engine as
        one :meth:`process_batch` call rather than one callback per
        transaction.  ``parallel`` overrides the service-level
        ``parallel_shards`` default (it only has an effect on a sharded
        engine; process-backed shards are always parallel).  Snapshot
        observers fire at most once per batch, after the whole batch
        lands, if one or more snapshot intervals were crossed.
        """
        if parallel is None:
            parallel = self.parallel_shards
        batch_started = time.perf_counter() if self._submit_hist is not None \
            else None
        if not isinstance(events, EventBatch):
            events = self._maybe_columnar(events)
        object_batch: List[Transaction] = []
        txn_batches: List[TransactionBatch] = []
        self._batch_buffer = object_batch
        self._txn_batches = txn_batches
        try:
            # require_parent: only an already-traced request (the server's
            # ingest span is ambient here) gets a child span -- untraced
            # local ingest stays allocation-free.
            with trace_span("service.monitor", require_parent=True), \
                    self._stage_timer.span("monitor"):
                count = self.monitor.on_events(events)
        finally:
            self._batch_buffer = None
            self._txn_batches = None
        if object_batch:
            self._process_batch(object_batch, parallel)
        for txn_batch in txn_batches:
            self._process_transaction_batch(txn_batch, parallel)
        if batch_started is not None:
            self._batch_hist.observe(time.perf_counter() - batch_started)
            self._batch_size_hist.observe(count)
        return count

    def _maybe_columnar(
        self, events: Iterable[BlockIOEvent]
    ) -> Union[Iterable[BlockIOEvent], EventBatch]:
        """Convert a large-enough event sequence to columnar form.

        Conversion happens before the monitor sees anything, so a failed
        conversion (e.g. an offset beyond int64, which numpy cannot hold)
        simply falls back to the object path with no state to unwind.
        """
        threshold = self.columnar_threshold
        if threshold is None:
            return events
        if not isinstance(events, (list, tuple)):
            events = list(events)
        if len(events) < threshold:
            return events
        try:
            return EventBatch.from_events(events)
        except (OverflowError, ValueError, TypeError):
            return events

    def flush(self) -> None:
        """Close any open transaction (e.g. before a checkpoint)."""
        self.monitor.flush()

    def close(self) -> None:
        """Shut the service down: flush the final open transaction window.

        Without this, events that arrived after the last window closed --
        the tail of every real stream -- would sit in the monitor's open
        transaction forever and never reach the analyzer.  Idempotent;
        the service remains queryable (and even ingestable) afterwards,
        ``close`` only guarantees nothing is left in flight *now*.
        """
        self.flush()
        self._closed = True

    def release(self) -> None:
        """Retire the service: flush, then release engine resources.

        Unlike :meth:`close` (flush-only; the service stays queryable),
        ``release`` also shuts down a process-backed engine's worker
        fleet, after which the engine can no longer ingest or answer
        queries.  Call it once, after the last query and any final
        :meth:`checkpoint`.  Idempotent; a no-op for in-process engines
        beyond the flush.
        """
        self.close()
        engine_close = getattr(self.analyzer, "close", None)
        if engine_close is not None:
            engine_close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def transactions(self) -> int:
        """Transactions characterized so far (cheap, no snapshot)."""
        return self._transactions

    def __enter__(self) -> "CharacterizationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _on_transaction(self, transaction: Transaction) -> None:
        if self._batch_buffer is not None:
            self._batch_buffer.append(transaction)
            return
        process = getattr(self.analyzer, "process_transaction", None)
        if process is not None:
            process(transaction)
        else:  # batch-only engine (process-backed shards)
            self.analyzer.process_transaction_batch(
                TransactionBatch.from_transactions([transaction])
            )
        self._transactions += 1
        if self._transactions % self.snapshot_interval == 0:
            self._notify()

    def _on_transaction_batch(self, batch: TransactionBatch) -> None:
        if self._txn_batches is not None:
            self._txn_batches.append(batch)
            return
        # The monitor was driven directly (not via submit_many); process
        # in place with the service-level parallelism default.
        self._process_transaction_batch(batch, self.parallel_shards)

    def _process_batch(self, batch: List[Transaction],
                       parallel: bool) -> None:
        with trace_span("service.analyze", require_parent=True,
                        tags={"transactions": len(batch)}), \
                self._stage_timer.span("analyze"):
            process_batch = getattr(self.analyzer, "process_batch", None)
            if process_batch is not None:
                process_batch(batch, parallel=parallel)
            elif hasattr(self.analyzer, "process_transaction"):
                # a bare analyzer injected by a subclass/test
                for transaction in batch:
                    self.analyzer.process_transaction(transaction)
            else:  # batch-only engine (process-backed shards)
                self.analyzer.process_transaction_batch(
                    TransactionBatch.from_transactions(batch)
                )
        self._after_batch(len(batch))

    def _process_transaction_batch(self, batch: TransactionBatch,
                                   parallel: bool) -> None:
        with trace_span("service.analyze", require_parent=True,
                        tags={"transactions": len(batch)}), \
                self._stage_timer.span("analyze"):
            process = getattr(
                self.analyzer, "process_transaction_batch", None
            )
            if process is not None:
                emitted = process(batch, parallel=parallel)
            else:  # a bare analyzer injected by a subclass/test
                emitted = 0
                for transaction in batch.transactions():
                    self.analyzer.process_transaction(transaction)
                    emitted += 1
        self._after_batch(emitted)

    def _after_batch(self, count: int) -> None:
        interval = self.snapshot_interval
        before = self._transactions
        self._transactions += count
        if self._transactions // interval != before // interval:
            self._notify()

    def _notify(self) -> None:
        if not self._observers:
            return
        with self._stage_timer.span("notify"):
            snapshot = self.snapshot()
            for observer in self._observers:
                observer(snapshot)

    # -- queries -------------------------------------------------------------------

    def snapshot(self, kind: Optional[CorrelationKind] = None
                 ) -> ServiceSnapshot:
        """Current frequent correlations (optionally one R/W kind only)."""
        if self._submit_hist is not None:
            self._snapshots_counter.inc()
        if kind is None:
            frequent = self.analyzer.frequent_pairs(self.min_support)
        else:
            frequent = self.analyzer.frequent_pairs_of_kind(
                kind, self.min_support
            )
        return ServiceSnapshot(
            transactions=self._transactions,
            events=self.monitor.stats.events_seen,
            frequent_pairs=frequent,
            kind_summary=self.analyzer.kind_summary(),
        )

    def observe(self, observer: SnapshotObserver) -> None:
        """Register a periodic snapshot observer (the optimization hook)."""
        self._observers.append(observer)

    # -- persistence -----------------------------------------------------------------

    def checkpoint(self, stream: BinaryIO) -> int:
        """Persist the synopsis; returns bytes written.

        Open transactions are flushed first so nothing in flight is lost.
        A sharded engine is written as a format-v3 checkpoint (one CRC
        envelope per shard); a single analyzer keeps format v2.  Note the
        typed sidecar (R/W mixes) is rebuilt from future traffic after a
        restore; the tables themselves restore exactly.
        """
        self.flush()
        if self._submit_hist is not None:
            self._checkpoint_counter.labels(op="save").inc()
        return dump_engine(self.analyzer, stream)

    def restore(self, stream: BinaryIO) -> None:
        """Replace the synopsis with a previously checkpointed one.

        Either checkpoint format restores: a v3 checkpoint rebuilds a
        sharded engine (with that checkpoint's shard count), v1/v2 a
        single typed analyzer.  A process-backed engine whose worker
        count matches the checkpoint's shard count adopts the shards
        into its live fleet; on a shape mismatch the fleet is released
        and the engine replaced by an in-process one.
        """
        if self._submit_hist is not None:
            self._checkpoint_counter.labels(op="restore").inc()
        loaded = load_engine(stream, strict=True)
        current = self.analyzer
        if isinstance(current, ProcessShardedAnalyzer) and not current.closed:
            if current.backend_name != "two-tier":
                backend_states = getattr(
                    loaded.engine, "shard_backends", None
                )
                if backend_states is not None \
                        and len(backend_states) == current.shards \
                        and getattr(loaded.engine, "backend_name", None) \
                        == current.backend_name:
                    current.adopt_backends(backend_states)
                    return
            else:
                shard_states = getattr(
                    loaded.engine, "shard_analyzers", None
                )
                if shard_states is not None \
                        and len(shard_states) == current.shards:
                    current.adopt_shards(shard_states)
                    return
            current.close()
        self.analyzer = as_typed_engine(loaded)
        self.analyzer.rebind_metrics(self.registry)
        if isinstance(self.analyzer, (ShardedAnalyzer, BackendEngine)):
            self.shards = self.analyzer.shards
        else:
            self.shards = 1
