"""repro.telemetry -- metrics registry, stage tracing, and exporters.

The observability layer for the real-time characterization stack: a
dependency-free :class:`MetricsRegistry` of named, labelled
:class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments, a
:class:`StageTimer` span API for per-stage latency, and exporters for
the Prometheus text format, JSON snapshots, and periodic NDJSON
emission (:class:`SnapshotEmitter`).  On top of that sits the
cross-process plane: :mod:`~repro.telemetry.tracelog` request tracing
(contexts propagated client -> server -> shard worker, NDJSON span
records with sampling + slow exemplars), :mod:`~repro.telemetry.log`
structured JSON logging with trace correlation,
:func:`merge_worker_snapshot` child-registry aggregation, and the
:class:`OpsServer` HTTP sidecar (/metrics, /healthz, /readyz, /vars).

Every instrumented component (monitor, analyzer, sharded engine,
services, pipeline) accepts a ``registry`` keyword: ``None`` selects
the process-local default (:func:`get_default_registry`), an explicit
:class:`MetricsRegistry` isolates the instance, and
:data:`NULL_REGISTRY` disables telemetry with near-zero hot-path cost.

See ``docs/observability.md`` for the instrument catalog and label
conventions.
"""

from .export import (
    SnapshotEmitter,
    render_digest,
    render_json,
    render_prometheus,
    snapshot,
    snapshot_value,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    get_default_registry,
    set_default_registry,
)
from .aggregate import histogram_quantile, merge_worker_snapshot
from .httpd import OpsServer
from .log import JsonLogger, configure_logging, get_logger
from .tracelog import (
    TraceContext,
    TraceLog,
    current_context,
    get_tracelog,
    install_tracelog,
    read_trace_records,
    trace_span,
    use_context,
)
from .tracing import Span, StageTimer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "get_default_registry",
    "set_default_registry",
    "Span",
    "StageTimer",
    "TraceContext",
    "TraceLog",
    "current_context",
    "get_tracelog",
    "install_tracelog",
    "read_trace_records",
    "trace_span",
    "use_context",
    "JsonLogger",
    "configure_logging",
    "get_logger",
    "OpsServer",
    "histogram_quantile",
    "merge_worker_snapshot",
    "SnapshotEmitter",
    "render_digest",
    "render_json",
    "render_prometheus",
    "snapshot",
    "snapshot_value",
]
