"""Merging child-process metric snapshots into a parent registry.

A procshard worker (and, through the same seam, a supervised server
child) owns a real :class:`~repro.telemetry.metrics.MetricsRegistry`
and periodically ships ``registry.snapshot()`` over its control pipe.
:func:`merge_worker_snapshot` replays such a snapshot into the parent
registry, adding (or keeping) a ``shard`` label so every worker's
series stay distinct:

* counters land via ``set_total`` (the worker's value *is* the running
  total -- snapshots are cumulative, so re-merging the same snapshot is
  idempotent and a newer snapshot simply overwrites);
* gauges land via ``set``;
* histograms land via ``set_state`` (cumulative bucket counts + sum),
  reconstructing the family with the worker's own bucket bounds.

The function returns the ``(family_name, child_key)`` pairs it touched
so the owner can remove exactly those series when the workers go away
(a released engine must not keep reporting its last occupancy).
Families whose shape conflicts with something already registered are
skipped and counted rather than raised -- one misbehaving worker must
not break the scrape for everyone else.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
)

__all__ = ["merge_worker_snapshot", "histogram_quantile"]


def _bounds_from_buckets(buckets: Dict[str, object]) -> Tuple[float, ...]:
    """Recover finite bucket bounds from a snapshot's formatted keys."""
    bounds: List[float] = []
    for key in buckets:
        if key == "+Inf":
            continue
        try:
            bounds.append(float(key))
        except ValueError:
            continue
    return tuple(sorted(set(bounds)))


def merge_worker_snapshot(
    registry: MetricsRegistry, snapshot: Dict[str, object], shard: object,
) -> List[Tuple[str, Tuple[str, ...]]]:
    """Replay one worker's ``snapshot()`` into ``registry``.

    Every sample gains (or keeps) ``shard=str(shard)``; label order is
    taken from the sample dict, which preserves the worker family's
    declared order.  Returns the ``(name, child_key)`` pairs written.
    """
    touched: List[Tuple[str, Tuple[str, ...]]] = []
    if not registry.enabled:
        return touched
    metrics = snapshot.get("metrics") if isinstance(snapshot, dict) else None
    if not isinstance(metrics, dict):
        return touched
    shard_value = str(shard)
    for name, family_snap in metrics.items():
        if not isinstance(family_snap, dict):
            continue
        kind = family_snap.get("type")
        help_text = family_snap.get("help", "")
        for sample in family_snap.get("samples", ()):
            labels = dict(sample.get("labels", {}))
            labels["shard"] = labels.get("shard", shard_value)
            labelnames = tuple(labels.keys())
            try:
                if kind == "counter":
                    family = registry.counter(name, help_text, labelnames)
                    family.labels(**labels).set_total(sample["value"])
                elif kind == "gauge":
                    family = registry.gauge(name, help_text, labelnames)
                    family.labels(**labels).set(sample["value"])
                elif kind == "histogram":
                    buckets = sample.get("buckets", {})
                    bounds = _bounds_from_buckets(buckets) \
                        or DEFAULT_LATENCY_BUCKETS
                    family = registry.histogram(name, help_text, labelnames,
                                                buckets=bounds)
                    family.labels(**labels).set_state(
                        buckets, sample.get("sum", 0.0))
                else:
                    continue
            except (MetricError, KeyError, TypeError):
                continue  # shape conflict: skip the series, keep the scrape
            key = tuple(labels[label] for label in family.labelnames)
            touched.append((name, key))
    return touched


def histogram_quantile(
    buckets: Sequence[Tuple[float, int]], quantile: float,
) -> float:
    """Estimate a quantile from cumulative ``(bound, count)`` pairs.

    Prometheus-style: linear interpolation within the bucket that
    crosses the target rank, the last finite bound when the rank lands
    in +Inf, and 0.0 for an empty histogram.
    """
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    rank = max(0.0, min(1.0, quantile)) * total
    previous_bound, previous_count = 0.0, 0
    last_finite = 0.0
    for bound, cumulative in buckets:
        if bound != float("inf"):
            last_finite = bound
        if cumulative >= rank and cumulative > previous_count:
            if bound == float("inf"):
                return last_finite
            span = cumulative - previous_count
            fraction = (rank - previous_count) / span if span else 1.0
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = (
            bound if bound != float("inf") else previous_bound, cumulative)
    return last_finite
