"""Exporters: Prometheus text exposition, JSON snapshots, NDJSON stream.

Three ways out of a :class:`~repro.telemetry.metrics.MetricsRegistry`:

* :func:`render_prometheus` -- the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  cumulative ``_bucket``/``_sum``/``_count`` series for histograms),
  ready to serve from any HTTP handler or write to a textfile-collector
  drop directory;
* :func:`snapshot` / :func:`render_json` -- a JSON document of every
  instrument, for dashboards and the CLI's ``--metrics-json``;
* :class:`SnapshotEmitter` -- appends timestamped snapshot lines to an
  NDJSON file at a configurable interval, either cooperatively
  (:meth:`~SnapshotEmitter.maybe_emit` from the ingest loop) or from a
  daemon thread (:meth:`~SnapshotEmitter.start`).

Everything here is pull-shaped: exporting runs the registry's
collectors, so the rendered numbers are fresh even though the hot path
never touched the registry.
"""

from __future__ import annotations

import io
import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from .metrics import MetricsRegistry, format_bound, get_default_registry

__all__ = [
    "render_prometheus",
    "render_json",
    "render_digest",
    "snapshot",
    "snapshot_value",
    "SnapshotEmitter",
]

PathOrStr = Union[str, Path]


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _label_block(labels: Dict[str, str],
                 extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in merged.items()
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    registry = registry if registry is not None else get_default_registry()
    out = io.StringIO()
    for family in registry.collect():
        if family.help:
            out.write(f"# HELP {family.name} {_escape_help(family.help)}\n")
        out.write(f"# TYPE {family.name} {family.kind}\n")
        for labels, child in family.samples():
            if family.kind == "histogram":
                for bound, cumulative in child.buckets():
                    le = _label_block(labels, {"le": format_bound(bound)})
                    out.write(f"{family.name}_bucket{le} {cumulative}\n")
                out.write(f"{family.name}_sum{_label_block(labels)} "
                          f"{_format_value(child.sum)}\n")
                out.write(f"{family.name}_count{_label_block(labels)} "
                          f"{child.count}\n")
            else:
                out.write(f"{family.name}{_label_block(labels)} "
                          f"{_format_value(child.value)}\n")
    return out.getvalue()


def snapshot(registry: Optional[MetricsRegistry] = None) -> Dict[str, object]:
    """A JSON-able dict of every instrument (see ``MetricsRegistry.snapshot``)."""
    registry = registry if registry is not None else get_default_registry()
    return registry.snapshot()


def render_json(registry: Optional[MetricsRegistry] = None,
                indent: Optional[int] = None) -> str:
    """The JSON snapshot as a string."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)


def snapshot_value(
    snap: Dict[str, object],
    name: str,
    labels: Optional[Dict[str, str]] = None,
    default: float = 0.0,
) -> float:
    """Sum the samples of ``name`` whose labels contain ``labels``.

    A convenience for digests and tests: reads counter/gauge values (and
    histogram counts) out of a snapshot dict without walking the schema
    by hand.  Missing metrics return ``default``.
    """
    family = snap.get("metrics", {}).get(name)
    if family is None:
        return default
    wanted = labels or {}
    total = 0.0
    matched = False
    for sample in family["samples"]:
        sample_labels = sample.get("labels", {})
        if all(sample_labels.get(k) == str(v) for k, v in wanted.items()):
            matched = True
            total += sample.get("value", sample.get("count", 0.0))
    return total if matched else default


def render_digest(registry: Optional[MetricsRegistry] = None) -> str:
    """A human-readable one-value-per-line rendering of the registry.

    The ``stats``-style view for terminals: counters and gauges print as
    ``name{labels} value``; histograms print count, sum, and mean.
    """
    registry = registry if registry is not None else get_default_registry()
    lines: List[str] = []
    for family in registry.collect():
        for labels, child in family.samples():
            block = _label_block(labels)
            if family.kind == "histogram":
                mean = child.sum / child.count if child.count else 0.0
                lines.append(
                    f"{family.name}{block} count={child.count} "
                    f"sum={child.sum:.6f} mean={mean:.6f}"
                )
            else:
                lines.append(
                    f"{family.name}{block} {_format_value(child.value)}"
                )
    return "\n".join(lines)


SnapshotCallback = Callable[[Dict[str, object]], None]


class SnapshotEmitter:
    """Appends registry snapshots to an NDJSON file on an interval.

    Each emitted line is one JSON object::

        {"ts": <unix seconds>, "seq": <1-based index>, "metrics": {...}}

    Two operating modes:

    * **cooperative** -- call :meth:`maybe_emit` from the ingest loop;
      a snapshot is appended when at least ``interval`` seconds passed
      since the last one (clock injectable for tests);
    * **background** -- :meth:`start` spawns a daemon thread that emits
      every ``interval`` seconds until :meth:`stop` (or context exit).

    ``on_snapshot`` receives every emitted snapshot dict -- the hook a
    console digest or alerting shim attaches to.  Emission never throws
    into the ingest loop: I/O errors are counted on ``write_errors`` and
    surfaced to the caller only through that counter.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        path: Optional[PathOrStr] = None,
        interval: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
        on_snapshot: Optional[SnapshotCallback] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.registry = registry if registry is not None else \
            get_default_registry()
        self.path = Path(path) if path is not None else None
        self.interval = interval
        self.on_snapshot = on_snapshot
        self._clock = clock
        self._last_emit: Optional[float] = None
        self.emitted = 0
        self.write_errors = 0
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()

    # -- cooperative mode ---------------------------------------------------

    def maybe_emit(self, now: Optional[float] = None
                   ) -> Optional[Dict[str, object]]:
        """Emit if the interval elapsed; returns the snapshot or None."""
        if now is None:
            now = self._clock()
        if self._last_emit is not None and \
                now - self._last_emit < self.interval:
            return None
        return self.emit(now=now)

    def emit(self, now: Optional[float] = None) -> Dict[str, object]:
        """Unconditionally snapshot, append, and notify."""
        self._last_emit = self._clock() if now is None else now
        self.emitted += 1
        snap = self.registry.snapshot()
        snap = {"ts": time.time(), "seq": self.emitted, **snap}
        if self.path is not None:
            try:
                with open(self.path, "a", encoding="utf-8") as stream:
                    stream.write(json.dumps(snap, sort_keys=True) + "\n")
            except OSError:
                self.write_errors += 1
        if self.on_snapshot is not None:
            self.on_snapshot(snap)
        return snap

    # -- background mode ----------------------------------------------------

    def start(self) -> "SnapshotEmitter":
        """Emit from a daemon thread every ``interval`` seconds."""
        if self._thread is not None:
            raise RuntimeError("emitter already started")
        self._stop_event.clear()

        def loop() -> None:
            while not self._stop_event.wait(self.interval):
                self.emit()

        self._thread = threading.Thread(
            target=loop, name="repro-snapshot-emitter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_emit: bool = True) -> None:
        """Stop the background thread (and emit one last snapshot)."""
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join()
            self._thread = None
        if final_emit:
            self.emit()

    def __enter__(self) -> "SnapshotEmitter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(final_emit=exc_type is None)
