"""A dependency-free ops HTTP sidecar: /metrics, /healthz, /readyz, /vars.

Until now the only way to read the server's metrics was an in-band
METRICS frame on the data socket -- useless precisely when the ingest
path is wedged, and invisible to a Prometheus scraper or a Kubernetes
probe.  :class:`OpsServer` runs a stdlib ``ThreadingHTTPServer`` on its
own daemon thread serving:

``/metrics``
    Prometheus text exposition 0.0.4 via
    :func:`repro.telemetry.export.render_prometheus` (runs the
    registry's collectors, so pull-published values are fresh).
``/healthz``
    Liveness: 200 the moment the sidecar thread is up.  A server
    replaying a large journal is *alive* but not *ready*; probes that
    restart on failed liveness must not interrupt recovery.
``/readyz``
    Readiness: 200 once the ``ready`` probe says so (recovery/WAL
    replay complete, socket bound), 503 with a JSON reason body before
    that and again during shutdown.
``/vars``
    Free-form JSON: pid, uptime, the ``vars`` probe's dict, and the
    full metrics snapshot -- the "one curl tells me everything" page.

The sidecar binds before the owning server starts recovery (so
liveness answers during replay) and serves from a separate thread, so
a wedged asyncio loop cannot take the diagnostics plane down with it.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from .export import render_prometheus, snapshot
from .metrics import MetricsRegistry, get_default_registry

__all__ = ["OpsServer"]

#: ``ready`` probe result: (is_ready, detail dict for the JSON body).
ReadyProbe = Callable[[], Tuple[bool, Dict[str, Any]]]


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-ops/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, *_args) -> None:  # quiet: probes hit every few s
        pass

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        ops: "OpsServer" = self.server.ops  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = render_prometheus(ops.registry).encode("utf-8")
                self._reply(200, body,
                            "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/healthz":
                self._reply_json(200, {"status": "ok", "uptime":
                                       round(ops.uptime(), 3)})
            elif path == "/readyz":
                ready, detail = ops.readiness()
                detail = dict(detail)
                detail["status"] = "ready" if ready else "unavailable"
                self._reply_json(200 if ready else 503, detail)
            elif path == "/vars":
                self._reply_json(200, ops.vars())
            else:
                self._reply_json(404, {"error": "not found", "paths": [
                    "/metrics", "/healthz", "/readyz", "/vars"]})
        except Exception as exc:  # pragma: no cover - diagnostics plane
            try:
                self._reply_json(500, {"error": str(exc)})
            except OSError:
                pass

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True, default=str,
                          indent=2).encode("utf-8")
        self._reply(status, body, "application/json")


class OpsServer:
    """The sidecar: construct, :meth:`start`, later :meth:`stop`.

    ``ready`` is polled per /readyz request; ``vars_probe`` contributes
    extra keys to /vars.  ``port=0`` binds an ephemeral port, readable
    afterwards via :attr:`port` (tests and parallel CI jobs).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 ready: Optional[ReadyProbe] = None,
                 vars_probe: Optional[Callable[[], Dict[str, Any]]] = None,
                 ) -> None:
        self.registry = registry if registry is not None \
            else get_default_registry()
        self.host = host
        self._requested_port = int(port)
        self._ready = ready
        self._vars = vars_probe
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = time.time()

    # -- probes ------------------------------------------------------------

    def uptime(self) -> float:
        return time.time() - self._started_at

    def readiness(self) -> Tuple[bool, Dict[str, Any]]:
        if self._ready is None:
            return True, {}
        try:
            return self._ready()
        except Exception as exc:  # a broken probe reads as "not ready"
            return False, {"probe_error": str(exc)}

    def vars(self) -> Dict[str, Any]:
        import os
        payload: Dict[str, Any] = {
            "pid": os.getpid(),
            "uptime": round(self.uptime(), 3),
        }
        if self._vars is not None:
            try:
                payload.update(self._vars())
            except Exception as exc:  # pragma: no cover
                payload["vars_error"] = str(exc)
        payload["metrics"] = snapshot(self.registry)["metrics"]
        return payload

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "OpsServer":
        if self._httpd is not None:
            return self
        self._started_at = time.time()
        httpd = ThreadingHTTPServer((self.host, self._requested_port),
                                    _Handler)
        httpd.daemon_threads = True
        httpd.ops = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.2},
            name="repro-ops-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "OpsServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
