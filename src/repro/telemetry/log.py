"""Structured JSON-line logging with trace correlation.

The serving stack used to narrate through ad-hoc ``print(...,
file=sys.stderr)`` calls -- fine for a terminal, useless for an ops
pipeline that wants to join "worker restarted" with the requests it
interrupted.  This logger emits one JSON object per line::

    {"ts": 1719849600.123456, "level": "info", "component": "server",
     "event": "server.started", "pid": 4242,
     "trace_id": "9f2c...", "span_id": "01ab...", ...fields}

* ``ts`` is wall-clock seconds; ``level`` one of debug/info/warning/
  error; ``component`` names the emitter (``server``, ``supervisor``,
  ``recovery``, ``procshard``, ...); ``event`` is a stable dotted slug.
* When a span from :mod:`repro.telemetry.tracelog` is ambient, its
  ``trace_id``/``span_id`` are stamped automatically, so log lines and
  trace records join on ``trace_id``.
* Extra keyword fields pass through verbatim (non-JSON values are
  stringified rather than raising -- a log call must never take down
  the path it narrates).

Output goes to ``sys.stderr`` by default; :func:`configure_logging`
redirects the stream and sets the minimum level process-wide.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, Optional, TextIO

from .tracelog import current_context

__all__ = [
    "JsonLogger",
    "configure_logging",
    "get_logger",
    "LOG_LEVELS",
]

LOG_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_lock = threading.Lock()
_stream: Optional[TextIO] = None  # None -> sys.stderr at write time
_min_level = LOG_LEVELS["info"]


def configure_logging(stream: Optional[TextIO] = None,
                      min_level: str = "info") -> None:
    """Set the process-wide log stream and threshold.

    ``stream=None`` means "whatever ``sys.stderr`` is at write time", so
    test harnesses that swap stderr still capture output.
    """
    global _stream, _min_level
    with _lock:
        _stream = stream
        _min_level = LOG_LEVELS.get(min_level, LOG_LEVELS["info"])


class JsonLogger:
    """A component-bound emitter; cheap to create, safe to share."""

    __slots__ = ("component", "_bound")

    def __init__(self, component: str,
                 bound: Optional[Dict[str, Any]] = None) -> None:
        self.component = component
        self._bound = dict(bound) if bound else {}

    def bind(self, **fields: Any) -> "JsonLogger":
        """A child logger with extra fields stamped on every line."""
        merged = dict(self._bound)
        merged.update(fields)
        return JsonLogger(self.component, merged)

    def log(self, level: str, event: str, **fields: Any) -> None:
        if LOG_LEVELS.get(level, 0) < _min_level:
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
            "pid": os.getpid(),
        }
        context = current_context()
        if context is not None:
            record["trace_id"] = context.trace_id
            record["span_id"] = context.span_id
        record.update(self._bound)
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True, default=str)
        except (TypeError, ValueError):  # pragma: no cover - default=str
            line = json.dumps({"ts": record["ts"], "level": level,
                               "component": self.component, "event": event,
                               "error": "unserializable-fields"})
        with _lock:
            stream = _stream if _stream is not None else sys.stderr
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # a closed stderr must not crash the server

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


def get_logger(component: str, **bound: Any) -> JsonLogger:
    return JsonLogger(component, bound or None)
