"""A dependency-free metrics registry (the observability substrate).

The paper's core claim is *real-time* characterization under bounded
memory; operating that claim requires watching throughput, table
occupancy, promotion/eviction churn, and per-stage latency while the
service runs.  This module provides the instruments:

* :class:`Counter` -- a monotonically increasing total (events seen,
  evictions, retries);
* :class:`Gauge` -- a point-in-time value that can go up or down (tier
  occupancy, shard imbalance, degraded flag);
* :class:`Histogram` -- a bucketed distribution with sum and count
  (submit latency, batch size), rendered in Prometheus cumulative form;
* :class:`MetricsRegistry` -- the named, labelled instrument store that
  exporters (:mod:`repro.telemetry.export`) walk.

Every instrument family supports labels (``family.labels(shard="3")``)
with prometheus_client-style child caching, so the label lookup happens
once at bind time and the hot path touches a child object directly.

Two design rules keep the characterization hot path fast:

1. **Collectors, not per-event increments.**  Components that already
   maintain cheap dataclass counters (``MonitorStats``, ``TableStats``)
   keep doing so; they register a *collector* callback that publishes
   those counters into the registry only when an exporter asks
   (:meth:`MetricsRegistry.collect`).  Steady-state ingest cost: zero.
   Collectors are held by weak reference, so a registry outliving its
   components (the process-local default) never leaks them.
2. **A null registry that disappears.**  :class:`NullRegistry` returns
   no-op instruments and registers nothing; instrumented code guards its
   few direct timer calls on ``registry.enabled``, keeping the disabled
   hot path within a few percent of an uninstrumented build.

The process-local default registry (:func:`get_default_registry`) is
what every component uses when no registry is injected; pass
``registry=`` explicitly to isolate instances or to disable telemetry
with :data:`NULL_REGISTRY`.
"""

from __future__ import annotations

import math
import re
import threading
import weakref
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "get_default_registry",
    "set_default_registry",
]


class MetricError(ValueError):
    """Invalid metric name, labels, or conflicting re-registration."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bounds for latency-shaped observations (seconds).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default histogram bounds for size/count-shaped observations.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise MetricError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise MetricError(f"duplicate label names in {names!r}")
    return names


# ---------------------------------------------------------------------------
# Children: the per-label-set cells the hot path touches
# ---------------------------------------------------------------------------

class _CounterChild:
    """One labelled counter cell."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counters only go up; inc({amount})")
        self._value += amount

    def set_total(self, value: float) -> None:
        """Publish an externally maintained running total.

        The collector seam: components that keep their own dataclass
        counters (``MonitorStats``, ``TableStats``) push the current
        totals at collect time instead of paying a registry call per
        event.  The value is trusted to be monotonic at the source.
        """
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class _GaugeChild:
    """One labelled gauge cell."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class _HistogramChild:
    """One labelled histogram cell (fixed bounds, non-cumulative store)."""

    __slots__ = ("_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self._bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self._count))
        return out

    def set_state(self, bucket_counts: Dict[str, int],
                  sum_value: float) -> None:
        """Adopt an externally observed distribution wholesale.

        The aggregation seam for cross-process metrics: a worker ships
        its ``snapshot()`` histogram sample (cumulative counts keyed by
        the formatted bound, plus the running sum) and the parent-side
        child replaces its own state with it.  Bounds the shipped sample
        doesn't mention inherit the running cumulative count, so a
        truncated sample cannot make counts go backwards mid-bucket.
        """
        running = 0
        counts: List[int] = []
        for bound in self._bounds:
            cumulative = int(bucket_counts.get(format_bound(bound), running))
            counts.append(max(0, cumulative - running))
            running = max(running, cumulative)
        total = int(bucket_counts.get("+Inf", running))
        counts.append(max(0, total - running))
        self._counts = counts
        self._count = max(total, running)
        self._sum = float(sum_value)


# ---------------------------------------------------------------------------
# Families: named instruments with label-set children
# ---------------------------------------------------------------------------

class _Family:
    """A named instrument and its labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels: str):
        """The child cell for one label-value assignment.

        Values are coerced to ``str``; the full label set must match the
        family's declared ``labelnames`` exactly.  Children are cached,
        so binding once and keeping the child is free thereafter.
        """
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[label]) for label in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def samples(self) -> List[Tuple[Dict[str, str], object]]:
        """Every ``(labels_dict, child)`` in insertion order."""
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in list(self._children.items())
        ]

    def remove(self, **labels: str) -> bool:
        """Drop one labelled child so its series leaves the exposition.

        A component that aggregated external state (process-shard
        workers, a standby) calls this on release: a dead worker's last
        occupancy must not keep scraping as if it were live.  Returns
        whether a child was actually removed.
        """
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[label]) for label in self.labelnames)
        return self.remove_child(key)

    def remove_child(self, key: Sequence[str]) -> bool:
        """Drop the child cached under a raw label-value ``key``."""
        with self._lock:
            return self._children.pop(tuple(key), None) is not None

    # -- unlabelled convenience: the family acts as its sole child ---------

    def _default_child(self):
        if self.labelnames:
            raise MetricError(
                f"{self.name} is labelled {self.labelnames}; use .labels()"
            )
        return self.labels()


class Counter(_Family):
    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def set_total(self, value: float) -> None:
        self._default_child().set_total(value)

    @property
    def value(self) -> float:
        return self._default_child().value


class Gauge(_Family):
    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Histogram(_Family):
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise MetricError(f"{name}: need at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError(
                f"{name}: bucket bounds must be strictly increasing"
            )
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]  # +Inf is implicit
        super().__init__(name, help, labelnames)
        self.bounds = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


# ---------------------------------------------------------------------------
# Null instruments: telemetry that compiles to nothing
# ---------------------------------------------------------------------------

class _NullInstrument:
    """Absorbs the whole instrument API as no-ops; its own ``labels()``."""

    __slots__ = ()

    kind = "null"
    name = ""
    help = ""
    labelnames: Tuple[str, ...] = ()
    bounds: Tuple[float, ...] = ()
    value = 0.0
    count = 0
    sum = 0.0

    def labels(self, **_labels: str) -> "_NullInstrument":
        return self

    def inc(self, _amount: float = 1.0) -> None:
        pass

    def dec(self, _amount: float = 1.0) -> None:
        pass

    def set(self, _value: float) -> None:
        pass

    def set_total(self, _value: float) -> None:
        pass

    def observe(self, _value: float) -> None:
        pass

    def set_state(self, _buckets: Dict[str, int], _sum: float) -> None:
        pass

    def remove(self, **_labels: str) -> bool:
        return False

    def remove_child(self, _key: Sequence[str]) -> bool:
        return False

    def buckets(self) -> List[Tuple[float, int]]:
        return []

    def samples(self) -> List[Tuple[Dict[str, str], object]]:
        return []


NULL_INSTRUMENT = _NullInstrument()


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

Collector = Callable[[], None]


class MetricsRegistry:
    """Named instrument store + collector hub.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    an existing name returns the existing family (a conflicting kind,
    label set, or bucket layout raises :class:`MetricError`), so any
    number of components can share one process-local registry.

    Collectors registered via :meth:`register_collector` run at the top
    of every :meth:`collect` / :meth:`snapshot`; they are the pull seam
    through which components publish their internally maintained
    counters without any per-event registry traffic.  Bound methods are
    held weakly, so a dead component silently drops out.
    """

    #: Instrumented code may guard direct (timer) instrumentation on this.
    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._collectors: List[object] = []  # WeakMethod | callable
        self._lock = threading.Lock()

    # -- instrument creation ------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, labelnames, **kwargs)
                self._families[name] = family
                return family
        if not isinstance(family, cls):
            raise MetricError(
                f"{name} already registered as a {family.kind}"
            )
        if family.labelnames != tuple(labelnames):
            raise MetricError(
                f"{name} already registered with labels "
                f"{family.labelnames}, asked for {tuple(labelnames)}"
            )
        buckets = kwargs.get("buckets")
        if buckets is not None:
            bounds = tuple(float(bound) for bound in buckets)
            if math.isinf(bounds[-1]):
                bounds = bounds[:-1]
            if bounds != family.bounds:
                raise MetricError(
                    f"{name} already registered with buckets "
                    f"{family.bounds}, asked for {bounds}"
                )
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[_Family]:
        """The family registered under ``name``, if any."""
        return self._families.get(name)

    # -- collectors ---------------------------------------------------------

    def register_collector(self, collector: Collector) -> None:
        """Register a callback run before every collect/snapshot.

        Bound methods are stored as weak references: when the owning
        object dies, the collector is pruned instead of keeping the
        object alive through the (often process-lifetime) registry.
        """
        ref: object
        if hasattr(collector, "__self__"):
            ref = weakref.WeakMethod(collector)
        else:
            ref = collector
        with self._lock:
            self._collectors.append(ref)

    def deregister_collector(self, collector: Collector) -> None:
        """Remove a previously registered collector (idempotent).

        Weakly-held collectors disappear on their own when the owner
        dies; this is for owners that are *released* while still alive
        (a closed ``ProcessShardedAnalyzer``) and must stop publishing
        stale values into every future scrape.
        """
        with self._lock:
            kept: List[object] = []
            for ref in self._collectors:
                target = ref() if isinstance(ref, weakref.WeakMethod) else ref
                if target is None or target == collector:
                    continue
                kept.append(ref)
            self._collectors = kept

    def _run_collectors(self) -> None:
        with self._lock:
            refs = list(self._collectors)
        dead: List[object] = []
        for ref in refs:
            callback = ref() if isinstance(ref, weakref.WeakMethod) else ref
            if callback is None:
                dead.append(ref)
                continue
            callback()
        if dead:
            with self._lock:
                self._collectors = [
                    ref for ref in self._collectors if ref not in dead
                ]

    # -- collection ---------------------------------------------------------

    def collect(self) -> List[_Family]:
        """Run collectors, then return every family sorted by name."""
        self._run_collectors()
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able view of every instrument (runs collectors).

        Schema::

            {"metrics": {name: {"type": kind, "help": str,
                                "samples": [sample, ...]}}}

        where counter/gauge samples are ``{"labels": {...}, "value": v}``
        and histogram samples are ``{"labels": {...}, "count": n,
        "sum": s, "buckets": {"0.001": c, ..., "+Inf": n}}`` with
        cumulative bucket counts.
        """
        metrics: Dict[str, object] = {}
        for family in self.collect():
            samples: List[Dict[str, object]] = []
            for labels, child in family.samples():
                if family.kind == "histogram":
                    samples.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": _finite(child.sum),
                        "buckets": {
                            format_bound(bound): count
                            for bound, count in child.buckets()
                        },
                    })
                else:
                    samples.append({
                        "labels": labels,
                        "value": _finite(child.value),
                    })
            metrics[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return {"metrics": metrics}


def _finite(value: float) -> float:
    """NaN/inf would poison strict-JSON consumers; clamp them to 0."""
    return value if math.isfinite(value) else 0.0


def format_bound(bound: float) -> str:
    """A histogram bucket bound as its exposition label value."""
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


class NullRegistry(MetricsRegistry):
    """A registry that records nothing and costs nothing.

    Every instrument request returns the shared no-op instrument;
    collectors are discarded.  Inject :data:`NULL_REGISTRY` to switch a
    component's telemetry off entirely.
    """

    enabled = False

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def register_collector(self, collector: Collector) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_default_registry: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def get_default_registry() -> MetricsRegistry:
    """The process-local registry components fall back to."""
    global _default_registry
    if _default_registry is None:
        with _default_lock:
            if _default_registry is None:
                _default_registry = MetricsRegistry()
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-local default; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous if previous is not None else registry
