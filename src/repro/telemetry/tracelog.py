"""Cross-process request tracing: contexts, propagation, NDJSON spans.

The stage spans in :mod:`repro.telemetry.tracing` feed latency
histograms, but they stop at a process boundary: a request that enters
through :class:`~repro.server.client.CharacterizationClient`, crosses
the socket into the server, and fans out over the procshard duplex
pipes leaves three disconnected measurements.  This module makes them
one tree:

* :class:`TraceContext` -- an immutable ``(trace_id, span_id,
  parent_id, sampled)`` tuple.  The client mints a root context per
  request; every downstream hop derives a :meth:`~TraceContext.child`
  and carries it across the wire (a compact dict under the frame
  payload's ``"trace"`` key, a plain tuple over the shard pipes).
* :class:`TraceLog` -- an append-only NDJSON span sink.  One JSON
  object per finished span: ``trace_id``, ``span_id``, ``parent_id``,
  ``name``, ``pid``, wall-clock ``start``, ``duration``, ``slow``, and
  free-form ``tags``.  Appends go through a single ``O_APPEND``
  ``os.write`` per record, so any number of processes can share one
  file without interleaving partial lines.
* **Sampling with slow exemplars.**  The root sampling decision is made
  once at mint time (``sample_rate``) and travels with the context, so
  a sampled request is recorded at *every* hop or none.  Independently,
  any span slower than ``slow_threshold`` seconds is always recorded
  (tagged ``"slow": true``) -- the requests you most need to see are
  exactly the ones sampling would usually drop.

The ambient context rides a :mod:`contextvars` variable, so async server
handlers and worker threads each see their own current span.  Components
reach the process-wide sink through :func:`install_tracelog` /
:func:`get_tracelog`; when none is installed, :func:`trace_span` returns
a shared no-op and the hot path pays one global read.
"""

from __future__ import annotations

import contextvars
import json
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "TraceContext",
    "TraceLog",
    "TraceSpan",
    "current_context",
    "use_context",
    "install_tracelog",
    "get_tracelog",
    "trace_span",
    "read_trace_records",
]

#: Payload key under which the context crosses the frame protocol.
TRACE_KEY = "trace"

_current: contextvars.ContextVar[Optional["TraceContext"]] = \
    contextvars.ContextVar("repro_trace_context", default=None)


def _new_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """One span's identity within a trace, cheap to copy across hops."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    sampled: bool = False

    @classmethod
    def new_trace(cls, sampled: bool = False) -> "TraceContext":
        return cls(trace_id=_new_id(), span_id=_new_id(), sampled=sampled)

    def child(self) -> "TraceContext":
        return TraceContext(trace_id=self.trace_id, span_id=_new_id(),
                            parent_id=self.span_id, sampled=self.sampled)

    # -- frame-payload codec (JSON dict under the "trace" key) -------------

    def to_wire(self) -> Dict[str, Any]:
        return {"tid": self.trace_id, "sid": self.span_id,
                "s": 1 if self.sampled else 0}

    @classmethod
    def from_wire(cls, payload: Any) -> Optional["TraceContext"]:
        """Decode a peer's context; ``None`` on anything malformed (a
        bad trace header must never fail the request it rides on)."""
        if not isinstance(payload, dict):
            return None
        tid, sid = payload.get("tid"), payload.get("sid")
        if not isinstance(tid, str) or not isinstance(sid, str):
            return None
        return cls(trace_id=tid, span_id=sid, sampled=bool(payload.get("s")))

    # -- pipe codec (plain tuple, cheap to pickle per shard round) ---------

    def to_tuple(self) -> Tuple[str, str, bool]:
        return (self.trace_id, self.span_id, self.sampled)

    @classmethod
    def from_tuple(cls, value: Any) -> Optional["TraceContext"]:
        if not (isinstance(value, tuple) and len(value) == 3):
            return None
        tid, sid, sampled = value
        if not isinstance(tid, str) or not isinstance(sid, str):
            return None
        return cls(trace_id=tid, span_id=sid, sampled=bool(sampled))


def current_context() -> Optional[TraceContext]:
    """The ambient span context (task/thread local), if any."""
    return _current.get()


class use_context:
    """``with use_context(ctx):`` -- make ``ctx`` ambient in the block."""

    def __init__(self, context: Optional[TraceContext]) -> None:
        self._context = context
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Optional[TraceContext]:
        self._token = _current.set(self._context)
        return self._context

    def __exit__(self, *_exc) -> None:
        if self._token is not None:
            _current.reset(self._token)


class TraceSpan:
    """A timed span; records itself into the log when it closes.

    While the span is open its context is the ambient one, so nested
    spans (and cross-process hops that read :func:`current_context`)
    chain their ``parent_id`` automatically.
    """

    __slots__ = ("_log", "name", "context", "tags",
                 "_token", "_start_wall", "_started")

    def __init__(self, log: "TraceLog", name: str, context: TraceContext,
                 tags: Optional[Dict[str, Any]]) -> None:
        self._log = log
        self.name = name
        self.context = context
        self.tags = dict(tags) if tags else {}
        self._token: Optional[contextvars.Token] = None
        self._start_wall = 0.0
        self._started = 0.0

    def __enter__(self) -> "TraceSpan":
        self._token = _current.set(self.context)
        self._start_wall = self._log.clock()
        self._started = self._log.perf()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        elapsed = self._log.perf() - self._started
        if exc_type is not None:
            self.tags["error"] = exc_type.__name__
        slow = elapsed >= self._log.slow_threshold
        if self.context.sampled or slow or exc_type is not None:
            self._log.record(self.name, self.context, self._start_wall,
                             elapsed, tags=self.tags, slow=slow)


class _NullSpan:
    """Shared no-op stand-in when tracing is not installed."""

    __slots__ = ()

    context: Optional[TraceContext] = None
    tags: Dict[str, Any] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class TraceLog:
    """Append-only NDJSON span sink shared by any number of processes.

    ``sample_rate`` governs the head decision for freshly minted traces;
    ``slow_threshold`` (seconds) is the always-on exemplar cut -- spans
    at or above it are recorded even when their trace is unsampled.
    ``clock``/``perf``/``rng`` are injectable for tests.
    """

    def __init__(self, path: str, *, sample_rate: float = 0.01,
                 slow_threshold: float = 0.25,
                 clock=time.time, perf=time.perf_counter,
                 rng: Optional[random.Random] = None) -> None:
        self.path = os.fspath(path)
        self.sample_rate = max(0.0, min(1.0, float(sample_rate)))
        self.slow_threshold = float(slow_threshold)
        self.clock = clock
        self.perf = perf
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        self.records_written = 0
        self.dropped_writes = 0

    # -- minting -----------------------------------------------------------

    def should_sample(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self._rng.random() < self.sample_rate

    def new_trace(self) -> TraceContext:
        return TraceContext.new_trace(sampled=self.should_sample())

    def span(self, name: str, parent: Optional[TraceContext] = None,
             tags: Optional[Dict[str, Any]] = None) -> TraceSpan:
        """A recording span: child of ``parent`` (or of the ambient
        context), or the root of a freshly sampled trace when neither
        exists."""
        context = parent if parent is not None else _current.get()
        child = context.child() if context is not None else self.new_trace()
        return TraceSpan(self, name, child, tags)

    # -- sinking -----------------------------------------------------------

    def record(self, name: str, context: TraceContext, start: float,
               duration: float, tags: Optional[Dict[str, Any]] = None,
               slow: bool = False) -> None:
        payload: Dict[str, Any] = {
            "trace_id": context.trace_id,
            "span_id": context.span_id,
            "parent_id": context.parent_id,
            "name": name,
            "pid": os.getpid(),
            "start": round(start, 6),
            "duration": round(duration, 9),
        }
        if slow:
            payload["slow"] = True
        if tags:
            payload["tags"] = {key: _jsonable(value)
                               for key, value in tags.items()}
        data = (json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n").encode("utf-8")
        try:
            with self._lock:
                if self._fd is None:
                    self._fd = os.open(
                        self.path,
                        os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
                # One O_APPEND write per record: atomic line appends even
                # with client, server, and shard workers on one file.
                os.write(self._fd, data)
            self.records_written += 1
        except OSError:
            self.dropped_writes += 1

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def read_trace_records(path: str) -> list:
    """Parse an NDJSON trace file, skipping torn/garbage lines."""
    records = []
    try:
        with open(path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        pass
    return records


# -- the process-wide sink --------------------------------------------------

_installed: Optional[TraceLog] = None


def install_tracelog(log: Optional[TraceLog]) -> Optional[TraceLog]:
    """Set (or clear, with ``None``) the process-wide trace sink;
    returns the previous one so tests can restore it."""
    global _installed
    previous = _installed
    _installed = log
    return previous


def get_tracelog() -> Optional[TraceLog]:
    return _installed


def trace_span(name: str, parent: Optional[TraceContext] = None,
               tags: Optional[Dict[str, Any]] = None,
               require_parent: bool = False):
    """A span against the installed sink, or a shared no-op without one.

    ``require_parent=True`` additionally no-ops when there is neither an
    explicit parent nor an ambient context -- for interior stages that
    should join an existing trace but never start one of their own.
    """
    log = _installed
    if log is None:
        return NULL_SPAN
    if require_parent and parent is None and _current.get() is None:
        return NULL_SPAN
    return log.span(name, parent=parent, tags=tags)
