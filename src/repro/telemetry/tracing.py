"""Stage timing: spans over the monitor -> analyzer -> sinks pipeline.

An event's journey through the stack crosses distinct stages -- monitor
grouping, synopsis analysis, observer notification, checkpoint I/O --
and the question "where does ingest time go" needs per-stage latency,
not just end-to-end throughput.  :class:`StageTimer` hands out
:class:`Span` context managers that record elapsed wall time into one
stage-labelled histogram in a :class:`~repro.telemetry.metrics.\
MetricsRegistry`::

    timer = StageTimer(registry)
    with timer.span("monitor"):
        monitor.on_events(batch)
    with timer.span("analyze"):
        engine.process_batch(transactions)

Against a disabled (null) registry, :meth:`StageTimer.span` returns a
shared no-op span that skips even the clock reads, so instrumented code
needs no ``if enabled`` guards of its own at batch granularity.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry, \
    get_default_registry

__all__ = ["Span", "StageTimer", "DEFAULT_STAGE_METRIC"]

#: The histogram every stage timer records into by default.
DEFAULT_STAGE_METRIC = "repro_stage_duration_seconds"


class Span:
    """One timed stage execution (context manager or start/stop pair)."""

    __slots__ = ("_child", "_clock", "_started", "elapsed")

    def __init__(self, child, clock: Callable[[], float]) -> None:
        self._child = child
        self._clock = clock
        self._started: Optional[float] = None
        self.elapsed: Optional[float] = None

    def start(self) -> "Span":
        self._started = self._clock()
        return self

    def stop(self) -> float:
        """Record and return the elapsed seconds since :meth:`start`."""
        if self._started is None:
            raise RuntimeError("span was never started")
        self.elapsed = self._clock() - self._started
        self._started = None
        if self._child is not None:
            self._child.observe(self.elapsed)
        return self.elapsed

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        # Failures are timed too: a span that dies half-way still spent
        # the time, and error latency is exactly what tracing is for.
        self.stop()


class _NullSpan:
    """A span that costs two attribute lookups and nothing else."""

    __slots__ = ()

    elapsed = None

    def start(self) -> "_NullSpan":
        return self

    def stop(self) -> float:
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class StageTimer:
    """Hands out stage-labelled spans backed by one registry histogram.

    ``stages`` may pre-declare the expected stage names so the exposition
    shows zeroed series before first use; any stage name is accepted at
    :meth:`span` time regardless.  The clock is injectable for tests.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        metric: str = DEFAULT_STAGE_METRIC,
        help: str = "Wall time spent per pipeline stage",
        stages: Sequence[str] = (),
        clock: Callable[[], float] = time.perf_counter,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        registry = registry if registry is not None else \
            get_default_registry()
        self.enabled = registry.enabled
        self._clock = clock
        self._histogram = registry.histogram(
            metric, help, labelnames=("stage",), buckets=buckets
        )
        self._children = {}
        for stage in stages:
            self._children[stage] = self._histogram.labels(stage=stage)

    def span(self, stage: str) -> Span:
        """A context manager timing one execution of ``stage``."""
        if not self.enabled:
            return _NULL_SPAN  # type: ignore[return-value]
        child = self._children.get(stage)
        if child is None:
            child = self._histogram.labels(stage=stage)
            self._children[stage] = child
        return Span(child, self._clock)

    def time(self, stage: str, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` inside a span; returns its result."""
        with self.span(stage):
            return fn(*args, **kwargs)
