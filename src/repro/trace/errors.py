"""Ingestion error policies and the dead-letter buffer.

A production monitor ingests traces produced by other systems -- kernels,
collectors, network copies -- and real-world trace files contain malformed
rows: truncated lines, garbage op names, negative offsets, torn writes in
binary logs.  The paper's always-on premise (Fig. 3) means the replay must
not die on the first bad row; instead the reader is parameterised by an
:class:`ErrorPolicy`:

* ``STRICT`` -- raise on the first malformed row (the historical behaviour,
  right for tests and for traces you generated yourself);
* ``LENIENT`` -- count malformed rows and keep going;
* ``QUARANTINE`` -- like lenient, but additionally retain a bounded,
  deterministically sampled set of the offending rows (the *dead-letter
  buffer*) so an operator can inspect what the reader rejected.

The counters live in an :class:`IngestReport` the caller may pass in; the
dead-letter buffer uses seeded reservoir sampling so two runs over the same
file quarantine the same rows.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional


class ErrorPolicy(enum.Enum):
    """What a trace reader does with a row it cannot parse."""

    STRICT = "strict"
    LENIENT = "lenient"
    QUARANTINE = "quarantine"

    @classmethod
    def parse(cls, text: str) -> "ErrorPolicy":
        try:
            return cls(text.strip().lower())
        except ValueError:
            known = ", ".join(policy.value for policy in cls)
            raise ValueError(
                f"unknown error policy {text!r}; know {known}"
            ) from None


@dataclass(frozen=True)
class RowError:
    """One rejected row: where it was, what it said, why it failed."""

    line_number: int
    row: str
    error: str


class DeadLetterBuffer:
    """A bounded, deterministic reservoir sample of rejected rows.

    Keeps at most ``capacity`` :class:`RowError` entries.  Once full, each
    further offer replaces a random resident with the classic reservoir
    rule, driven by a seeded RNG so the retained sample is reproducible.
    ``total`` always counts every offer, retained or not.
    """

    def __init__(self, capacity: int = 64, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.total = 0
        self._rows: List[RowError] = []
        self._rng = random.Random(seed)

    def offer(self, row_error: RowError) -> None:
        self.total += 1
        if len(self._rows) < self.capacity:
            self._rows.append(row_error)
            return
        slot = self._rng.randrange(self.total)
        if slot < self.capacity:
            self._rows[slot] = row_error

    def rows(self) -> List[RowError]:
        """The retained sample, in retention order."""
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


@dataclass
class IngestReport:
    """Counters (and optionally quarantined rows) from one read pass."""

    rows_ok: int = 0
    rows_bad: int = 0
    dead_letters: Optional[DeadLetterBuffer] = None
    errors_sampled: List[RowError] = field(default_factory=list)

    @property
    def rows_total(self) -> int:
        return self.rows_ok + self.rows_bad

    @property
    def error_rate(self) -> float:
        total = self.rows_total
        return self.rows_bad / total if total else 0.0

    def record_bad(self, row_error: RowError, policy: ErrorPolicy) -> None:
        """Count one rejected row, quarantining it when the policy says so."""
        self.rows_bad += 1
        if policy is ErrorPolicy.QUARANTINE:
            if self.dead_letters is None:
                self.dead_letters = DeadLetterBuffer()
            self.dead_letters.offer(row_error)
