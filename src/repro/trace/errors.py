"""Ingestion error policies and the dead-letter buffer.

A production monitor ingests traces produced by other systems -- kernels,
collectors, network copies -- and real-world trace files contain malformed
rows: truncated lines, garbage op names, negative offsets, torn writes in
binary logs.  The paper's always-on premise (Fig. 3) means the replay must
not die on the first bad row; instead the reader is parameterised by an
:class:`ErrorPolicy`:

* ``STRICT`` -- raise on the first malformed row (the historical behaviour,
  right for tests and for traces you generated yourself);
* ``LENIENT`` -- count malformed rows and keep going;
* ``QUARANTINE`` -- like lenient, but additionally retain a bounded,
  deterministically sampled set of the offending rows (the *dead-letter
  buffer*) so an operator can inspect what the reader rejected.

The counters live in an :class:`IngestReport` the caller may pass in; the
dead-letter buffer uses seeded reservoir sampling so two runs over the same
file quarantine the same rows.
"""

from __future__ import annotations

import enum
import json
import os
import random
from dataclasses import dataclass, field
from typing import List, Optional


class ErrorPolicy(enum.Enum):
    """What a trace reader does with a row it cannot parse."""

    STRICT = "strict"
    LENIENT = "lenient"
    QUARANTINE = "quarantine"

    @classmethod
    def parse(cls, text: str) -> "ErrorPolicy":
        try:
            return cls(text.strip().lower())
        except ValueError:
            known = ", ".join(policy.value for policy in cls)
            raise ValueError(
                f"unknown error policy {text!r}; know {known}"
            ) from None


@dataclass(frozen=True)
class RowError:
    """One rejected row: where it was, what it said, why it failed."""

    line_number: int
    row: str
    error: str


class DeadLetterBuffer:
    """A bounded, deterministic reservoir sample of rejected rows.

    Keeps at most ``capacity`` :class:`RowError` entries.  Once full, each
    further offer replaces a random resident with the classic reservoir
    rule, driven by a seeded RNG so the retained sample is reproducible.
    ``total`` always counts every offer, retained or not.

    The buffer is additionally bounded in *bytes* (``max_bytes``, counting
    the retained row texts): a handful of pathological multi-megabyte rows
    must not hold the whole budget hostage.  A row that would push the
    retained sample past the byte budget evicts residents oldest-first
    until it fits; a single row larger than the whole budget is counted
    but retained truncated to the budget.
    """

    DEFAULT_MAX_BYTES = 1 << 20

    def __init__(self, capacity: int = 64, seed: int = 0,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.total = 0
        self._rows: List[RowError] = []
        self._bytes = 0
        self._rng = random.Random(seed)

    @staticmethod
    def _cost(row_error: RowError) -> int:
        return len(row_error.row.encode("utf-8", errors="replace"))

    def _fit(self, row_error: RowError) -> RowError:
        if self._cost(row_error) > self.max_bytes:
            clipped = row_error.row.encode(
                "utf-8", errors="replace")[:self.max_bytes]
            row_error = RowError(
                line_number=row_error.line_number,
                row=clipped.decode("utf-8", errors="replace"),
                error=row_error.error + " [row truncated]",
            )
        return row_error

    def _evict_until(self, incoming_cost: int) -> None:
        while self._rows and self._bytes + incoming_cost > self.max_bytes:
            self._bytes -= self._cost(self._rows.pop(0))

    def offer(self, row_error: RowError) -> None:
        self.total += 1
        row_error = self._fit(row_error)
        cost = self._cost(row_error)
        if len(self._rows) < self.capacity:
            self._evict_until(cost)
            self._rows.append(row_error)
            self._bytes += cost
            return
        slot = self._rng.randrange(self.total)
        if slot < self.capacity:
            self._bytes -= self._cost(self._rows[slot])
            self._rows[slot] = row_error
            self._bytes += cost
            self._evict_until(0)

    def rows(self) -> List[RowError]:
        """The retained sample, in retention order."""
        return list(self._rows)

    @property
    def retained_bytes(self) -> int:
        """Bytes of row text currently retained."""
        return self._bytes

    def dump_ndjson(self, path) -> int:
        """Write the retained sample to ``path`` as NDJSON; returns the
        number of rows written.  One object per line --
        ``{"line_number", "error", "row"}`` -- so operators can grep or
        feed the quarantine straight back through a reader."""
        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as sink:
            for row_error in self._rows:
                sink.write(json.dumps({
                    "line_number": row_error.line_number,
                    "error": row_error.error,
                    "row": row_error.row,
                }, sort_keys=True))
                sink.write("\n")
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


@dataclass
class IngestReport:
    """Counters (and optionally quarantined rows) from one read pass."""

    rows_ok: int = 0
    rows_bad: int = 0
    dead_letters: Optional[DeadLetterBuffer] = None
    errors_sampled: List[RowError] = field(default_factory=list)

    @property
    def rows_total(self) -> int:
        return self.rows_ok + self.rows_bad

    @property
    def error_rate(self) -> float:
        total = self.rows_total
        return self.rows_bad / total if total else 0.0

    def record_bad(self, row_error: RowError, policy: ErrorPolicy) -> None:
        """Count one rejected row, quarantining it when the policy says so."""
        self.rows_bad += 1
        if policy is ErrorPolicy.QUARANTINE:
            if self.dead_letters is None:
                self.dead_letters = DeadLetterBuffer()
            self.dead_letters.offer(row_error)
