"""Trace filtering and sampling utilities.

Real traces are heterogeneous; the paper's own methodology slices them
("the disk with the greatest number of requests", the first 100 K requests
for Fig. 10) and filters events by process ID.  These helpers make the
common selections first-class: by operation, process, block range, time
window, plus deterministic downsampling for quick experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .record import OpType, TraceRecord


def filter_by_op(records: Iterable[TraceRecord], op: OpType
                 ) -> List[TraceRecord]:
    """Keep only reads or only writes."""
    return [record for record in records if record.op is op]


def filter_by_pid(records: Iterable[TraceRecord],
                  pids: Sequence[int]) -> List[TraceRecord]:
    """Keep requests issued by the given process IDs."""
    wanted = set(pids)
    return [record for record in records if record.pid in wanted]


def filter_by_block_range(
    records: Iterable[TraceRecord], low: int, high: int
) -> List[TraceRecord]:
    """Keep requests entirely inside block range ``[low, high)``."""
    if high <= low:
        raise ValueError(f"empty block range [{low}, {high})")
    return [
        record for record in records
        if record.start >= low and record.start + record.length <= high
    ]


def filter_by_time(
    records: Iterable[TraceRecord],
    start: float = 0.0,
    end: Optional[float] = None,
    rebase: bool = True,
) -> List[TraceRecord]:
    """Keep requests with ``start <= timestamp < end``.

    With ``rebase`` (default) the surviving records are shifted so the
    window starts at time zero -- what slicing for replay wants.
    """
    if end is not None and end <= start:
        raise ValueError(f"empty time window [{start}, {end})")
    kept = [
        record for record in records
        if record.timestamp >= start
        and (end is None or record.timestamp < end)
    ]
    if rebase and kept:
        base = kept[0].timestamp
        kept = [record.shifted(-base) for record in kept]
    return kept


def filter_by_disk(records: Iterable[TraceRecord], disk_id: int
                   ) -> List[TraceRecord]:
    """Keep one disk of a multi-disk trace (the paper keeps the busiest)."""
    return [record for record in records if record.disk_id == disk_id]


def busiest_disk(records: Sequence[TraceRecord]) -> int:
    """Disk ID with the greatest number of requests (paper Section IV-B2)."""
    if not records:
        raise ValueError("cannot pick the busiest disk of an empty trace")
    counts: dict = {}
    for record in records:
        counts[record.disk_id] = counts.get(record.disk_id, 0) + 1
    return max(counts, key=lambda disk: (counts[disk], -disk))


def downsample(records: Sequence[TraceRecord], keep_one_in: int
               ) -> List[TraceRecord]:
    """Deterministically keep every ``keep_one_in``-th request."""
    if keep_one_in < 1:
        raise ValueError(f"keep_one_in must be >= 1, got {keep_one_in}")
    return list(records[::keep_one_in])


def split_reads_writes(
    records: Iterable[TraceRecord],
) -> tuple:
    """Partition into (reads, writes) preserving order."""
    reads: List[TraceRecord] = []
    writes: List[TraceRecord] = []
    for record in records:
        (reads if record.is_read else writes).append(record)
    return reads, writes
