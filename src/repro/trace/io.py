"""Trace serialisation: MSR-style CSV and a compact binary format.

Two formats are supported:

* **MSR CSV** -- the column convention of the Microsoft Research Cambridge
  traces the paper evaluates on: ``Timestamp,Hostname,DiskNumber,Type,
  Offset,Size,ResponseTime``, with the timestamp and response time in
  Windows filetime ticks (100 ns) and offset/size in bytes.
* **Binary** -- a fixed-width little-endian record (the moral equivalent of
  blktrace's binary output): one 33-byte struct per request, preceded by an
  8-byte magic/version header.  This is the format the paper's offline path
  would write to disk; its size is what "wastes storage space" in the
  paper's motivation, so the writer reports bytes written.

Every path-based loader and saver transparently handles gzip: a ``.gz``
suffix (``trace.csv.gz``, ``trace.bin.gz``) opens through ``gzip.open``,
so MSR-style traces can be streamed compressed -- the distributed MSR
Cambridge archives are gzipped CSVs, and the serving layer's ``repro
send`` feeds them without an intermediate decompress step.  Use
:func:`trace_format_suffix` to dispatch on the *format* suffix with the
``.gz`` stripped.
"""

from __future__ import annotations

import gzip
import math
import struct
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from .errors import ErrorPolicy, IngestReport, RowError
from .record import BLOCK_SIZE, OpType, TraceRecord

#: Windows filetime resolution: 100 ns ticks per second.
FILETIME_TICKS_PER_SECOND = 10_000_000

_BINARY_MAGIC = b"RTDACT\x01\x00"
_RECORD_STRUCT = struct.Struct("<dIBQId")  # ts, pid, op, start, length, latency
_NO_LATENCY = -1.0

PathOrStr = Union[str, Path]


def is_gzip_path(path: PathOrStr) -> bool:
    """Whether ``path`` names a gzip-compressed trace (``.gz`` suffix)."""
    return Path(path).suffix.lower() == ".gz"


def trace_format_suffix(path: PathOrStr) -> str:
    """The lowercase format suffix, looking through a ``.gz`` wrapper.

    ``trace.csv.gz`` -> ``".csv"``; ``trace.bin`` -> ``".bin"``.
    """
    path = Path(path)
    if is_gzip_path(path):
        path = path.with_suffix("")
    return path.suffix.lower()


def _open_text(path: PathOrStr, mode: str) -> IO[str]:
    """Open a text trace file, transparently gzipped when ``.gz``."""
    if is_gzip_path(path):
        return gzip.open(path, mode + "t", encoding="ascii",
                         errors="replace" if mode == "r" else "strict")
    errors = "replace" if mode == "r" else "strict"
    return open(path, mode, encoding="ascii", errors=errors)


def _open_bytes(path: PathOrStr, mode: str) -> IO[bytes]:
    """Open a binary trace file, transparently gzipped when ``.gz``."""
    if is_gzip_path(path):
        return gzip.open(path, mode + "b")
    return open(path, mode + "b")


# ---------------------------------------------------------------------------
# MSR-style CSV
# ---------------------------------------------------------------------------

def write_msr_csv(records: Iterable[TraceRecord], stream: IO[str],
                  hostname: str = "repro") -> int:
    """Write records in MSR Cambridge CSV convention; returns rows written."""
    rows = 0
    for record in records:
        ticks = round(record.timestamp * FILETIME_TICKS_PER_SECOND)
        response = (
            round(record.latency * FILETIME_TICKS_PER_SECOND)
            if record.latency is not None
            else 0
        )
        op_name = "Read" if record.is_read else "Write"
        stream.write(
            f"{ticks},{hostname},{record.disk_id},{op_name},"
            f"{record.start * BLOCK_SIZE},{record.size_bytes},{response}\n"
        )
        rows += 1
    return rows


def _parse_msr_row(line: str, line_number: int, pid: int) -> TraceRecord:
    """Parse one stripped, non-comment MSR CSV row (raises ValueError)."""
    fields = line.split(",")
    if len(fields) != 7:
        raise ValueError(
            f"line {line_number}: expected 7 MSR fields, got {len(fields)}"
        )
    ticks, _hostname, disk, op_name, offset, size, response = fields
    if int(size) <= 0:
        raise ValueError(
            f"line {line_number}: request size must be positive, "
            f"got {size}"
        )
    latency_ticks = int(response)
    try:
        return TraceRecord(
            timestamp=int(ticks) / FILETIME_TICKS_PER_SECOND,
            pid=pid,
            op=OpType.parse(op_name),
            start=int(offset) // BLOCK_SIZE,
            length=max(1, -(-int(size) // BLOCK_SIZE)),
            latency=(
                latency_ticks / FILETIME_TICKS_PER_SECOND
                if latency_ticks > 0
                else None
            ),
            disk_id=int(disk),
        )
    except ValueError as exc:
        raise ValueError(f"line {line_number}: {exc}") from exc


def read_msr_csv(
    stream: IO[str],
    pid: int = 0,
    policy: ErrorPolicy = ErrorPolicy.STRICT,
    report: Optional[IngestReport] = None,
) -> Iterator[TraceRecord]:
    """Parse MSR Cambridge CSV rows into :class:`TraceRecord` objects.

    The MSR format does not carry a PID; the caller may assign one (the
    paper's monitor filters by PID when isolating a workload).  Offsets are
    converted to 512-byte block numbers; sizes are rounded up to whole
    blocks.  A zero response time is treated as "latency unknown".

    ``policy`` decides what happens on a malformed row: ``STRICT`` raises
    (the default), ``LENIENT`` counts and skips, ``QUARANTINE`` counts,
    skips, and samples the row into ``report.dead_letters``.  Pass a
    :class:`~repro.trace.errors.IngestReport` to receive the counters.
    """
    if report is None:
        report = IngestReport()
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = _parse_msr_row(line, line_number, pid)
        except ValueError as exc:
            if policy is ErrorPolicy.STRICT:
                raise
            report.record_bad(
                RowError(line_number, line, str(exc)), policy
            )
            continue
        report.rows_ok += 1
        yield record


def save_msr_csv(records: Iterable[TraceRecord], path: PathOrStr,
                 hostname: str = "repro") -> int:
    with _open_text(path, "w") as stream:
        return write_msr_csv(records, stream, hostname=hostname)


def load_msr_csv(
    path: PathOrStr,
    pid: int = 0,
    policy: ErrorPolicy = ErrorPolicy.STRICT,
    report: Optional[IngestReport] = None,
) -> List[TraceRecord]:
    with _open_text(path, "r") as stream:
        return list(read_msr_csv(stream, pid=pid, policy=policy,
                                 report=report))


# ---------------------------------------------------------------------------
# Binary format
# ---------------------------------------------------------------------------

def write_binary(records: Iterable[TraceRecord], stream: IO[bytes]) -> int:
    """Write the binary trace format; returns total bytes written."""
    stream.write(_BINARY_MAGIC)
    written = len(_BINARY_MAGIC)
    for record in records:
        latency = record.latency if record.latency is not None else _NO_LATENCY
        op_byte = 0 if record.is_read else 1
        stream.write(
            _RECORD_STRUCT.pack(
                record.timestamp, record.pid, op_byte,
                record.start, record.length, latency,
            )
        )
        written += _RECORD_STRUCT.size
    return written


def read_binary(
    stream: IO[bytes],
    policy: ErrorPolicy = ErrorPolicy.STRICT,
    report: Optional[IngestReport] = None,
) -> Iterator[TraceRecord]:
    """Read records written by :func:`write_binary`.

    A bad magic always raises (there is nothing to resynchronise on).
    Under a non-strict ``policy``, a record whose fields fail validation
    (torn write, bit rot) is counted and skipped -- the fixed record width
    makes resynchronisation trivial -- and a truncated trailing record ends
    the stream instead of raising.
    """
    if report is None:
        report = IngestReport()
    magic = stream.read(len(_BINARY_MAGIC))
    if magic != _BINARY_MAGIC:
        raise ValueError(f"bad trace magic: {magic!r}")
    record_number = 0
    while True:
        chunk = stream.read(_RECORD_STRUCT.size)
        if not chunk:
            return
        record_number += 1
        if len(chunk) != _RECORD_STRUCT.size:
            if policy is ErrorPolicy.STRICT:
                raise ValueError("truncated trace record")
            report.record_bad(
                RowError(record_number, chunk.hex(),
                         "truncated trace record"),
                policy,
            )
            return
        timestamp, pid, op_byte, start, length, latency = _RECORD_STRUCT.unpack(chunk)
        try:
            if not math.isfinite(timestamp):
                raise ValueError(f"non-finite timestamp {timestamp!r}")
            if not (latency < 0 or math.isfinite(latency)):
                raise ValueError(f"non-finite latency {latency!r}")
            record = TraceRecord(
                timestamp=timestamp,
                pid=pid,
                op=OpType.READ if op_byte == 0 else OpType.WRITE,
                start=start,
                length=length,
                latency=None if latency < 0 else latency,
            )
        except ValueError as exc:
            if policy is ErrorPolicy.STRICT:
                raise ValueError(f"record {record_number}: {exc}") from exc
            report.record_bad(
                RowError(record_number, chunk.hex(), str(exc)), policy
            )
            continue
        report.rows_ok += 1
        yield record


def save_binary(records: Iterable[TraceRecord], path: PathOrStr) -> int:
    with _open_bytes(path, "w") as stream:
        return write_binary(records, stream)


def load_binary(
    path: PathOrStr,
    policy: ErrorPolicy = ErrorPolicy.STRICT,
    report: Optional[IngestReport] = None,
) -> List[TraceRecord]:
    with _open_bytes(path, "r") as stream:
        return list(read_binary(stream, policy=policy, report=report))


# ---------------------------------------------------------------------------
# blkparse-style text format
# ---------------------------------------------------------------------------

def write_blkparse_text(records: Iterable[TraceRecord], stream: IO[str],
                        device: str = "8,0", action: str = "D") -> int:
    """Write records as blkparse-style text lines.

    The format mirrors ``blkparse`` default output for one event per
    request::

        8,0    0        1     0.000102837  697  D   R 223490 + 8 [fio]

    i.e. ``maj,min cpu seq timestamp pid action rwbs sector + blocks
    [process]``.  The paper's monitor consumes blktrace's binary "issue"
    (``D``) events directly; this text form exists for interoperability
    with tooling and for human inspection.  Returns lines written.
    """
    lines = 0
    for sequence, record in enumerate(records, start=1):
        rwbs = "R" if record.is_read else "W"
        stream.write(
            f"{device:>5} {0:>4} {sequence:>8} {record.timestamp:>14.9f} "
            f"{record.pid:>6}  {action}   {rwbs} {record.start} + "
            f"{record.length} [pid{record.pid}]\n"
        )
        lines += 1
    return lines


def read_blkparse_text(stream: IO[str], action: str = "D") -> Iterator[TraceRecord]:
    """Parse blkparse-style text, keeping only lines of ``action`` type.

    Lines that do not parse as events (summary sections, blank lines) are
    skipped, mirroring how blkparse output is consumed in practice.
    """
    for line in stream:
        fields = line.split()
        if len(fields) < 9 or fields[5] != action:
            continue
        try:
            timestamp = float(fields[3])
            pid = int(fields[4])
            op = OpType.parse(fields[6][0])
            start = int(fields[7])
            if fields[8] != "+":
                continue
            length = int(fields[9])
        except (ValueError, IndexError):
            continue
        yield TraceRecord(timestamp, pid, op, start, length)


def save_blkparse_text(records: Iterable[TraceRecord], path: PathOrStr,
                       device: str = "8,0") -> int:
    with _open_text(path, "w") as stream:
        return write_blkparse_text(records, stream, device=device)


def load_blkparse_text(path: PathOrStr) -> List[TraceRecord]:
    with _open_text(path, "r") as stream:
        return list(read_blkparse_text(stream))


def binary_trace_bytes(record_count: int) -> int:
    """Bytes the binary format needs for ``record_count`` records.

    Used by the storage-overhead comparison: offline analysis must persist
    the whole trace, whereas the online synopsis is fixed-size.
    """
    return len(_BINARY_MAGIC) + record_count * _RECORD_STRUCT.size
