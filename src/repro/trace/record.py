"""Block-layer trace records.

A :class:`TraceRecord` carries the fields the paper's monitoring module
consumes from blktrace "issue" events -- timestamp, process ID, operation
type, starting block, and request size -- plus the per-request latency that
recorded traces (such as the Microsoft Research Cambridge traces) report and
that Table II's replay-speedup computation depends on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from ..core.extent import Extent

#: Block (sector) size in bytes; the paper's traces use 512-byte sectors.
BLOCK_SIZE = 512


class OpType(enum.Enum):
    """Read or write."""

    READ = "R"
    WRITE = "W"

    @classmethod
    def parse(cls, text: str) -> "OpType":
        normalized = text.strip().upper()
        if normalized in ("R", "READ"):
            return cls.READ
        if normalized in ("W", "WRITE"):
            return cls.WRITE
        raise ValueError(f"not a valid operation type: {text!r}")


@dataclass(frozen=True)
class TraceRecord:
    """One block I/O request.

    ``timestamp`` is seconds from the start of the trace; ``start`` and
    ``length`` are in 512-byte blocks; ``latency`` is the device response
    time in seconds as recorded in the trace (``None`` when the trace does
    not report latencies).
    """

    timestamp: float
    pid: int
    op: OpType
    start: int
    length: int
    latency: Optional[float] = None
    disk_id: int = 0

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be >= 0, got {self.timestamp}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.length <= 0:
            raise ValueError(f"length must be > 0, got {self.length}")
        if self.latency is not None and self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")

    @property
    def extent(self) -> Extent:
        """The extent this request covers."""
        return Extent(self.start, self.length)

    @property
    def size_bytes(self) -> int:
        return self.length * BLOCK_SIZE

    @property
    def is_read(self) -> bool:
        return self.op is OpType.READ

    @property
    def is_write(self) -> bool:
        return self.op is OpType.WRITE

    def shifted(self, delta_seconds: float) -> "TraceRecord":
        """Copy of this record with the timestamp shifted by ``delta_seconds``."""
        return replace(self, timestamp=self.timestamp + delta_seconds)

    def accelerated(self, speedup: float) -> "TraceRecord":
        """Copy with the arrival time divided by ``speedup`` (Table II replay)."""
        if speedup <= 0:
            raise ValueError(f"speedup must be > 0, got {speedup}")
        return replace(self, timestamp=self.timestamp / speedup)
