"""Trace statistics (paper Table I).

Table I characterises each workload by total data accessed, *unique* data
accessed (the footprint: the size of the union of all accessed block
ranges), and the percentage of requests whose interarrival time is below
100 microseconds.  This module computes those statistics, plus the mean
recorded latency that Table II's replay-speedup computation starts from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .record import BLOCK_SIZE, TraceRecord

#: Table I's interarrival threshold: 100 microseconds.
DEFAULT_INTERARRIVAL_THRESHOLD = 100e-6


def merge_intervals(intervals: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge half-open integer intervals ``[start, end)`` into disjoint runs."""
    ordered = sorted(intervals)
    merged: List[Tuple[int, int]] = []
    for start, end in ordered:
        if end <= start:
            raise ValueError(f"empty or inverted interval: [{start}, {end})")
        if merged and start <= merged[-1][1]:
            previous_start, previous_end = merged[-1]
            merged[-1] = (previous_start, max(previous_end, end))
        else:
            merged.append((start, end))
    return merged


def unique_blocks(records: Iterable[TraceRecord]) -> int:
    """Number of distinct blocks touched by the trace (footprint in blocks)."""
    merged = merge_intervals(
        (record.start, record.start + record.length) for record in records
    )
    return sum(end - start for start, end in merged)


@dataclass(frozen=True)
class TraceStats:
    """The statistics reported per workload in Table I, plus extras."""

    requests: int
    total_bytes: int
    unique_bytes: int
    fast_interarrival_fraction: float
    read_fraction: float
    mean_latency: Optional[float]
    duration: float

    @property
    def total_gb(self) -> float:
        return self.total_bytes / 1e9

    @property
    def unique_gb(self) -> float:
        return self.unique_bytes / 1e9

    @property
    def fast_interarrival_percent(self) -> float:
        return 100.0 * self.fast_interarrival_fraction


def compute_stats(
    records: Sequence[TraceRecord],
    interarrival_threshold: float = DEFAULT_INTERARRIVAL_THRESHOLD,
) -> TraceStats:
    """Compute Table I statistics for a trace.

    Requests are expected in (or are sorted into) timestamp order before
    interarrival times are measured, matching how the traces were recorded.
    """
    if not records:
        raise ValueError("cannot compute statistics of an empty trace")

    ordered = sorted(records, key=lambda record: record.timestamp)
    total_bytes = sum(record.size_bytes for record in ordered)
    footprint_bytes = unique_blocks(ordered) * BLOCK_SIZE

    fast = 0
    for previous, current in zip(ordered, ordered[1:]):
        if current.timestamp - previous.timestamp < interarrival_threshold:
            fast += 1
    interarrivals = len(ordered) - 1
    fast_fraction = fast / interarrivals if interarrivals else 0.0

    reads = sum(1 for record in ordered if record.is_read)
    latencies = [record.latency for record in ordered if record.latency is not None]
    mean_latency = sum(latencies) / len(latencies) if latencies else None

    return TraceStats(
        requests=len(ordered),
        total_bytes=total_bytes,
        unique_bytes=footprint_bytes,
        fast_interarrival_fraction=fast_fraction,
        read_fraction=reads / len(ordered),
        mean_latency=mean_latency,
        duration=ordered[-1].timestamp - ordered[0].timestamp,
    )


def format_table1_row(name: str, description: str, stats: TraceStats) -> str:
    """One row in the shape of the paper's Table I."""
    return (
        f"{name:<8} {description:<20} {stats.total_gb:>8.1f} GB "
        f"{stats.unique_gb:>8.2f} GB {stats.fast_interarrival_percent:>6.1f}%"
    )
