"""Workload generators: synthetic correlation workloads and MSR-like models."""

from .arrival import (
    ArrivalProcess,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    interarrival_fraction_below,
)
from .composite import Segment, drift_workload, slice_requests, splice
from .multitenant import (
    Tenant,
    check_disjoint_volumes,
    make_tenant,
    merge_tenants,
    shared_workload,
    tenant_address_ranges,
)
from .enterprise import (
    PROFILES,
    WORKLOAD_NAMES,
    EnterpriseProfile,
    EnterpriseTruth,
    generate_enterprise,
    generate_named,
)
from .semantic import (
    FileObject,
    FileServerSpec,
    FilesystemLayout,
    SemanticTruth,
    Table,
    WebsiteSpec,
    generate_fileserver,
    generate_website,
)
from .synthetic import (
    SyntheticKind,
    SyntheticSpec,
    SyntheticTruth,
    all_synthetic_specs,
    generate_synthetic,
)
from .zipf import ZipfRanks, empirical_frequencies

__all__ = [
    "ArrivalProcess",
    "DiurnalArrivals",
    "OnOffArrivals",
    "PoissonArrivals",
    "interarrival_fraction_below",
    "PROFILES",
    "WORKLOAD_NAMES",
    "EnterpriseProfile",
    "EnterpriseTruth",
    "FileObject",
    "FileServerSpec",
    "FilesystemLayout",
    "SemanticTruth",
    "Table",
    "WebsiteSpec",
    "generate_fileserver",
    "generate_website",
    "Segment",
    "SyntheticKind",
    "SyntheticSpec",
    "SyntheticTruth",
    "Tenant",
    "check_disjoint_volumes",
    "make_tenant",
    "merge_tenants",
    "shared_workload",
    "tenant_address_ranges",
    "ZipfRanks",
    "all_synthetic_specs",
    "drift_workload",
    "empirical_frequencies",
    "generate_enterprise",
    "generate_named",
    "generate_synthetic",
    "slice_requests",
    "splice",
]
