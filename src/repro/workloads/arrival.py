"""Arrival-process models for workload generation.

Storage arrival streams are rarely Poisson: the paper's Table I shows
65-78 % of interarrivals under 100 us against multi-millisecond means --
heavy burst structure.  This module provides composable arrival processes:

* :class:`PoissonArrivals` -- the memoryless baseline (the paper's
  synthetic workloads use exponential interarrivals);
* :class:`OnOffArrivals` -- a two-state Markov-modulated process (bursts
  of fast arrivals separated by quiet periods), the structure behind the
  enterprise models' interarrival mixtures;
* :class:`DiurnalArrivals` -- a rate envelope over the day, for long-trace
  experiments where load follows working hours.

All processes are deterministic under a seed and expose the same
``times(horizon)`` iterator, so generators can swap them freely.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Optional, Sequence


class ArrivalProcess:
    """Base: yields strictly increasing arrival times up to a horizon."""

    def times(self, horizon: float) -> Iterator[float]:
        raise NotImplementedError

    def count_in(self, horizon: float) -> int:
        """Convenience: number of arrivals in ``[0, horizon)``."""
        return sum(1 for _t in self.times(horizon))


class PoissonArrivals(ArrivalProcess):
    """Exponential interarrivals with constant rate (arrivals/second)."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = rate
        self._seed = seed

    def times(self, horizon: float) -> Iterator[float]:
        rng = random.Random(self._seed)
        clock = rng.expovariate(self.rate)
        while clock < horizon:
            yield clock
            clock += rng.expovariate(self.rate)


class OnOffArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    In the ON state arrivals come at ``burst_rate``; in the OFF state none
    arrive.  State holding times are exponential with the given means.
    The long-run mean rate is ``burst_rate * on_mean / (on_mean +
    off_mean)``; burstiness (fraction of sub-threshold interarrivals) is
    set by how much ``burst_rate`` exceeds that mean.
    """

    def __init__(
        self,
        burst_rate: float,
        on_mean: float,
        off_mean: float,
        seed: int = 0,
    ) -> None:
        if burst_rate <= 0:
            raise ValueError(f"burst_rate must be > 0, got {burst_rate}")
        if on_mean <= 0 or off_mean <= 0:
            raise ValueError("state holding means must be > 0")
        self.burst_rate = burst_rate
        self.on_mean = on_mean
        self.off_mean = off_mean
        self._seed = seed

    @property
    def mean_rate(self) -> float:
        duty = self.on_mean / (self.on_mean + self.off_mean)
        return self.burst_rate * duty

    def times(self, horizon: float) -> Iterator[float]:
        rng = random.Random(self._seed)
        clock = 0.0
        on = rng.random() < self.on_mean / (self.on_mean + self.off_mean)
        while clock < horizon:
            hold = rng.expovariate(
                1.0 / (self.on_mean if on else self.off_mean)
            )
            state_end = min(clock + hold, horizon)
            if on:
                arrival = clock + rng.expovariate(self.burst_rate)
                while arrival < state_end:
                    yield arrival
                    arrival += rng.expovariate(self.burst_rate)
            clock = state_end
            on = not on


class DiurnalArrivals(ArrivalProcess):
    """Poisson arrivals with a sinusoidal daily rate envelope.

    ``rate(t) = base_rate * (1 + amplitude * sin(2 pi t / period + phase))``
    thinned from a dominating Poisson stream (Lewis-Shedler), so the
    instantaneous rate is exact.
    """

    def __init__(
        self,
        base_rate: float,
        amplitude: float = 0.8,
        period: float = 86400.0,
        phase: float = 0.0,
        seed: int = 0,
    ) -> None:
        if base_rate <= 0:
            raise ValueError(f"base_rate must be > 0, got {base_rate}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period
        self.phase = phase
        self._seed = seed

    def rate_at(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude
            * math.sin(2.0 * math.pi * t / self.period + self.phase)
        )

    def times(self, horizon: float) -> Iterator[float]:
        rng = random.Random(self._seed)
        ceiling = self.base_rate * (1.0 + self.amplitude)
        clock = 0.0
        while True:
            clock += rng.expovariate(ceiling)
            if clock >= horizon:
                return
            if rng.random() < self.rate_at(clock) / ceiling:
                yield clock


def interarrival_fraction_below(
    times: Sequence[float], threshold: float
) -> float:
    """Fraction of consecutive interarrival gaps below ``threshold`` --
    the Table I burstiness statistic, for calibrating processes."""
    if len(times) < 2:
        return 0.0
    fast = sum(
        1 for earlier, later in zip(times, times[1:])
        if later - earlier < threshold
    )
    return fast / (len(times) - 1)
