"""Composite workloads for the concept-drift experiment (paper Fig. 10).

The paper demonstrates adaptation to *concept drift* by splicing traces:
the first 100 K requests of wdev, then the first 100 K requests of hm, then
the second 100 K requests of wdev, replayed as a single workload.  This
module provides trace slicing and splicing with timestamp rebasing so the
spliced trace is monotone in time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..trace.record import TraceRecord


@dataclass(frozen=True)
class Segment:
    """One labelled slice of a composite workload."""

    label: str
    records: Tuple[TraceRecord, ...]

    def __len__(self) -> int:
        return len(self.records)


def slice_requests(
    records: Sequence[TraceRecord], start: int, count: int
) -> List[TraceRecord]:
    """Requests ``[start, start + count)`` rebased to timestamp zero."""
    if start < 0 or count < 1:
        raise ValueError(f"bad slice: start={start} count={count}")
    window = list(records[start:start + count])
    if len(window) < count:
        raise ValueError(
            f"trace has only {len(records)} requests; cannot slice "
            f"[{start}, {start + count})"
        )
    base = window[0].timestamp
    return [record.shifted(-base) for record in window]


def splice(segments: Sequence[Tuple[str, Sequence[TraceRecord]]],
           gap: float = 1e-3) -> Tuple[List[TraceRecord], List[Segment]]:
    """Concatenate labelled record sequences into one monotone trace.

    Each segment is rebased to start ``gap`` seconds after the previous
    segment's last request.  Returns the flat record list plus the rebased
    segments (whose boundaries the drift experiment snapshots at).
    """
    flat: List[TraceRecord] = []
    rebased_segments: List[Segment] = []
    clock = 0.0
    for label, records in segments:
        if not records:
            raise ValueError(f"segment {label!r} is empty")
        base = records[0].timestamp
        shifted = [record.shifted(clock - base) for record in records]
        flat.extend(shifted)
        rebased_segments.append(Segment(label, tuple(shifted)))
        clock = shifted[-1].timestamp + gap
    return flat, rebased_segments


def drift_workload(
    first: Sequence[TraceRecord],
    second: Sequence[TraceRecord],
    segment_requests: int,
    labels: Tuple[str, str] = ("A", "B"),
) -> Tuple[List[TraceRecord], List[Segment]]:
    """The paper's A(1st) -> B(1st) -> A(2nd) drift composition.

    ``first`` must contain at least ``2 * segment_requests`` requests and
    ``second`` at least ``segment_requests``.
    """
    part_a1 = slice_requests(first, 0, segment_requests)
    part_b = slice_requests(second, 0, segment_requests)
    part_a2 = slice_requests(first, segment_requests, segment_requests)
    return splice([
        (f"{labels[0]}-1", part_a1),
        (f"{labels[1]}-1", part_b),
        (f"{labels[0]}-2", part_a2),
    ])
