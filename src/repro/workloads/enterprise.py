"""Synthetic models of the Microsoft Research Cambridge workloads.

The paper evaluates on five week-long block traces from enterprise servers
at Microsoft Research Cambridge (wdev, src2, rsrch, stg, hm).  Those traces
are not redistributable, so this module models them synthetically.  Every
result in the paper that involves them depends on a handful of aggregate
properties, which the models are calibrated to reproduce at a configurable
scale:

* the ratio of total to *unique* data accessed (Table I) -- controlled by
  the fraction of request bursts drawn from a reused "hot" pool;
* the fraction of interarrival times below 100 us (Table I) -- controlled
  by the burst structure and the fast/slow gap mixture;
* the mean recorded (HDD-era) latency (Table II) -- drawn lognormally
  around the per-workload mean the paper reports;
* the Zipf-like extent-correlation frequency distribution with a large
  infrequent tail (Figures 5, 6, 9) -- hot correlated pairs with Zipf
  popularity over a background of one-off coincidental pairs;
* workload-specific quirks the paper calls out: wdev repeats identical
  requests within one window (motivating dedup), stg uses a number space
  an order of magnitude larger with a mostly-unique footprint, and hm has
  a region of blocks frequently requested but correlated only by
  coincidence.

Scale is set by the request count; the defaults produce traces thousands of
times shorter than a week but with the same shape parameters.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.extent import Extent, ExtentPair
from ..trace.record import OpType, TraceRecord
from .zipf import ZipfRanks

#: Request length distribution in 512-byte blocks (weights sum to 1).
_LENGTH_CHOICES: Sequence[Tuple[int, float]] = (
    (8, 0.45),   # 4 KB
    (16, 0.25),  # 8 KB
    (32, 0.15),  # 16 KB
    (64, 0.10),  # 32 KB
    (128, 0.05),  # 64 KB
)

#: The Table I interarrival threshold.
_FAST_THRESHOLD = 100e-6


@dataclass(frozen=True)
class EnterpriseProfile:
    """Shape parameters of one modelled MSR workload."""

    name: str
    description: str
    reuse_fraction: float        # fraction of bursts drawn from the hot pool
    hot_pairs: int               # correlated pairs in the hot pool
    hot_singles: int             # hot extents that appear alone (hm-style)
    zipf_exponent: float         # popularity skew of the hot pool
    space_per_request: int       # number-space blocks per generated request
    mean_burst_size: float       # mean requests per arrival burst
    fast_gap_probability: float  # P(between-burst gap < 100 us)
    read_fraction: float
    repeat_in_window: float      # P(duplicate request inside a burst) -- wdev
    sequential_fraction: float   # P(cold burst is a sequential run)
    mean_trace_latency: float    # recorded (HDD) latency mean, seconds
    latency_sigma: float = 0.6   # lognormal shape of recorded latencies


#: Calibrated against Table I / Table II and the qualitative descriptions.
PROFILES: Dict[str, EnterpriseProfile] = {
    "wdev": EnterpriseProfile(
        name="wdev", description="test web server",
        reuse_fraction=0.958, hot_pairs=160, hot_singles=40,
        zipf_exponent=0.9, space_per_request=220,
        mean_burst_size=2.8, fast_gap_probability=0.62,
        read_fraction=0.25, repeat_in_window=0.18, sequential_fraction=0.05,
        mean_trace_latency=3.65e-3,
    ),
    "src2": EnterpriseProfile(
        name="src2", description="version control",
        reuse_fraction=0.76, hot_pairs=400, hot_singles=80,
        zipf_exponent=0.85, space_per_request=900,
        mean_burst_size=2.5, fast_gap_probability=0.50,
        read_fraction=0.30, repeat_in_window=0.0, sequential_fraction=0.15,
        mean_trace_latency=3.88e-3,
    ),
    "rsrch": EnterpriseProfile(
        name="rsrch", description="research projects",
        reuse_fraction=0.926, hot_pairs=220, hot_singles=50,
        zipf_exponent=0.9, space_per_request=260,
        mean_burst_size=2.7, fast_gap_probability=0.60,
        read_fraction=0.10, repeat_in_window=0.0, sequential_fraction=0.08,
        mean_trace_latency=3.02e-3,
    ),
    "stg": EnterpriseProfile(
        name="stg", description="staging server",
        reuse_fraction=0.30, hot_pairs=300, hot_singles=60,
        zipf_exponent=0.8, space_per_request=9000,
        mean_burst_size=2.3, fast_gap_probability=0.39,
        read_fraction=0.35, repeat_in_window=0.0, sequential_fraction=0.25,
        mean_trace_latency=18.94e-3,
    ),
    "hm": EnterpriseProfile(
        name="hm", description="hardware monitor",
        reuse_fraction=0.970, hot_pairs=260, hot_singles=200,
        zipf_exponent=0.75, space_per_request=450,
        mean_burst_size=2.4, fast_gap_probability=0.52,
        read_fraction=0.35, repeat_in_window=0.0, sequential_fraction=0.05,
        mean_trace_latency=13.86e-3,
    ),
}

WORKLOAD_NAMES: Tuple[str, ...] = tuple(PROFILES)


@dataclass
class EnterpriseTruth:
    """The hot pool planted into a generated trace."""

    pairs: List[ExtentPair]
    pair_probabilities: List[float]
    singles: List[Extent]


def _draw_length(rng: random.Random) -> int:
    roll = rng.random()
    cumulative = 0.0
    for length, weight in _LENGTH_CHOICES:
        cumulative += weight
        if roll < cumulative:
            return length
    return _LENGTH_CHOICES[-1][0]


def _draw_latency(rng: random.Random, profile: EnterpriseProfile) -> float:
    """Recorded per-request latency, lognormal with the profile's mean."""
    sigma = profile.latency_sigma
    mu = math.log(profile.mean_trace_latency) - sigma * sigma / 2.0
    return rng.lognormvariate(mu, sigma)


def _build_hot_pool(
    profile: EnterpriseProfile, number_space: int, rng: random.Random
) -> EnterpriseTruth:
    """Place the hot correlated pairs and hot singles in the number space.

    The hot pool lives in the lower 40% of the number space (the "hot
    region" visible in the paper's heat maps); cold traffic is scattered
    over the whole space.
    """
    hot_region = max(number_space * 2 // 5, 4096)
    pairs: List[ExtentPair] = []
    seen = set()
    while len(pairs) < profile.hot_pairs:
        first = Extent(rng.randrange(hot_region), _draw_length(rng))
        second = Extent(rng.randrange(hot_region), _draw_length(rng))
        if first == second or first.overlaps(second):
            continue
        pair = ExtentPair(first, second)
        if pair in seen:
            continue
        seen.add(pair)
        pairs.append(pair)
    ranks = ZipfRanks(len(pairs), profile.zipf_exponent)
    singles = [
        Extent(rng.randrange(hot_region), _draw_length(rng))
        for _ in range(profile.hot_singles)
    ]
    return EnterpriseTruth(pairs, ranks.probabilities, singles)


def generate_enterprise(
    profile: EnterpriseProfile,
    requests: int = 20000,
    seed: int = 7,
    with_latency: bool = True,
    disks: int = 1,
) -> Tuple[List[TraceRecord], EnterpriseTruth]:
    """Generate a scaled MSR-like trace for ``profile``.

    The trace is a sequence of request *bursts*.  A burst is drawn from the
    hot pool with probability ``reuse_fraction`` (a correlated pair, or a
    hot single for hm-style coincidental traffic), otherwise it is cold:
    fresh extents scattered over the number space, sometimes as a
    sequential run.  Within-burst gaps are tens of microseconds; gaps
    between bursts mix a fast and a slow exponential to hit the profile's
    Table I interarrival fraction.
    """
    if requests < 2:
        raise ValueError(f"need at least 2 requests, got {requests}")
    # Salt the seed with the workload name so two different workloads
    # generated with the same seed never draw overlapping hot pools.
    if disks < 1:
        raise ValueError(f"disks must be >= 1, got {disks}")
    rng = random.Random(f"{profile.name}:{seed}")
    number_space = profile.space_per_request * requests
    truth = _build_hot_pool(profile, number_space, rng)
    pair_ranks = ZipfRanks(len(truth.pairs), profile.zipf_exponent)

    records: List[TraceRecord] = []
    clock = 0.0
    pid = 500

    def _emit(extent: Extent, op: OpType) -> None:
        nonlocal clock
        latency = _draw_latency(rng, profile) if with_latency else None
        # Multi-disk traces partition the address space into per-disk
        # volumes, as the MSR traces do (paper Section IV-B2).
        disk_id = min(extent.start * disks // max(1, number_space), disks - 1)
        records.append(
            TraceRecord(clock, pid, op, extent.start, extent.length,
                        latency, disk_id=disk_id)
        )

    def _op() -> OpType:
        return OpType.READ if rng.random() < profile.read_fraction else OpType.WRITE

    def _intra_gap() -> float:
        return rng.expovariate(1.0 / 15e-6)

    def _inter_gap() -> float:
        if rng.random() < profile.fast_gap_probability:
            return rng.expovariate(1.0 / 30e-6)
        return rng.expovariate(1.0 / 4e-3) + _FAST_THRESHOLD

    while len(records) < requests:
        if rng.random() < profile.reuse_fraction:
            # Hot burst.
            use_single = truth.singles and rng.random() < (
                profile.hot_singles / (profile.hot_singles + profile.hot_pairs)
            )
            if use_single:
                extent = truth.singles[rng.randrange(len(truth.singles))]
                _emit(extent, _op())
            else:
                pair = truth.pairs[pair_ranks.sample(rng) - 1]
                op = _op()
                first, second = pair.first, pair.second
                if rng.random() < 0.5:
                    first, second = second, first
                _emit(first, op)
                if rng.random() < profile.repeat_in_window:
                    clock += _intra_gap()
                    _emit(first, op)  # duplicate inside the window (wdev quirk)
                clock += _intra_gap()
                _emit(second, op)
        else:
            # Cold burst.
            if rng.random() < profile.sequential_fraction:
                run_start = rng.randrange(number_space)
                position = run_start
                for _ in range(rng.randint(2, 4)):
                    length = _draw_length(rng)
                    _emit(Extent(position, length), _op())
                    position += length
                    clock += _intra_gap()
            else:
                count = 1 if rng.random() < 0.7 else rng.randint(2, 3)
                op = _op()
                for index in range(count):
                    extent = Extent(rng.randrange(number_space), _draw_length(rng))
                    _emit(extent, op)
                    if index + 1 < count:
                        clock += _intra_gap()
        clock += _inter_gap()

    return records[:requests], truth


def generate_named(
    name: str, requests: int = 20000, seed: int = 7
) -> Tuple[List[TraceRecord], EnterpriseTruth]:
    """Generate the named MSR-like workload (one of ``WORKLOAD_NAMES``)."""
    profile = PROFILES.get(name)
    if profile is None:
        raise KeyError(f"unknown workload {name!r}; know {sorted(PROFILES)}")
    return generate_enterprise(profile, requests=requests, seed=seed)
