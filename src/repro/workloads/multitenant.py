"""Multi-tenant workload composition.

The paper's motivation leans on shared storage: "multiple I/O intensive
instances interacting and simultaneously accessing the same storage system
increases the unpredictability of access patterns", and inter-tenant
correlations can only be seen at the block layer.  This module interleaves
several tenants' traces onto one device timeline, with per-tenant PID and
address-space offsets, so the monitor's PID filter and the cross-tenant
correlation behaviour can be exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..trace.record import TraceRecord


@dataclass(frozen=True)
class Tenant:
    """One tenant: its trace plus placement on the shared device."""

    name: str
    records: Tuple[TraceRecord, ...]
    pid: int
    block_offset: int = 0   # where the tenant's volume starts on the device
    time_offset: float = 0.0

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError(f"tenant {self.name!r} has an empty trace")
        if self.block_offset < 0:
            raise ValueError("block_offset must be >= 0")


def make_tenant(
    name: str,
    records: Sequence[TraceRecord],
    pid: int,
    block_offset: int = 0,
    time_offset: float = 0.0,
) -> Tenant:
    """Build a tenant whose records are rebased in space, time, and PID."""
    rebased = tuple(
        replace(
            record,
            timestamp=record.timestamp + time_offset,
            start=record.start + block_offset,
            pid=pid,
        )
        for record in records
    )
    return Tenant(name=name, records=rebased, pid=pid,
                  block_offset=block_offset, time_offset=time_offset)


def merge_tenants(tenants: Sequence[Tenant]) -> List[TraceRecord]:
    """Interleave every tenant's records by timestamp (stable order)."""
    if not tenants:
        raise ValueError("need at least one tenant")
    merged: List[TraceRecord] = []
    for tenant in tenants:
        merged.extend(tenant.records)
    merged.sort(key=lambda record: record.timestamp)
    return merged


def tenant_address_ranges(tenants: Sequence[Tenant]) -> Dict[str, Tuple[int, int]]:
    """Each tenant's touched block range ``[low, high)`` on the device."""
    ranges: Dict[str, Tuple[int, int]] = {}
    for tenant in tenants:
        low = min(record.start for record in tenant.records)
        high = max(record.start + record.length for record in tenant.records)
        ranges[tenant.name] = (low, high)
    return ranges


def check_disjoint_volumes(tenants: Sequence[Tenant]) -> bool:
    """Whether the tenants' block ranges are mutually disjoint."""
    spans = sorted(tenant_address_ranges(tenants).values())
    for (low_a, high_a), (low_b, _high_b) in zip(spans, spans[1:]):
        if low_b < high_a:
            return False
    return True


def shared_workload(
    tenant_traces: Sequence[Tuple[str, Sequence[TraceRecord]]],
    base_pid: int = 2000,
    volume_gap_blocks: int = 1 << 20,
) -> Tuple[List[TraceRecord], List[Tenant]]:
    """Lay tenants out on one device and merge their timelines.

    Each tenant gets a PID (``base_pid + index``) and a volume placed after
    the previous tenant's highest block plus ``volume_gap_blocks`` -- the
    classic partitioned-volume layout of shared storage.  Returns the
    merged trace and the rebased tenants (whose PIDs drive the monitor's
    filter).
    """
    if not tenant_traces:
        raise ValueError("need at least one tenant trace")
    tenants: List[Tenant] = []
    next_offset = 0
    for index, (name, records) in enumerate(tenant_traces):
        tenant = make_tenant(
            name, records, pid=base_pid + index, block_offset=next_offset
        )
        tenants.append(tenant)
        high = max(r.start + r.length for r in tenant.records)
        next_offset = high + volume_gap_blocks
    return merge_tenants(tenants), tenants
