"""Semantically-correlated workloads from simulated application structure.

The paper's motivating examples of inter-request correlations are
*semantic*: "an inode block and its associated data blocks being
correlated, blocks for a web server request being correlated with the
blocks of a database table that it interacts with" (Section II-A).  The
synthetic workloads of Section IV-B1 plant such correlations directly;
this module goes one level deeper and *derives* them from structure:

* a tiny filesystem layout allocates each file an inode block (in an inode
  table region) and one or more data extents (possibly fragmented);
* application models generate I/O against that structure -- file reads
  touch inode + data, a web request reads a page file and then queries a
  database table, a table scan walks index then data pages;

so the correlations the framework should detect are the by-product of the
simulated software stack, exactly as in production systems.  The ground
truth (which extent pairs are semantically related) falls out of the
layout and is returned alongside the trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.extent import Extent, ExtentPair
from ..trace.record import OpType, TraceRecord

#: Blocks per inode-table block.
_INODE_BLOCKS = 1


@dataclass(frozen=True)
class FileObject:
    """One file: its inode block and data extents."""

    name: str
    inode: Extent
    data: Tuple[Extent, ...]

    def all_extents(self) -> List[Extent]:
        return [self.inode, *self.data]

    def semantic_pairs(self) -> List[ExtentPair]:
        """Inode<->data and data<->data pairs implied by this file."""
        extents = self.all_extents()
        pairs = []
        for i, a in enumerate(extents):
            for b in extents[i + 1:]:
                pairs.append(ExtentPair(a, b))
        return pairs


@dataclass(frozen=True)
class Table:
    """One database table: an index extent plus data page extents."""

    name: str
    index: Extent
    pages: Tuple[Extent, ...]


class FilesystemLayout:
    """Allocates inodes and data extents in disjoint regions.

    The inode table sits at the front of the volume (low block numbers),
    data grows behind it -- the classic layout that makes inode/data
    correlations *discontiguous* and therefore invisible to sequential
    heuristics, which is why they need correlation mining at all.
    """

    def __init__(
        self,
        inode_region_blocks: int = 4096,
        seed: int = 0,
        fragmentation: float = 0.2,
    ) -> None:
        if inode_region_blocks < 1:
            raise ValueError("inode region must hold at least one block")
        if not 0.0 <= fragmentation <= 1.0:
            raise ValueError("fragmentation must be in [0, 1]")
        self._rng = random.Random(seed)
        self._inode_region = inode_region_blocks
        self._next_inode = 0
        self._next_data = inode_region_blocks
        self.fragmentation = fragmentation
        self.files: List[FileObject] = []
        self.tables: List[Table] = []

    def _allocate_inode(self) -> Extent:
        if self._next_inode >= self._inode_region:
            raise RuntimeError("inode table full")
        extent = Extent(self._next_inode, _INODE_BLOCKS)
        self._next_inode += _INODE_BLOCKS
        return extent

    def _allocate_data(self, blocks: int) -> List[Extent]:
        """Allocate ``blocks`` of data, fragmenting with some probability."""
        extents: List[Extent] = []
        remaining = blocks
        while remaining > 0:
            if remaining > 8 and self._rng.random() < self.fragmentation:
                piece = self._rng.randint(remaining // 4, remaining - 4)
            else:
                piece = remaining
            # A gap between allocations models interleaved writers.
            self._next_data += self._rng.randint(0, 64)
            extents.append(Extent(self._next_data, piece))
            self._next_data += piece
            remaining -= piece
        return extents

    def create_file(self, name: str, blocks: int) -> FileObject:
        """Allocate a file with an inode and ``blocks`` of data."""
        if blocks < 1:
            raise ValueError("a file needs at least one data block")
        file_object = FileObject(
            name=name,
            inode=self._allocate_inode(),
            data=tuple(self._allocate_data(blocks)),
        )
        self.files.append(file_object)
        return file_object

    def create_table(self, name: str, pages: int,
                     page_blocks: int = 16) -> Table:
        """Allocate a table: one index extent and ``pages`` data pages."""
        if pages < 1:
            raise ValueError("a table needs at least one page")
        index = self._allocate_data(8)[0]
        page_extents = []
        for _ in range(pages):
            page_extents.extend(self._allocate_data(page_blocks))
        table = Table(name=name, index=index, pages=tuple(page_extents))
        self.tables.append(table)
        return table


@dataclass
class SemanticTruth:
    """The semantic relations a generated trace embodies."""

    file_pairs: Dict[str, List[ExtentPair]] = field(default_factory=dict)
    web_db_pairs: List[ExtentPair] = field(default_factory=list)

    def all_pairs(self) -> Set[ExtentPair]:
        pairs: Set[ExtentPair] = set(self.web_db_pairs)
        for file_pairs in self.file_pairs.values():
            pairs.update(file_pairs)
        return pairs


@dataclass(frozen=True)
class WebsiteSpec:
    """A web application over the filesystem and a database.

    ``pages`` files are created (each a page plus its inode); each page is
    statically associated with one database table.  A *request* for page i
    reads the page's inode, its data, the table's index, and one or two of
    the table's pages -- the four-way semantic correlation of the paper's
    web/database example.
    """

    pages: int = 6
    page_blocks: int = 24
    tables: int = 3
    table_pages: int = 8
    requests: int = 400
    zipf_exponent: float = 1.0
    mean_interarrival: float = 0.05
    intra_request_gap: float = 20e-6
    seed: int = 0


def generate_website(
    spec: WebsiteSpec,
) -> Tuple[List[TraceRecord], SemanticTruth, FilesystemLayout]:
    """Generate a web-serving trace over a filesystem + database layout."""
    from .zipf import ZipfRanks

    rng = random.Random(spec.seed)
    layout = FilesystemLayout(seed=spec.seed + 1)
    truth = SemanticTruth()

    page_files = [
        layout.create_file(f"page-{index}", spec.page_blocks)
        for index in range(spec.pages)
    ]
    tables = [
        layout.create_table(f"table-{index}", spec.table_pages)
        for index in range(spec.tables)
    ]
    for file_object in page_files:
        truth.file_pairs[file_object.name] = file_object.semantic_pairs()

    table_of_page = {
        file_object.name: tables[index % len(tables)]
        for index, file_object in enumerate(page_files)
    }
    for file_object in page_files:
        table = table_of_page[file_object.name]
        for file_extent in file_object.all_extents():
            truth.web_db_pairs.append(ExtentPair(file_extent, table.index))

    popularity = ZipfRanks(len(page_files), spec.zipf_exponent)
    records: List[TraceRecord] = []
    clock = 0.0
    for _request in range(spec.requests):
        clock += rng.expovariate(1.0 / spec.mean_interarrival)
        page = page_files[popularity.sample(rng) - 1]
        table = table_of_page[page.name]
        touched = page.all_extents() + [table.index]
        touched.append(table.pages[rng.randrange(len(table.pages))])
        if len(table.pages) > 1 and rng.random() < 0.5:
            touched.append(table.pages[rng.randrange(len(table.pages))])
        offset = 0.0
        for extent in touched:
            records.append(TraceRecord(
                clock + offset, 800, OpType.READ, extent.start, extent.length
            ))
            offset += rng.uniform(0, spec.intra_request_gap)
    records.sort(key=lambda record: record.timestamp)
    return records, truth, layout


@dataclass(frozen=True)
class FileServerSpec:
    """Small-file traffic: every open reads inode then data (§II-A)."""

    files: int = 20
    file_blocks: Tuple[int, int] = (4, 64)   # min/max data blocks
    requests: int = 500
    zipf_exponent: float = 0.9
    mean_interarrival: float = 0.02
    intra_request_gap: float = 20e-6
    write_fraction: float = 0.2
    seed: int = 0


def generate_fileserver(
    spec: FileServerSpec,
) -> Tuple[List[TraceRecord], SemanticTruth, FilesystemLayout]:
    """Generate a file-server trace: inode + data per file access."""
    from .zipf import ZipfRanks

    rng = random.Random(spec.seed)
    layout = FilesystemLayout(seed=spec.seed + 1)
    truth = SemanticTruth()
    files = [
        layout.create_file(
            f"file-{index}", rng.randint(*spec.file_blocks)
        )
        for index in range(spec.files)
    ]
    for file_object in files:
        truth.file_pairs[file_object.name] = file_object.semantic_pairs()

    popularity = ZipfRanks(len(files), spec.zipf_exponent)
    records: List[TraceRecord] = []
    clock = 0.0
    for _request in range(spec.requests):
        clock += rng.expovariate(1.0 / spec.mean_interarrival)
        file_object = files[popularity.sample(rng) - 1]
        op = (OpType.WRITE if rng.random() < spec.write_fraction
              else OpType.READ)
        offset = 0.0
        for extent in file_object.all_extents():
            records.append(TraceRecord(
                clock + offset, 801, op, extent.start, extent.length
            ))
            offset += rng.uniform(0, spec.intra_request_gap)
    records.sort(key=lambda record: record.timestamp)
    return records, truth, layout
