"""The paper's three synthetic workloads (Section IV-B1).

Each workload constructs four inter-request correlations of a specific
shape, ranked by a Zipf-like distribution (48/24/16/12 %):

* **one-to-one** -- a single block requested with another non-contiguous
  single block (two associated records at application level);
* **one-to-many** -- a single block correlated with a contiguous range of
  512 B to 1 MB chosen at random (a small file and its inode);
* **many-to-many** -- two contiguous ranges, each 512 B to 1 MB (a web
  resource and the database table it touches).

Correlated events arrive with exponentially distributed interarrival times
of mean 200 ms -- large enough that two constructed correlations never merge
into one transaction -- while background *noise* requests (512 B to 8 KB)
arrive with mean interarrival 100 ms, contributing infrequent and "false"
correlations that the analysis must reject.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.extent import Extent, ExtentPair
from ..trace.record import OpType, TraceRecord
from .zipf import ZipfRanks

#: 512 B .. 1 MB expressed in 512-byte blocks.
CORRELATED_MIN_BLOCKS = 1
CORRELATED_MAX_BLOCKS = 2048
#: 512 B .. 8 KB noise requests.
NOISE_MIN_BLOCKS = 1
NOISE_MAX_BLOCKS = 16


class SyntheticKind(enum.Enum):
    ONE_TO_ONE = "one-to-one"
    ONE_TO_MANY = "one-to-many"
    MANY_TO_MANY = "many-to-many"


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic workload run."""

    kind: SyntheticKind
    correlations: int = 4
    zipf_exponent: float = 1.0
    correlated_mean_interarrival: float = 0.200
    noise_mean_interarrival: float = 0.100
    intra_pair_gap: float = 20e-6
    duration: float = 120.0
    number_space: int = 8 * 1024 * 1024
    read_fraction: float = 0.7
    seed: int = 42


@dataclass
class SyntheticTruth:
    """Ground truth: the constructed correlations and their popularity."""

    pairs: List[ExtentPair] = field(default_factory=list)
    probabilities: List[float] = field(default_factory=list)
    occurrences: List[int] = field(default_factory=list)

    def pair_rank(self, pair: ExtentPair) -> Optional[int]:
        """1-based popularity rank of ``pair``, or ``None`` if not planted."""
        try:
            return self.pairs.index(pair) + 1
        except ValueError:
            return None


def _build_correlation(
    kind: SyntheticKind, region_start: int, region_size: int, rng: random.Random
) -> ExtentPair:
    """Construct one correlation of the requested shape inside a region.

    The two extents are placed in disjoint halves of the region so they are
    guaranteed non-contiguous, and correlations built in different regions
    can never overlap each other.
    """
    half = region_size // 2

    def _place(max_blocks: int, base: int) -> Extent:
        length = (
            1 if max_blocks == 1
            else rng.randint(CORRELATED_MIN_BLOCKS, max_blocks)
        )
        start = base + rng.randint(0, half - length - 1)
        return Extent(start, length)

    if kind is SyntheticKind.ONE_TO_ONE:
        first = _place(1, region_start)
        second = _place(1, region_start + half)
    elif kind is SyntheticKind.ONE_TO_MANY:
        first = _place(1, region_start)
        second = _place(CORRELATED_MAX_BLOCKS, region_start + half)
    else:
        first = _place(CORRELATED_MAX_BLOCKS, region_start)
        second = _place(CORRELATED_MAX_BLOCKS, region_start + half)
    return ExtentPair(first, second)


def generate_synthetic(
    spec: SyntheticSpec,
) -> Tuple[List[TraceRecord], SyntheticTruth]:
    """Generate a synthetic trace and its correlation ground truth.

    The correlated stream and the noise stream are two independent Poisson
    processes merged by timestamp.  Each correlated occurrence emits its two
    extents ``intra_pair_gap`` seconds apart (well inside any reasonable
    transaction window); noise arrivals land wherever the clock puts them,
    sometimes inside a correlated transaction -- which is the point.
    """
    rng = random.Random(spec.seed)
    ranks = ZipfRanks(spec.correlations, spec.zipf_exponent)

    region_size = spec.number_space // (spec.correlations + 1)
    truth = SyntheticTruth()
    for index in range(spec.correlations):
        pair = _build_correlation(spec.kind, index * region_size, region_size, rng)
        truth.pairs.append(pair)
        truth.probabilities.append(ranks.probability(index + 1))
        truth.occurrences.append(0)

    noise_region_start = spec.correlations * region_size
    records: List[TraceRecord] = []

    def _op() -> OpType:
        return OpType.READ if rng.random() < spec.read_fraction else OpType.WRITE

    # Correlated occurrences.
    clock = rng.expovariate(1.0 / spec.correlated_mean_interarrival)
    while clock < spec.duration:
        rank = ranks.sample(rng)
        pair = truth.pairs[rank - 1]
        truth.occurrences[rank - 1] += 1
        first, second = pair.first, pair.second
        if rng.random() < 0.5:
            first, second = second, first
        op = _op()
        records.append(TraceRecord(clock, 1000, op, first.start, first.length))
        records.append(
            TraceRecord(
                clock + rng.uniform(0, spec.intra_pair_gap),
                1000, op, second.start, second.length,
            )
        )
        clock += rng.expovariate(1.0 / spec.correlated_mean_interarrival)

    # Noise.
    clock = rng.expovariate(1.0 / spec.noise_mean_interarrival)
    noise_span = spec.number_space - noise_region_start - NOISE_MAX_BLOCKS
    while clock < spec.duration:
        length = rng.randint(NOISE_MIN_BLOCKS, NOISE_MAX_BLOCKS)
        start = noise_region_start + rng.randint(0, noise_span)
        records.append(TraceRecord(clock, 1001, _op(), start, length))
        clock += rng.expovariate(1.0 / spec.noise_mean_interarrival)

    records.sort(key=lambda record: record.timestamp)
    return records, truth


def all_synthetic_specs(seed: int = 42, duration: float = 120.0) -> List[SyntheticSpec]:
    """The paper's three synthetic workloads with shared settings."""
    return [
        SyntheticSpec(kind=kind, seed=seed + offset, duration=duration)
        for offset, kind in enumerate(SyntheticKind)
    ]
