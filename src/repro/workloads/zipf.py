"""Zipf-like rank distributions.

The paper ranks its constructed correlations "in popularity using a
Zipf-like distribution, in which its probability of occurring is inversely
proportional to its rank.  With four correlations, the probability of each
is 48%, 24%, 16%, and 12%" -- i.e. the classic Zipf law with exponent 1.
Real-world correlation frequencies are likewise observed to be Zipf-like
(Figure 5), so the enterprise models reuse this machinery with larger rank
counts and tunable exponents.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Sequence


class ZipfRanks:
    """A Zipf(s) distribution over ranks ``1..n``."""

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n < 1:
            raise ValueError(f"need at least one rank, got {n}")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
        total = sum(weights)
        self._probabilities = [weight / total for weight in weights]
        self._cumulative = list(itertools.accumulate(self._probabilities))

    @property
    def probabilities(self) -> List[float]:
        """Probability of each rank, most popular first."""
        return list(self._probabilities)

    def probability(self, rank: int) -> float:
        """Probability of ``rank`` (1-based)."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank must be in [1, {self.n}], got {rank}")
        return self._probabilities[rank - 1]

    def sample(self, rng: random.Random) -> int:
        """Draw a rank (1-based) using the supplied generator."""
        return bisect.bisect_left(self._cumulative, rng.random()) + 1

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        return [self.sample(rng) for _ in range(count)]


def empirical_frequencies(samples: Sequence[int], n: int) -> List[float]:
    """Observed frequency of each rank 1..n in ``samples``."""
    counts = [0] * n
    for sample in samples:
        if not 1 <= sample <= n:
            raise ValueError(f"sample {sample} outside [1, {n}]")
        counts[sample - 1] += 1
    total = len(samples)
    if total == 0:
        return [0.0] * n
    return [count / total for count in counts]
