"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
from typing import List, Sequence

import pytest

from repro.core.extent import Extent, ExtentPair
from repro.workloads.synthetic import (
    SyntheticKind,
    SyntheticSpec,
    generate_synthetic,
)


def ext(start: int, length: int = 1) -> Extent:
    """Terse extent factory for tests."""
    return Extent(start, length)


def pair(a_start: int, b_start: int, a_len: int = 1, b_len: int = 1) -> ExtentPair:
    """Terse pair factory for tests."""
    return ExtentPair(Extent(a_start, a_len), Extent(b_start, b_len))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture(scope="session")
def small_synthetic():
    """A short one-to-many synthetic workload with its ground truth."""
    spec = SyntheticSpec(
        kind=SyntheticKind.ONE_TO_MANY, duration=30.0, seed=99
    )
    return generate_synthetic(spec)


@pytest.fixture
def simple_transactions() -> List[Sequence[Extent]]:
    """A tiny deterministic transaction stream with known pair counts.

    Pair (10+1, 20+2) appears 3 times, (10+1, 30+1) twice, everything else
    once.
    """
    a, b, c, d = ext(10), ext(20, 2), ext(30), ext(40, 4)
    return [
        [a, b],
        [a, b, c],
        [a, b],
        [a, c],
        [d],
        [c, d],
    ]
