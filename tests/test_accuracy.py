"""Tests for detection accuracy metrics."""

import pytest

from repro.analysis.accuracy import detection_metrics

from conftest import pair


def truth_example():
    return {
        pair(1, 2): 10,
        pair(3, 4): 8,
        pair(5, 6): 2,
        pair(7, 8): 1,   # infrequent at min_support=2
    }


class TestDetectionMetrics:
    def test_perfect_detection(self):
        truth = truth_example()
        frequent = [pair(1, 2), pair(3, 4), pair(5, 6)]
        metrics = detection_metrics(truth, frequent, min_support=2)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0
        assert metrics.weighted_recall == 1.0

    def test_missed_pair_counts_against_recall(self):
        metrics = detection_metrics(
            truth_example(), [pair(1, 2), pair(3, 4)], min_support=2
        )
        assert metrics.recall == pytest.approx(2 / 3)
        # Weighted recall is higher: the missed pair is the weakest.
        assert metrics.weighted_recall == pytest.approx(18 / 20)
        assert metrics.weighted_recall > metrics.recall

    def test_false_positive_hits_precision(self):
        metrics = detection_metrics(
            truth_example(), [pair(1, 2), pair(7, 8)], min_support=2
        )
        assert metrics.false_positives == 1  # (7,8) is truly infrequent
        assert metrics.precision == pytest.approx(0.5)

    def test_detected_frequent_pair_is_never_false_positive(self):
        """Membership in truth is what matters, not the synopsis tally."""
        metrics = detection_metrics(truth_example(), [pair(5, 6)], min_support=2)
        assert metrics.false_positives == 0

    def test_unknown_pair_is_false_positive(self):
        metrics = detection_metrics(
            truth_example(), [pair(100, 200)], min_support=2
        )
        assert metrics.false_positives == 1

    def test_empty_detection(self):
        metrics = detection_metrics(truth_example(), [], min_support=2)
        assert metrics.recall == 0.0
        assert metrics.precision == 1.0  # nothing claimed, nothing wrong
        assert metrics.f1 == 0.0
        assert metrics.weighted_recall == 0.0

    def test_empty_truth(self):
        metrics = detection_metrics({}, [], min_support=2)
        assert metrics.recall == 1.0
        assert metrics.weighted_recall == 1.0

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            detection_metrics(truth_example(), [], min_support=0)

    def test_f1_harmonic_mean(self):
        metrics = detection_metrics(
            truth_example(), [pair(1, 2), pair(100, 200)], min_support=2
        )
        p, r = metrics.precision, metrics.recall
        assert metrics.f1 == pytest.approx(2 * p * r / (p + r))
