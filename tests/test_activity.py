"""Tests for temporal correlation activity series."""

import pytest

from repro.analysis.activity import pair_activity, steady_pairs

from conftest import ext, pair


def stream_with_phases():
    """Pair (1,2) active throughout; pair (9,10) only in the first third."""
    transactions = []
    for i in range(30):
        if i % 2 == 0:
            transactions.append([ext(1), ext(2)])
        if i < 10:
            transactions.append([ext(9), ext(10)])
        transactions.append([ext(1000 + i), ext(2000 + i)])
    return transactions


class TestPairActivity:
    def test_counts_sum_to_occurrences(self):
        transactions = stream_with_phases()
        activity = pair_activity(
            transactions, [pair(1, 2), pair(9, 10)], windows=5
        )
        assert activity[pair(1, 2)].total == 15
        assert activity[pair(9, 10)].total == 10

    def test_phase_confinement(self):
        transactions = stream_with_phases()
        activity = pair_activity(transactions, [pair(9, 10)], windows=5)
        series = activity[pair(9, 10)]
        assert series.counts[0] > 0
        assert series.counts[-1] == 0
        assert series.first_active_window() == 0
        assert series.last_active_window() < 4

    def test_active_fraction(self):
        transactions = stream_with_phases()
        activity = pair_activity(
            transactions, [pair(1, 2), pair(9, 10)], windows=5
        )
        assert activity[pair(1, 2)].active_fraction == 1.0
        assert activity[pair(9, 10)].active_fraction < 0.8

    def test_burstiness_orders_steady_before_bursty(self):
        transactions = stream_with_phases()
        activity = pair_activity(
            transactions, [pair(1, 2), pair(9, 10)], windows=5
        )
        assert (activity[pair(1, 2)].burstiness
                < activity[pair(9, 10)].burstiness)

    def test_unwatched_pairs_ignored(self):
        transactions = stream_with_phases()
        activity = pair_activity(transactions, [pair(1, 2)], windows=3)
        assert set(activity) == {pair(1, 2)}

    def test_empty_stream(self):
        activity = pair_activity([], [pair(1, 2)], windows=4)
        series = activity[pair(1, 2)]
        assert series.total == 0
        assert series.active_fraction == 0.0
        assert series.first_active_window() is None
        assert series.last_active_window() is None
        assert series.burstiness == 0.0

    def test_windows_validation(self):
        with pytest.raises(ValueError):
            pair_activity([], [], windows=0)

    def test_single_window(self):
        transactions = [[ext(1), ext(2)]] * 4
        activity = pair_activity(transactions, [pair(1, 2)], windows=1)
        assert activity[pair(1, 2)].counts == (4,)


class TestSteadyPairs:
    def test_filters_by_active_fraction(self):
        transactions = stream_with_phases()
        activity = pair_activity(
            transactions, [pair(1, 2), pair(9, 10)], windows=5
        )
        durable = steady_pairs(activity, min_active_fraction=0.8)
        assert durable == [pair(1, 2)]

    def test_validation(self):
        with pytest.raises(ValueError):
            steady_pairs({}, min_active_fraction=2.0)
