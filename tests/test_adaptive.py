"""Tests for adaptive T1/T2 sizing (paper §IV-C1's dynamic-ratio remark)."""

import pytest

from repro.core.adaptive import AdaptivePolicy, AdaptiveTwoTierTable
from repro.core.lru import LruQueue


class TestLruResize:
    def test_grow_keeps_entries(self):
        queue = LruQueue(2)
        queue.insert("a")
        queue.insert("b")
        assert queue.resize(4) == []
        assert queue.capacity == 4
        assert "a" in queue and "b" in queue

    def test_shrink_evicts_lru_first(self):
        queue = LruQueue(3)
        for key in "abc":
            queue.insert(key)
        evicted = queue.resize(1)
        assert [key for key, _t in evicted] == ["a", "b"]
        assert "c" in queue

    def test_resize_validation(self):
        with pytest.raises(ValueError):
            LruQueue(2).resize(0)


class TestAdaptivePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(adjust_interval=0)
        with pytest.raises(ValueError):
            AdaptivePolicy(step_fraction=0.5)
        with pytest.raises(ValueError):
            AdaptivePolicy(min_tier_fraction=0.0)


class TestAdaptiveTable:
    def test_total_capacity_is_conserved(self):
        table = AdaptiveTwoTierTable(
            32, 32, policy=AdaptivePolicy(adjust_interval=16)
        )
        for i in range(2000):
            table.access(i % 40)
        t1, t2 = table.tier_split
        assert t1 + t2 == 64

    def test_minimum_tier_sizes_respected(self):
        """The paper's warning: resizing must not starve either tier."""
        policy = AdaptivePolicy(adjust_interval=8, step_fraction=0.2,
                                min_tier_fraction=0.25)
        table = AdaptiveTwoTierTable(20, 20, policy=policy)
        # A pure-T2 workload (one hot key) pushes capacity towards T2...
        for _ in range(5000):
            table.access("hot")
        t1, t2 = table.tier_split
        assert t1 >= 10  # 25% of 40
        assert t2 >= 10

    def test_hot_heavy_workload_grows_t2(self):
        policy = AdaptivePolicy(adjust_interval=32, step_fraction=0.1,
                                min_tier_fraction=0.2)
        table = AdaptiveTwoTierTable(32, 32, policy=policy)
        hot = [f"hot{i}" for i in range(20)]
        for round_index in range(300):
            for key in hot:
                table.access(key)
            table.access(f"cold-{round_index}")
        _t1, t2 = table.tier_split
        assert t2 > 32  # grew beyond the initial split
        assert table.adjustments > 0

    def test_scan_heavy_workload_grows_t1(self):
        """One-hit floods make T1 the only tier earning hits (via the
        promotions of keys seen exactly twice)."""
        policy = AdaptivePolicy(adjust_interval=32, step_fraction=0.1,
                                min_tier_fraction=0.2)
        table = AdaptiveTwoTierTable(32, 32, policy=policy)
        for i in range(3000):
            table.access(i)       # miss
            table.access(i)       # T1 hit -> promotion
        t1, _t2 = table.tier_split
        assert t1 > 32
        assert table.adjustments > 0

    def test_behaves_like_fixed_table_between_adjustments(self):
        from repro.core.two_tier import TwoTierTable
        adaptive = AdaptiveTwoTierTable(
            8, 8, policy=AdaptivePolicy(adjust_interval=10 ** 9)
        )
        fixed = TwoTierTable(8, 8)
        keys = [i % 12 for i in range(500)]
        for key in keys:
            adaptive.access(key)
            fixed.access(key)
        assert dict(
            (k, (t, tier)) for k, t, tier in adaptive.items()
        ) == dict((k, (t, tier)) for k, t, tier in fixed.items())

    def test_shrink_evictions_reported(self):
        policy = AdaptivePolicy(adjust_interval=4, step_fraction=0.25,
                                min_tier_fraction=0.2)
        table = AdaptiveTwoTierTable(8, 8, policy=policy)
        # Fill T1 with scan traffic, then trigger adjustments.
        evictions = []
        for i in range(200):
            result = table.access(i)
            evictions.extend(result.evicted)
        assert len(table) <= 16
        assert evictions  # both LRU and resize evictions surfaced
