"""Tests for the online analyzer (paper Section III-D)."""

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.extent import ExtentPair

from conftest import ext, pair


def small_analyzer(**overrides) -> OnlineAnalyzer:
    defaults = dict(item_capacity=64, correlation_capacity=64)
    defaults.update(overrides)
    return OnlineAnalyzer(AnalyzerConfig(**defaults))


class TestTransactionProcessing:
    def test_pairs_from_one_transaction(self):
        analyzer = small_analyzer()
        analyzer.process([ext(1), ext(2), ext(3)])
        assert set(analyzer.pair_frequencies()) == {
            pair(1, 2), pair(1, 3), pair(2, 3)
        }

    def test_repeated_transaction_builds_frequency(self, simple_transactions):
        analyzer = small_analyzer()
        analyzer.process_stream(simple_transactions)
        frequencies = analyzer.pair_frequencies()
        assert frequencies[pair(10, 20, 1, 2)] == 3
        assert frequencies[pair(10, 30)] == 2

    def test_deduplicates_raw_input(self):
        analyzer = small_analyzer()
        analyzer.process([ext(1), ext(1), ext(2)])
        assert analyzer.pair_frequencies() == {pair(1, 2): 1}

    def test_singleton_transaction_creates_no_pairs(self):
        analyzer = small_analyzer()
        analyzer.process([ext(1)])
        assert analyzer.pair_frequencies() == {}
        assert analyzer.items.tally(ext(1)) == 1

    def test_empty_transaction_is_harmless(self):
        analyzer = small_analyzer()
        analyzer.process([])
        assert analyzer.report().transactions == 1
        assert analyzer.pair_frequencies() == {}

    def test_quadratic_pair_count(self):
        analyzer = small_analyzer(correlation_capacity=128)
        analyzer.process([ext(i * 10) for i in range(8)])
        assert len(analyzer.pair_frequencies()) == 28  # C(8, 2)
        assert analyzer.report().pairs_seen == 28


class TestFrequentOutputs:
    def test_frequent_pairs_sorted_strongest_first(self, simple_transactions):
        analyzer = small_analyzer()
        analyzer.process_stream(simple_transactions)
        detected = analyzer.frequent_pairs(min_support=2)
        tallies = [tally for _p, tally in detected]
        assert tallies == sorted(tallies, reverse=True)
        assert detected[0][0] == pair(10, 20, 1, 2)

    def test_frequent_extents(self, simple_transactions):
        analyzer = small_analyzer()
        analyzer.process_stream(simple_transactions)
        top_extent, top_tally = analyzer.frequent_extents(min_support=2)[0]
        assert top_extent == ext(10)
        assert top_tally == 4

    def test_min_support_filter(self, simple_transactions):
        analyzer = small_analyzer()
        analyzer.process_stream(simple_transactions)
        assert all(t >= 3 for _p, t in analyzer.frequent_pairs(3))


class TestEvictionCoupling:
    def test_item_eviction_demotes_pairs(self):
        """An extent falling out of the item table demotes its pairs."""
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=1, correlation_capacity=8,
                           promote_threshold=100)
        )
        analyzer.process([ext(1), ext(2)])
        baseline = analyzer.correlations.stats.demotions
        # Flood the 2-entry item table so ext(1)/ext(2) get evicted.
        analyzer.process([ext(50), ext(60)])
        assert analyzer.correlations.stats.demotions > baseline

    def test_demotion_can_be_disabled(self):
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=1, correlation_capacity=8,
                           demote_on_item_eviction=False)
        )
        analyzer.process([ext(1), ext(2)])
        analyzer.process([ext(50), ext(60)])
        assert analyzer.correlations.stats.demotions == 0


class TestBoundedMemory:
    def test_tables_never_exceed_capacity(self):
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=4, correlation_capacity=4)
        )
        for i in range(200):
            analyzer.process([ext(i), ext(i + 1000), ext(i + 2000)])
        assert len(analyzer.items) <= analyzer.items.capacity
        assert len(analyzer.correlations) <= analyzer.correlations.capacity

    def test_hot_pair_survives_noise_flood(self):
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=32, correlation_capacity=32)
        )
        hot = [ext(1), ext(500)]
        for i in range(50):
            analyzer.process(hot)
            analyzer.process([ext(10000 + 2 * i), ext(20000 + 2 * i)])
        frequencies = analyzer.pair_frequencies()
        assert frequencies.get(pair(1, 500), 0) >= 40


class TestReportAndReset:
    def test_report_counters(self, simple_transactions):
        analyzer = small_analyzer()
        analyzer.process_stream(simple_transactions)
        report = analyzer.report()
        assert report.transactions == len(simple_transactions)
        assert report.extents_seen == sum(len(set(t)) for t in simple_transactions)
        assert report.pairs_seen == sum(
            len(set(t)) * (len(set(t)) - 1) // 2 for t in simple_transactions
        )

    def test_reset(self, simple_transactions):
        analyzer = small_analyzer()
        analyzer.process_stream(simple_transactions)
        analyzer.reset()
        assert analyzer.report().transactions == 0
        assert analyzer.pair_frequencies() == {}
        assert len(analyzer.items) == 0


class TestConfig:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AnalyzerConfig(item_capacity=0)
        with pytest.raises(ValueError):
            AnalyzerConfig(correlation_capacity=-1)
        with pytest.raises(ValueError):
            AnalyzerConfig(t2_ratio=0.0)
        with pytest.raises(ValueError):
            AnalyzerConfig(t2_ratio=1.0)

    def test_equal_split_default(self):
        config = AnalyzerConfig()
        assert config.split(16) == (16, 16)

    def test_skewed_split_keeps_minimums(self):
        config = AnalyzerConfig(t2_ratio=0.99)
        t1, t2 = config.split(1)
        assert t1 >= 1 and t2 >= 1 and t1 + t2 == 2

    def test_split_ratio(self):
        config = AnalyzerConfig(t2_ratio=0.25)
        t1, t2 = config.split(100)
        assert t2 == 50 and t1 == 150  # 25% of the 200 total
