"""Tests for the classic ARC comparison structure."""

import random

import pytest

from repro.core.arc import ArcTable


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ArcTable(1)

    def test_miss_then_hit_promotes_to_t2(self):
        arc = ArcTable(4)
        assert arc.access("x") is False
        assert arc.access("x") is True
        assert arc.tally("x") == 2
        assert arc.stats.hits == 1
        assert arc.stats.lookups == 2

    def test_resident_bound(self):
        arc = ArcTable(4)
        for i in range(100):
            arc.access(i)
        assert len(arc) <= 4

    def test_frequent_sorted(self):
        arc = ArcTable(8)
        for _ in range(3):
            arc.access("hot")
        arc.access("cold")
        top = arc.frequent(min_tally=1)
        assert top[0][0] == "hot"


class TestGhostAdaptation:
    def test_b1_hit_grows_p(self):
        arc = ArcTable(2)
        # Fill T1 and push one key into B1.
        arc.access("a")
        arc.access("b")
        arc.access("c")  # evicts a (to B1? only when replace triggered)
        arc.access("d")
        p_before = arc.p
        ghost_b1, _b2 = arc.ghost_sizes()
        if ghost_b1:
            ghost_key = "a" if "a" not in arc else "b"
            arc.access(ghost_key)
            assert arc.p >= p_before

    def test_ghost_hit_reinserts_into_t2(self):
        arc = ArcTable(2)
        sequence = ["a", "b", "c", "d", "a"]
        for key in sequence:
            arc.access(key)
        # 'a' went resident->ghost->resident(T2) if its ghost survived.
        if "a" in arc:
            assert arc.tally("a") >= 1

    def test_scan_resistance(self):
        """A hot key re-accessed through a long scan survives in ARC,
        while the scan's one-hit wonders do not accumulate."""
        arc = ArcTable(8)
        for i in range(200):
            arc.access("hot")
            arc.access(f"scan-{i}")
        assert "hot" in arc
        assert arc.tally("hot") > 100


class TestInvariants:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_workload_invariants(self, seed):
        rng = random.Random(seed)
        arc = ArcTable(8)
        for _ in range(3000):
            arc.access(rng.randrange(40))
            assert arc.check_invariants()

    def test_zipf_workload_invariants_and_hits(self):
        from repro.workloads.zipf import ZipfRanks
        rng = random.Random(9)
        ranks = ZipfRanks(100, exponent=1.0)
        arc = ArcTable(16)
        for _ in range(5000):
            arc.access(ranks.sample(rng))
        assert arc.check_invariants()
        # Zipf head fits in 16 entries: hit ratio should be substantial.
        assert arc.stats.hit_ratio > 0.4

    def test_directory_bound(self):
        arc = ArcTable(4)
        for i in range(500):
            arc.access(i % 30)
        b1, b2 = arc.ghost_sizes()
        assert len(arc) + b1 + b2 <= 8
