"""Tests for arrival-process models."""

import pytest

from repro.workloads.arrival import (
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    interarrival_fraction_below,
)


class TestPoisson:
    def test_rate_realised(self):
        process = PoissonArrivals(rate=100.0, seed=1)
        count = process.count_in(50.0)
        assert count == pytest.approx(5000, rel=0.1)

    def test_strictly_increasing(self):
        times = list(PoissonArrivals(rate=50.0, seed=2).times(5.0))
        assert all(a < b for a, b in zip(times, times[1:]))
        assert all(0 <= t < 5.0 for t in times)

    def test_deterministic_under_seed(self):
        a = list(PoissonArrivals(10.0, seed=3).times(10.0))
        b = list(PoissonArrivals(10.0, seed=3).times(10.0))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestOnOff:
    def test_mean_rate_property(self):
        process = OnOffArrivals(burst_rate=1000.0, on_mean=0.1,
                                off_mean=0.9, seed=1)
        assert process.mean_rate == pytest.approx(100.0)

    def test_realised_rate_near_mean(self):
        process = OnOffArrivals(burst_rate=1000.0, on_mean=0.1,
                                off_mean=0.9, seed=4)
        count = process.count_in(200.0)
        assert count == pytest.approx(200.0 * process.mean_rate, rel=0.15)

    def test_burstier_than_poisson_at_same_mean(self):
        """The whole point of MMPP: same mean rate, far more sub-threshold
        interarrivals -- the Table I signature."""
        onoff = OnOffArrivals(burst_rate=2000.0, on_mean=0.05,
                              off_mean=0.95, seed=5)
        poisson = PoissonArrivals(rate=onoff.mean_rate, seed=5)
        horizon = 100.0
        threshold = 1e-3
        bursty = interarrival_fraction_below(
            list(onoff.times(horizon)), threshold
        )
        smooth = interarrival_fraction_below(
            list(poisson.times(horizon)), threshold
        )
        assert bursty > smooth + 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffArrivals(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            OnOffArrivals(1.0, 0.0, 1.0)


class TestDiurnal:
    def test_rate_envelope(self):
        process = DiurnalArrivals(base_rate=10.0, amplitude=0.5,
                                  period=100.0, seed=1)
        assert process.rate_at(25.0) == pytest.approx(15.0)   # peak
        assert process.rate_at(75.0) == pytest.approx(5.0)    # trough

    def test_peak_window_busier_than_trough(self):
        process = DiurnalArrivals(base_rate=200.0, amplitude=0.9,
                                  period=100.0, seed=2)
        times = list(process.times(100.0))
        peak = sum(1 for t in times if 10.0 <= t < 40.0)
        trough = sum(1 for t in times if 60.0 <= t < 90.0)
        assert peak > 2 * trough

    def test_total_count_matches_mean_rate(self):
        process = DiurnalArrivals(base_rate=100.0, amplitude=0.8,
                                  period=10.0, seed=3)
        # Over whole periods the sinusoid integrates out.
        count = process.count_in(100.0)
        assert count == pytest.approx(10000, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(0.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, period=0.0)


class TestHelpers:
    def test_interarrival_fraction(self):
        times = [0.0, 0.001, 0.5, 0.5005]
        assert interarrival_fraction_below(times, 0.01) == pytest.approx(2 / 3)

    def test_degenerate_inputs(self):
        assert interarrival_fraction_below([], 1.0) == 0.0
        assert interarrival_fraction_below([1.0], 1.0) == 0.0
