"""Pluggable synopsis backends: contract, accuracy, checkpoints, hosting.

The contract under test (ISSUE 9):

* every registered backend satisfies the :class:`SynopsisBackend`
  protocol and answers the full query surface;
* the two-tier backend is the *reference*: hosted at ``shards=1`` it is
  query-identical to a bare :class:`TypedOnlineAnalyzer` on any stream;
* the CHH and count-min backends recover planted hot pairs, and the
  count-min estimates never underestimate;
* ``shard_config`` preserves backend fields (regression: it used to
  rebuild the config from a fixed field list) and scales explicit
  sketch dimensions so total memory is shard-count invariant;
* checkpoint format v4 round-trips every backend query-identically,
  including through the engine-level ``dump_engine``/``load_engine``
  dispatch, and degrades per shard: a flipped payload byte raises under
  ``strict=True`` and restores the other shards under ``strict=False``;
* the service hosts sketch backends end to end (ingest, snapshot,
  checkpoint/restore) and the memory model prices both sketches at
  <= 25 % of the two-tier backend at auto dimensions.
"""

import io
import random

import pytest

from repro.analysis.accuracy import top_k_recall
from repro.core.config import BACKEND_NAMES, AnalyzerConfig
from repro.core.extent import Extent, ExtentPair
from repro.core.memory_model import (
    backend_memory_bytes,
    chh_backend_bytes,
    cms_backend_bytes,
    two_tier_backend_bytes,
)
from repro.core.typed import TypedOnlineAnalyzer
from repro.engine.backends import (
    CHHBackend,
    CountMinPairBackend,
    SynopsisBackend,
    TwoTierBackend,
    create_backend,
)
from repro.engine.backends.host import BackendEngine
from repro.engine.checkpoint import (
    as_typed_engine,
    dump_engine,
    load_engine,
)
from repro.core.serialize import CheckpointCorruptError
from repro.engine.sharded import shard_config
from repro.service import CharacterizationService
from repro.telemetry import NULL_REGISTRY

CONFIG = AnalyzerConfig(item_capacity=256, correlation_capacity=256)

#: Planted hot pairs, descending true frequency.
HOT = [
    (Extent(1, 8), Extent(9, 8), 60),
    (Extent(100, 4), Extent(200, 4), 40),
    (Extent(300, 2), Extent(400, 2), 25),
]


def hot_pair_stream(seed=7, noise=150, population=5000):
    """Transactions planting HOT pairs amid uniform background noise."""
    rng = random.Random(seed)
    out = []
    for first, second, repeats in HOT:
        out.extend([[first, second]] * repeats)
    for _ in range(noise):
        out.append([
            Extent(rng.randint(1000, 1000 + population), 1)
            for _ in range(rng.randint(1, 4))
        ])
    rng.shuffle(out)
    return out


def random_stream(seed=11, count=400, population=120):
    rng = random.Random(seed)
    return [
        [Extent(rng.randint(0, population), rng.randint(1, 4))
         for _ in range(rng.randint(1, 6))]
        for _ in range(count)
    ]


def config_for(name, base=CONFIG):
    import dataclasses
    return dataclasses.replace(base, backend=name)


# ---------------------------------------------------------------------------
# Protocol and registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_all_names_registered(self):
        assert set(BACKEND_NAMES) == {"two-tier", "chh", "cms"}

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_protocol_conformance(self, name):
        backend = create_backend(name, config_for(name))
        assert isinstance(backend, SynopsisBackend)
        assert backend.name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown synopsis backend"):
            create_backend("bloom")
        with pytest.raises(ValueError, match="backend"):
            AnalyzerConfig(backend="bloom")

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_query_surface(self, name):
        backend = create_backend(name, config_for(name))
        for extents in hot_pair_stream():
            backend.process(extents)
        top = backend.top_pairs(10)
        assert top and all(count >= top[-1][1] for _pair, count in top)
        assert isinstance(backend.pair_frequencies(), dict)
        assert backend.frequent_extents(1)
        assert backend.memory_bytes() > 0
        items, pairs = backend.occupancy()
        assert items > 0 and pairs > 0
        report = backend.report()
        assert report.transactions == len(hot_pair_stream())


# ---------------------------------------------------------------------------
# Reference backend: exactness
# ---------------------------------------------------------------------------

class TestTwoTierReference:
    def test_hosted_two_tier_matches_bare_analyzer(self):
        engine = BackendEngine(config_for("two-tier"), shards=1,
                               registry=NULL_REGISTRY)
        bare = TypedOnlineAnalyzer(CONFIG, registry=NULL_REGISTRY)
        for extents in random_stream():
            engine.process(extents)
            bare.process(extents)
        assert engine.frequent_pairs(1) == bare.frequent_pairs(1)
        assert engine.frequent_extents(1) == bare.frequent_extents(1)
        assert engine.pair_frequencies() == bare.pair_frequencies()
        probe = Extent(5, 1)
        expected = sorted(
            [
                ((p.second if p.first == probe else p.first), c)
                for p, c in bare.pair_frequencies().items()
                if probe in (p.first, p.second)
            ],
            key=lambda e: (-e[1], e[0]),
        )[:16]
        assert engine.correlated_with(probe) == expected

    def test_two_tier_merge_unsupported(self):
        backend = TwoTierBackend(config_for("two-tier"))
        with pytest.raises(NotImplementedError):
            backend.merge(TwoTierBackend(config_for("two-tier")))


# ---------------------------------------------------------------------------
# Sketch backends: planted hot pairs
# ---------------------------------------------------------------------------

class TestSketchAccuracy:
    @pytest.mark.parametrize("name", ["chh", "cms"])
    def test_exact_on_low_churn_stream(self, name):
        """With few distinct keys (no summary evictions) both sketches
        count the planted pairs exactly or overestimate."""
        backend = create_backend(name, config_for(name))
        for extents in hot_pair_stream(noise=40, population=10):
            backend.process(extents)
        top = dict(backend.top_pairs(10))
        for first, second, repeats in HOT:
            pair = ExtentPair(first, second)
            assert pair in top, f"{name} lost planted pair {pair}"
            assert top[pair] >= repeats

    @pytest.mark.parametrize("name", ["chh", "cms"])
    def test_ranks_hot_pairs_above_noise(self, name):
        """Under heavy distinct-key noise (summary churn) the strongest
        planted pairs still outrank the background.  CHH may
        *underestimate* after an eviction drops an inner summary -- the
        recall/memory trade the Pareto benchmark quantifies -- so only
        rank, not magnitude, is asserted for the hottest pairs."""
        backend = create_backend(name, config_for(name))
        for extents in hot_pair_stream():
            backend.process(extents)
        top = [pair for pair, _count in backend.top_pairs(10)]
        for first, second, _repeats in HOT[:2]:
            assert ExtentPair(first, second) in top

    @pytest.mark.parametrize("name", ["chh", "cms"])
    def test_correlated_with_finds_partner(self, name):
        backend = create_backend(name, config_for(name))
        for extents in hot_pair_stream():
            backend.process(extents)
        partners = backend.correlated_with(Extent(1, 8), k=4)
        assert partners and partners[0][0] == Extent(9, 8)

    def test_cms_never_underestimates(self):
        backend = CountMinPairBackend(config_for("cms"))
        truth = {}
        for extents in random_stream(seed=3, count=300, population=60):
            distinct = sorted(set(extents))
            backend.process(extents)
            for i in range(len(distinct) - 1):
                for j in range(i + 1, len(distinct)):
                    pair = ExtentPair(distinct[i], distinct[j])
                    truth[pair] = truth.get(pair, 0) + 1
        for pair, count in truth.items():
            assert backend.estimate(pair) >= count

    @pytest.mark.parametrize("name", ["chh", "cms"])
    def test_merge_keeps_hot_pairs(self, name):
        left = create_backend(name, config_for(name))
        right = create_backend(name, config_for(name))
        stream = hot_pair_stream()
        for extents in stream[::2]:
            left.process(extents)
        for extents in stream[1::2]:
            right.process(extents)
        left.merge(right)
        top = dict(left.top_pairs(10))
        hottest = ExtentPair(HOT[0][0], HOT[0][1])
        assert hottest in top and top[hottest] >= HOT[0][2]
        assert left.report().transactions == len(stream)

    def test_cms_merge_requires_matching_dimensions(self):
        import dataclasses
        a = CountMinPairBackend(config_for("cms"))
        other_cfg = dataclasses.replace(config_for("cms"), cms_width=32)
        b = CountMinPairBackend(other_cfg)
        with pytest.raises(ValueError, match="different dimensions"):
            a.merge(b)


# ---------------------------------------------------------------------------
# Per-shard config derivation
# ---------------------------------------------------------------------------

class TestShardConfig:
    def test_backend_fields_survive(self):
        config = AnalyzerConfig(1024, 1024, backend="chh",
                                chh_partners=8, cms_depth=5)
        per = shard_config(config, 4)
        assert per.backend == "chh"
        assert per.chh_partners == 8
        assert per.cms_depth == 5
        assert per.item_capacity == 256

    def test_explicit_dimensions_scale_down(self):
        config = AnalyzerConfig(1024, 1024, backend="cms",
                                cms_width=1000, cms_candidates=100,
                                chh_items=80)
        per = shard_config(config, 4)
        assert per.cms_width == 250
        assert per.cms_candidates == 25
        assert per.chh_items == 20

    def test_auto_dimensions_stay_auto(self):
        per = shard_config(AnalyzerConfig(1024, 1024, backend="chh"), 4)
        assert per.chh_items == 0  # derives from the divided capacity
        items, _partners = per.chh_dimensions()
        full_items, _ = AnalyzerConfig(1024, 1024).chh_dimensions()
        assert items == -(-full_items // 4)


# ---------------------------------------------------------------------------
# Checkpoint format v4
# ---------------------------------------------------------------------------

def build_engine(name, shards=3):
    engine = BackendEngine(config_for(name), shards=shards,
                           registry=NULL_REGISTRY)
    for extents in hot_pair_stream():
        engine.process(extents)
    return engine


class TestCheckpointV4:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_round_trip_query_identical(self, name):
        engine = build_engine(name)
        buf = io.BytesIO()
        dump_engine(engine, buf)
        buf.seek(0)
        loaded = load_engine(buf, strict=True)
        assert loaded.corrupt_shards == []
        restored = as_typed_engine(loaded)
        assert isinstance(restored, BackendEngine)
        assert restored.backend_name == name
        assert restored.shards == engine.shards
        assert restored.config == engine.config
        assert restored.frequent_pairs(1) == engine.frequent_pairs(1)
        assert restored.frequent_extents(1) == engine.frequent_extents(1)
        assert restored.top_pairs(20) == engine.top_pairs(20)
        assert restored.report() == engine.report()

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_degraded_restore(self, name):
        engine = build_engine(name)
        buf = io.BytesIO()
        dump_engine(engine, buf)
        raw = bytearray(buf.getvalue())
        raw[-2] ^= 0xFF  # inside the last shard's payload

        with pytest.raises(CheckpointCorruptError):
            load_engine(io.BytesIO(bytes(raw)), strict=True)

        loaded = load_engine(io.BytesIO(bytes(raw)), strict=False)
        assert loaded.corrupt_shards == [engine.shards - 1]
        restored = loaded.engine
        # Surviving shards keep their learned state.
        survivors = restored.shard_backends[:-1]
        originals = engine.shard_backends[:-1]
        for survivor, original in zip(survivors, originals):
            assert survivor.serialize() == original.serialize()
        # The corrupt shard restores fresh but usable.
        items, pairs = restored.shard_backends[-1].occupancy()
        assert (items, pairs) == (0, 0)
        restored.process([Extent(1, 8), Extent(9, 8)])

    def test_framing_corruption_always_raises(self):
        engine = build_engine("chh")
        buf = io.BytesIO()
        dump_engine(engine, buf)
        raw = bytearray(buf.getvalue())
        raw[2] ^= 0xFF  # magic
        with pytest.raises(CheckpointCorruptError):
            load_engine(io.BytesIO(bytes(raw)), strict=False)

    @pytest.mark.parametrize("name", ["chh", "cms"])
    def test_backend_serialize_round_trip_exact(self, name):
        backend = create_backend(name, config_for(name))
        for extents in hot_pair_stream():
            backend.process(extents)
        blob = backend.serialize()
        clone = type(backend).deserialize(blob, backend.config)
        assert clone.serialize() == blob
        assert clone.top_pairs(50) == backend.top_pairs(50)
        assert clone.frequent_extents(1) == backend.frequent_extents(1)


# ---------------------------------------------------------------------------
# Service integration
# ---------------------------------------------------------------------------

class TestServiceIntegration:
    @pytest.mark.parametrize("name", ["chh", "cms"])
    def test_service_hosts_sketch_backend(self, name):
        service = CharacterizationService(
            config=config_for(name), shards=2, registry=NULL_REGISTRY,
        )
        assert isinstance(service.analyzer, BackendEngine)
        now = [0.0]

        def feed(first, second):
            from repro.monitor.events import BlockIOEvent
            from repro.trace.record import OpType
            for extent in (first, second):
                now[0] += 1e-6
                service.submit(BlockIOEvent(
                    now[0], 1, OpType.READ, extent.start, extent.length))
            now[0] += 10.0  # close the window

        for _ in range(30):
            feed(Extent(1, 8), Extent(9, 8))
        service.close()
        snapshot = service.snapshot()
        assert snapshot.transactions >= 30
        top = dict(service.analyzer.top_pairs(5))
        assert ExtentPair(Extent(1, 8), Extent(9, 8)) in top

        buf = io.BytesIO()
        service.checkpoint(buf)
        restored = CharacterizationService(
            config=config_for(name), shards=2, registry=NULL_REGISTRY,
        )
        buf.seek(0)
        restored.restore(buf)
        assert isinstance(restored.analyzer, BackendEngine)
        assert restored.analyzer.top_pairs(5) == \
            service.analyzer.top_pairs(5)

    def test_resilient_service_checkpoints_backend_engine(self, tmp_path):
        from repro.monitor.events import BlockIOEvent
        from repro.resilience import ResilientCharacterizationService
        from repro.trace.record import OpType

        path = tmp_path / "synopsis.ckpt"

        def make():
            return ResilientCharacterizationService(
                config=config_for("cms"), shards=2, registry=NULL_REGISTRY,
            )

        service = make()
        now = 0.0
        for _ in range(30):
            for extent in (Extent(1, 8), Extent(9, 8)):
                now += 1e-6
                service.submit(BlockIOEvent(
                    now, 1, OpType.READ, extent.start, extent.length))
            now += 10.0
        service.checkpoint_to(path)
        assert service.health().status == "ok"
        assert path.read_bytes().startswith(b"RTBKD\x04")

        restored = make()
        assert restored.restore_from(path)
        assert isinstance(restored.analyzer, BackendEngine)
        assert restored.shards == 2
        assert restored.analyzer.top_pairs(5) == \
            service.analyzer.top_pairs(5)

        # Whole-file corruption falls back to a fresh engine of the
        # same backend shape instead of crashing or silently loading.
        (tmp_path / "dead.ckpt").write_bytes(
            b"\x00" + path.read_bytes()[1:])
        fallback = make()
        assert not fallback.restore_from(tmp_path / "dead.ckpt")
        assert isinstance(fallback.analyzer, BackendEngine)
        assert fallback.health().status == "degraded"


# ---------------------------------------------------------------------------
# Process-backed hosting
# ---------------------------------------------------------------------------

class TestProcessShardedBackends:
    @pytest.mark.parametrize("name", ["chh", "cms"])
    def test_worker_fleet_hosts_backend(self, name):
        from repro.engine.procshard import ProcessShardedAnalyzer
        from repro.monitor.batch import TransactionBatch
        from repro.monitor.events import BlockIOEvent
        from repro.monitor.transaction import Transaction
        from repro.trace.record import OpType

        def to_batch(stream):
            now, txns = 0.0, []
            for extents in stream:
                events = []
                for extent in extents:
                    now += 1e-6
                    events.append(BlockIOEvent(
                        now, 1, OpType.READ, extent.start, extent.length))
                txns.append(Transaction(events))
            return TransactionBatch.from_transactions(txns)

        stream = hot_pair_stream(noise=60)
        engine = ProcessShardedAnalyzer(config_for(name), shards=2,
                                        registry=NULL_REGISTRY)
        try:
            engine.process_transaction_batch(to_batch(stream))
            top = [pair for pair, _c in engine.frequent_pairs(1)[:10]]
            assert ExtentPair(HOT[0][0], HOT[0][1]) in top
            assert engine.report().transactions == len(stream)

            # The analyzer seam is mode-gated both ways.
            with pytest.raises(AttributeError):
                engine.shard_analyzers
            backends = engine.shard_backends
            assert len(backends) == 2
            assert all(backend.name == name for backend in backends)

            # v4 checkpoint straight off the fleet, then adopt it back.
            buf = io.BytesIO()
            dump_engine(engine, buf)
            buf.seek(0)
            restored = as_typed_engine(load_engine(buf))
            assert isinstance(restored, BackendEngine)
            assert restored.frequent_pairs(1)[:10] == \
                engine.frequent_pairs(1)[:10]

            fresh = ProcessShardedAnalyzer(config_for(name), shards=2,
                                           registry=NULL_REGISTRY)
            try:
                fresh.adopt_backends(restored.shard_backends)
                assert fresh.frequent_pairs(1)[:10] == \
                    engine.frequent_pairs(1)[:10]
            finally:
                fresh.close()
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# Memory model
# ---------------------------------------------------------------------------

class TestMemoryModel:
    def test_backend_memory_dispatch(self):
        base = AnalyzerConfig(4096, 4096)
        assert backend_memory_bytes(base) == two_tier_backend_bytes(base)
        chh = config_for("chh", base)
        assert backend_memory_bytes(chh) == \
            chh_backend_bytes(*chh.chh_dimensions())
        cms = config_for("cms", base)
        assert backend_memory_bytes(cms) == \
            cms_backend_bytes(*cms.cms_dimensions())

    @pytest.mark.parametrize("name", ["chh", "cms"])
    def test_sketches_fit_quarter_budget_at_auto_dims(self, name):
        base = AnalyzerConfig(4096, 4096)
        budget = two_tier_backend_bytes(base)
        sketch = backend_memory_bytes(config_for(name, base))
        assert sketch <= 0.25 * budget, (
            f"{name} auto dims cost {sketch} bytes, "
            f"> 25% of {budget}"
        )

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_instance_agrees_with_model(self, name):
        config = config_for(name)
        backend = create_backend(name, config)
        assert backend.memory_bytes() == backend_memory_bytes(config)


# ---------------------------------------------------------------------------
# Ranked-recall metric
# ---------------------------------------------------------------------------

class TestTopKRecall:
    def test_perfect_and_empty(self):
        truth = {"a": 5, "b": 3}
        assert top_k_recall(truth, [("a", 9), ("b", 4)], k=2) == 1.0
        assert top_k_recall({}, [("a", 1)], k=10) == 1.0

    def test_partial_overlap(self):
        truth = {"a": 5, "b": 3, "c": 1}
        assert top_k_recall(truth, [("a", 9), ("c", 2)], k=2) == 0.5

    def test_truth_smaller_than_k(self):
        assert top_k_recall({"a": 5}, [("a", 1), ("b", 1)], k=100) == 1.0

    def test_tie_class_members_all_count(self):
        # "b" and "c" tie at the k-th place; returning either is a
        # correct top-2, so both rankings score perfect recall.
        truth = {"a": 5, "b": 3, "c": 3, "d": 1}
        assert top_k_recall(truth, [("a", 9), ("b", 4)], k=2) == 1.0
        assert top_k_recall(truth, [("a", 9), ("c", 4)], k=2) == 1.0
        assert top_k_recall(truth, [("a", 9), ("d", 4)], k=2) == 0.5

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            top_k_recall({"a": 1}, [], k=0)
