"""Tests for the repro.cache subsystem (simulator, policies, prefetchers)."""

import random

import pytest

from repro.cache import (
    ArcPolicy,
    CacheDriver,
    CachedCharacterizationService,
    Clock2QPolicy,
    CacheStats,
    LruPolicy,
    OfflineMiner,
    SimulatedBlockCache,
    SynopsisPrefetcher,
    correlated_partners,
    make_policy,
    run_closed_loop,
    simulate_cache,
)
from repro.core.analyzer import OnlineAnalyzer
from repro.core.extent import Extent
from repro.engine.backends import BACKEND_NAMES, create_backend
from repro.telemetry.metrics import MetricsRegistry


def one_block(i):
    return Extent(i, 1)


# ---------------------------------------------------------------------------
# Eviction policies
# ---------------------------------------------------------------------------

class TestPolicies:
    def test_lru_evicts_least_recent(self):
        policy = LruPolicy(2)
        assert policy.admit("a") == []
        assert policy.admit("b") == []
        policy.touch("a")  # b is now least recent
        assert policy.admit("c") == ["b"]
        assert "a" in policy and "c" in policy and "b" not in policy

    def test_make_policy_resolves_names_and_instances(self):
        assert isinstance(make_policy("lru", 8), LruPolicy)
        assert isinstance(make_policy("arc", 8), ArcPolicy)
        assert isinstance(make_policy("clock2q", 8), Clock2QPolicy)
        instance = LruPolicy(4)
        assert make_policy(instance, 99) is instance
        with pytest.raises(ValueError):
            make_policy("fifo", 8)

    def test_arc_policy_reports_every_eviction(self):
        policy = ArcPolicy(8)
        random.seed(11)
        admitted = set()
        for _ in range(2000):
            key = random.randrange(64)
            evicted = policy.touch(key) if key in policy \
                else policy.admit(key)
            admitted.add(key)
            for victim in evicted:
                admitted.discard(victim)
            assert len(policy) <= 8
        # The listener-fed eviction channel kept residency in sync.
        assert admitted == {key for key in range(64) if key in policy}

    def test_clock2q_invariants_under_random_traffic(self):
        policy = Clock2QPolicy(16, ghost_capacity=16)
        random.seed(5)
        for step in range(4000):
            key = random.randrange(80)
            if key in policy:
                policy.touch(key)
            else:
                policy.admit(key)
            assert policy.check_invariants(), step
            assert len(policy) <= policy.capacity

    def test_clock2q_probation_hit_promotes(self):
        policy = Clock2QPolicy(8, probation_fraction=0.5)
        policy.admit("a")
        policy.touch("a")  # promoted out of probation
        # Flood probation: "a" must survive in the protected region.
        for i in range(16):
            policy.admit(i)
        assert "a" in policy

    def test_clock2q_ghost_hit_bypasses_probation(self):
        policy = Clock2QPolicy(4, probation_fraction=0.5, ghost_capacity=8)
        policy.admit("a")
        policy.admit("b")
        policy.admit("c")  # probation FIFO (cap 2) evicts "a" to ghost
        assert "a" not in policy and policy.in_ghost("a")
        policy.admit("a")  # ghost hit: straight to protected
        for i in range(8):
            policy.admit(i)  # probation churn cannot touch it
        assert "a" in policy


class TestScanResistance:
    """Satellite 3a: Clock2Q+ beats LRU on a cyclic scan > capacity."""

    CAPACITY = 64
    LOOP = 72  # > capacity, within probation+ghost history reach

    def cyclic_trace(self, rounds=30):
        return [one_block(i) for i in range(self.LOOP)] * rounds

    def test_lru_scores_zero_on_cyclic_scan(self):
        stats = simulate_cache(self.cyclic_trace(), self.CAPACITY,
                               policy="lru")
        assert stats.hit_ratio == 0.0

    def test_clock2q_beats_lru_on_cyclic_scan(self):
        trace = self.cyclic_trace()
        lru = simulate_cache(trace, self.CAPACITY, policy="lru")
        clock = simulate_cache(trace, self.CAPACITY, policy="clock2q")
        assert clock.hit_ratio > lru.hit_ratio
        assert clock.hit_ratio > 0.5  # loop pinning, not a marginal win

    def test_clock2q_tracks_lru_on_reuse_heavy_traffic(self):
        # Sanity: scan resistance must not ruin plain locality.
        random.seed(3)
        hot = [one_block(i) for i in range(32)]
        cold = [one_block(1000 + i) for i in range(4000)]
        trace = []
        for i in range(4000):
            trace.append(random.choice(hot) if i % 2 else cold[i])
        lru = simulate_cache(trace, self.CAPACITY, policy="lru")
        clock = simulate_cache(trace, self.CAPACITY, policy="clock2q")
        assert clock.hit_ratio >= lru.hit_ratio


# ---------------------------------------------------------------------------
# Prefetch attribution (satellite 2)
# ---------------------------------------------------------------------------

class TestPrefetchAttribution:
    def test_refetched_block_is_not_a_prefetch_hit(self):
        """A prefetched block evicted unused then re-fetched on demand
        must never re-count as a prefetch hit."""
        cache = SimulatedBlockCache(2, policy="lru")
        cache.prefetch(one_block(0))          # issued = 1
        cache.access(one_block(1))
        cache.access(one_block(2))            # evicts block 0, unused
        assert cache.stats.prefetch_evicted_unused == 1
        cache.access(one_block(0))            # demand re-fetch: a miss
        assert cache.stats.demand_refetches == 1
        cache.access(one_block(0))            # plain hit on a demand fill
        assert cache.stats.prefetch_hits == 0
        assert cache.stats.prefetch_accuracy == 0.0

    def test_prefetch_attributed_once_per_issue(self):
        cache = SimulatedBlockCache(8)
        cache.prefetch(one_block(0))
        cache.access(one_block(0))
        cache.access(one_block(0))
        assert cache.stats.prefetch_hits == 1
        assert cache.stats.hits == 2

    def test_accuracy_never_exceeds_one_under_churn(self):
        random.seed(9)
        cache = SimulatedBlockCache(16, policy="clock2q")
        for _ in range(3000):
            block = random.randrange(64)
            if random.random() < 0.3:
                cache.prefetch(one_block(block))
            else:
                cache.access(one_block(block))
        stats = cache.stats
        assert 0.0 <= stats.prefetch_accuracy <= 1.0
        assert (stats.prefetch_hits + stats.prefetch_evicted_unused
                <= stats.prefetches_issued)

    def test_stats_merge_and_dict(self):
        a = CacheStats(hits=3, misses=1, prefetches_issued=2,
                       prefetch_hits=1)
        b = CacheStats(hits=1, misses=1, demand_refetches=2)
        merged = a.merged(b)
        assert merged.hits == 4 and merged.accesses == 6
        assert merged.demand_refetches == 2
        payload = merged.as_dict()
        assert payload["hit_ratio"] == pytest.approx(4 / 6, abs=1e-6)
        assert payload["prefetch_accuracy"] == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Prefetchers: synopsis queries, throttling, offline miner
# ---------------------------------------------------------------------------

def alternating_pair_transactions(pairs=8, rounds=40):
    """[A_i, B_i] transactions cycling over the pairs, deterministic."""
    txns = []
    for r in range(rounds):
        i = r % pairs
        txns.append([Extent(64 * i, 4), Extent(64 * i + 32, 4)])
    return txns


class TestSynopsisPrefetcher:
    @pytest.mark.parametrize("backend", sorted(BACKEND_NAMES))
    def test_partner_query_identical_across_backends(self, backend):
        """Satellite 3b: the prefetcher behaves the same against every
        synopsis backend on an alternating-pairs stream."""
        engine = create_backend(backend)
        txns = alternating_pair_transactions()
        for txn in txns:
            engine.process(txn)
        prefetcher = SynopsisPrefetcher(engine, budget=1, min_support=2)
        for a, b in set(map(tuple, txns)):
            assert prefetcher.partners_of(a) == [b]
            assert prefetcher.partners_of(b) == [a]

    @pytest.mark.parametrize("backend", sorted(BACKEND_NAMES))
    def test_closed_loop_hit_ratio_identical_across_backends(self, backend):
        engine = create_backend(backend)
        cache = SimulatedBlockCache(32)
        stats = run_closed_loop(
            alternating_pair_transactions(pairs=16, rounds=160),
            engine, cache,
            SynopsisPrefetcher(engine, budget=1, min_support=2),
        )
        # 16 pairs x 8 blocks = 128 blocks > 32-block cache: without
        # prefetch the second extent of each pair would miss.
        assert stats.prefetch_accuracy > 0.9
        assert stats.hit_ratio > 0.3

    def test_min_support_floor_filters_weak_partners(self):
        analyzer = OnlineAnalyzer()
        analyzer.process([Extent(0, 1), Extent(8, 1)])  # tally 1
        prefetcher = SynopsisPrefetcher(analyzer, min_support=2)
        assert prefetcher.partners_of(Extent(0, 1)) == []
        analyzer.process([Extent(0, 1), Extent(8, 1)])  # tally 2
        assert prefetcher.partners_of(Extent(0, 1)) == [Extent(8, 1)]

    def test_throttles_on_bad_accuracy_and_recovers(self):
        analyzer = OnlineAnalyzer()
        prefetcher = SynopsisPrefetcher(analyzer, budget=4,
                                        backoff_accuracy=0.2,
                                        restore_accuracy=0.5)
        prefetcher.adjust(0.05)
        assert prefetcher.effective_budget == 2
        prefetcher.adjust(0.05)
        prefetcher.adjust(0.05)
        assert prefetcher.effective_budget == 0 and prefetcher.paused
        # Paused: a quiet window probes the budget back open ...
        prefetcher.adjust(0.0, issued=0)
        assert prefetcher.effective_budget == 1
        # ... and sustained good accuracy restores it fully.
        for _ in range(4):
            prefetcher.adjust(0.9)
        assert prefetcher.effective_budget == 4

    def test_paused_prefetcher_returns_no_partners(self):
        analyzer = OnlineAnalyzer()
        for _ in range(3):
            analyzer.process([Extent(0, 1), Extent(8, 1)])
        prefetcher = SynopsisPrefetcher(analyzer, budget=1)
        assert prefetcher.partners_of(Extent(0, 1))
        while not prefetcher.paused:
            prefetcher.adjust(0.0)
        assert prefetcher.partners_of(Extent(0, 1)) == []

    def test_driver_feeds_accuracy_back(self):
        analyzer = OnlineAnalyzer()
        # Strong pair, but partner extents never re-accessed: accuracy 0.
        for _ in range(5):
            analyzer.process([Extent(0, 1), Extent(8, 1)])
        prefetcher = SynopsisPrefetcher(analyzer, budget=2)
        cache = SimulatedBlockCache(64)
        driver = CacheDriver(cache, prefetcher, feedback_interval=16)
        for i in range(64):
            driver.on_access(Extent(0, 1))
        assert prefetcher.adjustments >= 1
        assert prefetcher.backoffs >= 1  # prefetched 8 never demanded

    def test_validation(self):
        analyzer = OnlineAnalyzer()
        with pytest.raises(ValueError):
            SynopsisPrefetcher(analyzer, budget=0)
        with pytest.raises(ValueError):
            SynopsisPrefetcher(analyzer, min_support=0)
        with pytest.raises(ValueError):
            SynopsisPrefetcher(analyzer, backoff_accuracy=0.8,
                               restore_accuracy=0.2)

    def test_correlated_partners_scan_fallback(self):
        class PairsOnly:
            def __init__(self, analyzer):
                self._analyzer = analyzer

            def pair_frequencies(self):
                return self._analyzer.pair_frequencies()

        analyzer = OnlineAnalyzer()
        for _ in range(3):
            analyzer.process([Extent(0, 1), Extent(8, 1)])
        via_index = correlated_partners(analyzer, Extent(0, 1), 4)
        via_scan = correlated_partners(PairsOnly(analyzer), Extent(0, 1), 4)
        assert via_index == via_scan == [(Extent(8, 1), 3)]


class TestOfflineMiner:
    def test_mines_lookahead_associations(self):
        a, b, c = Extent(0, 1), Extent(8, 1), Extent(16, 1)
        trace = [a, b, c] * 5
        miner = OfflineMiner(lookahead=1, min_support=2).mine(trace)
        assert miner.partners_of(a) == [b]
        assert miner.partners_of(b) == [c]
        # lookahead=1: a -> c is out of reach
        assert c not in miner.partners_of(a)

    def test_min_support_prunes_rare_rules(self):
        a, b, c = Extent(0, 1), Extent(8, 1), Extent(16, 1)
        trace = [a, b] * 3 + [a, c]
        miner = OfflineMiner(lookahead=2, min_support=3).mine(trace)
        assert miner.partners_of(a) == [b]

    def test_beats_no_prefetch_on_paired_trace(self):
        txns = alternating_pair_transactions(pairs=16, rounds=160)
        accesses = [e for t in txns for e in t]
        plain = simulate_cache(accesses, 32)
        miner = OfflineMiner(lookahead=2, min_support=2).mine(accesses)
        mined = simulate_cache(accesses, 32, prefetcher=miner)
        assert mined.hit_ratio > plain.hit_ratio

    def test_validation(self):
        with pytest.raises(ValueError):
            OfflineMiner(lookahead=0)
        with pytest.raises(ValueError):
            OfflineMiner(min_support=0)
        with pytest.raises(ValueError):
            OfflineMiner(fanout=0)


# ---------------------------------------------------------------------------
# The closed loop end to end
# ---------------------------------------------------------------------------

class TestClosedLoop:
    def test_closed_loop_lifts_hit_ratio(self):
        random.seed(7)
        pairs = [(Extent(128 * i, 8), Extent(128 * i + 64, 8))
                 for i in range(64)]
        txns = [list(random.choice(pairs)) for _ in range(2000)]

        engine = OnlineAnalyzer()
        baseline_cache = SimulatedBlockCache(256)
        driver = CacheDriver(baseline_cache, None)
        for txn in txns:
            driver.on_transaction(txn)
            engine.process(txn)

        engine2 = OnlineAnalyzer()
        loop_cache = SimulatedBlockCache(256)
        stats = run_closed_loop(txns, engine2, loop_cache,
                                SynopsisPrefetcher(engine2, budget=2))
        assert stats.hit_ratio > baseline_cache.stats.hit_ratio + 0.05
        assert stats.prefetch_accuracy > 0.5

    def test_pipeline_cache_knob(self):
        from repro.pipeline import run_pipeline
        from repro.workloads.enterprise import generate_named

        records, _ = generate_named("wdev", requests=1500, seed=5)
        with_prefetch = run_pipeline(records, cache=512,
                                     record_offline=False)
        without = run_pipeline(records, cache=512, prefetch=False,
                               record_offline=False)
        assert with_prefetch.cache is not None
        assert with_prefetch.cache_stats.prefetches_issued > 0
        assert without.cache_stats.prefetches_issued == 0
        assert (with_prefetch.cache_stats.hit_ratio
                > without.cache_stats.hit_ratio)

    def test_pipeline_without_cache_raises_on_cache_stats(self):
        from repro.pipeline import PipelineResult

        result = PipelineResult(replay=None, monitor_stats=None,
                                analyzer=None, recorder=None)
        with pytest.raises(ValueError):
            result.cache_stats

    def test_cached_service_counts_and_publishes(self):
        from repro.blkdev.device import SsdDevice
        from repro.blkdev.replay import replay_timed
        from repro.telemetry.export import snapshot, snapshot_value
        from repro.workloads.enterprise import generate_named

        records, _ = generate_named("wdev", requests=1500, seed=5)
        registry = MetricsRegistry()
        service = CachedCharacterizationService(cache=512,
                                                registry=registry)
        replay_timed(records, SsdDevice(), listeners=[service.submit],
                     collect=False)
        service.close()
        stats = service.cache_stats
        assert stats.accesses > 0 and stats.prefetches_issued > 0
        assert snapshot_value(
            snapshot(registry), "repro_cache_hits_total",
            {"policy": "lru"},
        ) == stats.hits

    def test_cached_service_batched_ingest_serves_the_cache(self):
        """Chunked submit_many drives the cache too: within one batch
        the cache runs ahead of training (one causality step), but
        across chunks the closed loop still learns and prefetches."""
        from repro.workloads.enterprise import generate_named
        from repro.monitor.events import BlockIOEvent

        records, _ = generate_named("hm", requests=1200, seed=9)
        events = [BlockIOEvent(r.timestamp, r.pid, r.op, r.start,
                               r.length, 100e-6) for r in records]
        scalar = CachedCharacterizationService(cache=512)
        for event in events:
            scalar.submit(event)
        scalar.close()
        batched = CachedCharacterizationService(cache=512)
        for lo in range(0, len(events), 100):
            batched.submit_many(events[lo:lo + 100])
        batched.close()
        # Both routes served every block of every transaction ...
        assert batched.cache_stats.accesses == scalar.cache_stats.accesses
        # ... and the batched loop still learned enough to prefetch well.
        assert batched.cache_stats.prefetches_issued > 0
        assert batched.cache_stats.prefetch_accuracy > 0.5

    def test_cached_service_rejects_bool_false(self):
        with pytest.raises(ValueError):
            CachedCharacterizationService(cache=False)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCacheSimCli:
    def test_cache_sim_writes_bench_json(self, tmp_path, capsys):
        import json

        from repro.cli.main import main
        from repro.trace.io import save_binary
        from repro.workloads.enterprise import generate_named

        records, _ = generate_named("wdev", requests=1200, seed=3)
        trace = tmp_path / "wdev.bin"
        save_binary(records, str(trace))
        out = tmp_path / "BENCH_cache.json"
        rc = main([
            "cache-sim", str(trace), "--sizes", "256",
            "--policies", "lru", "--modes", "none", "synopsis",
            "--json", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        results = payload["cache_sim"]["results"]
        assert len(results) == 2
        by_mode = {entry["prefetch"]: entry for entry in results}
        assert by_mode["synopsis"]["hit_ratio"] \
            > by_mode["none"]["hit_ratio"]
        assert "hit_ratio" in capsys.readouterr().out
