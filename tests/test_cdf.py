"""Tests for the correlation-frequency CDFs (Fig. 5)."""

import pytest

from repro.analysis.cdf import correlation_cdf

from conftest import pair


def counts_example():
    """6 pairs at frequency 1, 2 at frequency 5, 1 at frequency 20."""
    counts = {}
    for i in range(6):
        counts[pair(i, 100 + i)] = 1
    counts[pair(50, 60)] = 5
    counts[pair(51, 61)] = 5
    counts[pair(70, 80)] = 20
    return counts


class TestCorrelationCdf:
    def test_totals(self):
        cdf = correlation_cdf(counts_example())
        assert cdf.total_pairs == 9
        assert cdf.total_frequency == 36

    def test_unique_cdf_values(self):
        cdf = correlation_cdf(counts_example())
        assert cdf.unique_at(1) == pytest.approx(6 / 9)
        assert cdf.unique_at(5) == pytest.approx(8 / 9)
        assert cdf.unique_at(20) == pytest.approx(1.0)

    def test_weighted_cdf_values(self):
        cdf = correlation_cdf(counts_example())
        assert cdf.weighted_at(1) == pytest.approx(6 / 36)
        assert cdf.weighted_at(5) == pytest.approx(16 / 36)
        assert cdf.weighted_at(20) == pytest.approx(1.0)

    def test_lookup_between_sample_points(self):
        cdf = correlation_cdf(counts_example())
        assert cdf.unique_at(3) == cdf.unique_at(1)
        assert cdf.unique_at(0) == 0.0

    def test_both_cdfs_monotone(self):
        cdf = correlation_cdf(counts_example())
        for series in (cdf.unique_fractions, cdf.weighted_fractions):
            assert all(a <= b for a, b in zip(series, series[1:]))
            assert series[-1] == pytest.approx(1.0)

    def test_zipf_signature(self):
        """For a skewed distribution, the unique CDF dominates the weighted
        CDF at every frequency -- Fig. 5's solid-above-dashed shape."""
        cdf = correlation_cdf(counts_example())
        for unique, weighted in zip(cdf.unique_fractions[:-1],
                                    cdf.weighted_fractions[:-1]):
            assert unique > weighted

    def test_support_one_fraction(self):
        assert correlation_cdf(counts_example()).support_one_fraction == (
            pytest.approx(6 / 9)
        )

    def test_knee(self):
        cdf = correlation_cdf(counts_example())
        assert cdf.knee(rise_fraction=0.6) == 1
        assert cdf.knee(rise_fraction=0.8) == 5
        assert cdf.knee(rise_fraction=1.0) == 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            correlation_cdf({})

    def test_uniform_counts_degenerate(self):
        counts = {pair(i, 100 + i): 4 for i in range(5)}
        cdf = correlation_cdf(counts)
        assert cdf.frequencies == (4,)
        assert cdf.unique_at(4) == 1.0
        assert cdf.weighted_at(4) == 1.0
