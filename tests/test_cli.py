"""Tests for the command-line interface."""

import pytest

from repro.cli.main import build_parser, load_trace, main, save_trace
from repro.trace.record import OpType, TraceRecord


@pytest.fixture
def trace_csv(tmp_path):
    """A small generated trace on disk."""
    path = tmp_path / "demo.csv"
    code = main(["generate", "one-to-many", str(path),
                 "--duration", "20", "--seed", "3"])
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["characterize", "x.csv"])
        assert args.support == 5
        assert args.capacity == 16 * 1024
        assert args.max_transaction == 8
        assert args.window is None  # dynamic by default


class TestTraceFormats:
    def test_save_load_each_suffix(self, tmp_path):
        records = [TraceRecord(0.0, 1, OpType.READ, 10, 4)]
        for suffix in (".csv", ".bin", ".txt"):
            path = tmp_path / f"t{suffix}"
            save_trace(records, str(path))
            loaded = load_trace(str(path))
            assert loaded[0].start == 10

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            load_trace(str(tmp_path / "trace.json"))
        with pytest.raises(SystemExit):
            save_trace([], str(tmp_path / "trace.json"))


class TestGenerate:
    def test_synthetic_generation(self, trace_csv):
        records = load_trace(str(trace_csv))
        assert len(records) > 50

    def test_enterprise_generation(self, tmp_path):
        path = tmp_path / "wdev.bin"
        code = main(["generate", "wdev", str(path), "--requests", "500"])
        assert code == 0
        assert len(load_trace(str(path))) == 500

    def test_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "bogus", str(tmp_path / "x.csv")])


class TestStats(object):
    def test_stats_output(self, trace_csv, capsys):
        assert main(["stats", str(trace_csv)]) == 0
        out = capsys.readouterr().out
        assert "requests" in out
        assert "total data" in out
        assert "interarrival" in out


class TestCharacterize:
    def test_detects_correlations(self, trace_csv, capsys):
        code = main(["characterize", str(trace_csv),
                     "--support", "3", "--top", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top correlations" in out
        assert "x" in out  # at least one "pair xN" line

    def test_rules_flag(self, trace_csv, capsys):
        code = main(["characterize", str(trace_csv),
                     "--support", "3", "--rules"])
        assert code == 0
        out = capsys.readouterr().out
        assert "association rules" in out
        assert "->" in out

    def test_static_window_and_knobs(self, trace_csv, capsys):
        code = main(["characterize", str(trace_csv), "--support", "3",
                     "--window", "0.001", "--capacity", "256",
                     "--max-transaction", "4", "--no-dedup"])
        assert code == 0


class TestMine:
    @pytest.mark.parametrize("algorithm", ["apriori", "eclat", "fpgrowth"])
    def test_each_algorithm(self, trace_csv, capsys, algorithm):
        code = main(["mine", str(trace_csv), "--algorithm", algorithm,
                     "--support", "3", "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert algorithm in out
        assert "frequent pairs" in out


class TestReport:
    def test_report_subcommand(self, trace_csv, capsys):
        code = main(["report", str(trace_csv), "--support", "3",
                     "--capacity", "1024"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[workload]" in out
        assert "[correlations]" in out
        assert "[rules]" in out


class TestSynopsisCheckpointFlags:
    def test_save_and_load_synopsis(self, trace_csv, tmp_path, capsys):
        ckpt = tmp_path / "synopsis.bin"
        code = main(["characterize", str(trace_csv), "--support", "3",
                     "--save-synopsis", str(ckpt)])
        assert code == 0
        assert ckpt.exists() and ckpt.stat().st_size > 0
        out_first = capsys.readouterr().out
        assert "saved synopsis" in out_first

        code = main(["characterize", str(trace_csv), "--support", "3",
                     "--load-synopsis", str(ckpt)])
        assert code == 0
        out_second = capsys.readouterr().out
        assert "top correlations" in out_second


class TestDrift:
    def test_drift_subcommand(self, tmp_path, capsys):
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        assert main(["generate", "wdev", str(a), "--requests", "2000"]) == 0
        assert main(["generate", "hm", str(b), "--requests", "1000"]) == 0
        capsys.readouterr()
        code = main(["drift", str(a), str(b), "--segment", "1000",
                     "--capacity", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "after A-1" in out
        assert "after B-1" in out
        assert "after A-2" in out
        assert "stability" in out

    def test_drift_insufficient_trace(self, tmp_path, capsys):
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        main(["generate", "wdev", str(a), "--requests", "100"])
        main(["generate", "hm", str(b), "--requests", "100"])
        with pytest.raises(SystemExit):
            main(["drift", str(a), str(b), "--segment", "500"])
