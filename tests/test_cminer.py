"""Tests for the C-Miner-style offline baseline."""

import pytest

from repro.fim.cminer import (
    CMinerConfig,
    cminer_from_records,
    cminer_mine,
)

from conftest import ext


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CMinerConfig(segment_length=1)
        with pytest.raises(ValueError):
            CMinerConfig(gap=0)
        with pytest.raises(ValueError):
            CMinerConfig(min_support=0)
        with pytest.raises(ValueError):
            CMinerConfig(min_confidence=1.5)


class TestMining:
    def test_ordered_pair_detected(self):
        stream = ["a", "b", "x1", "a", "b", "x2", "a", "b", "x3"]
        result = cminer_mine(
            stream,
            CMinerConfig(segment_length=3, gap=2, min_support=3,
                         min_confidence=0.5),
        )
        assert ("a", "b") in result.pair_supports
        assert result.pair_supports[("a", "b")] == 3

    def test_order_matters(self):
        """C-Miner mines subsequences: (a then b) != (b then a)."""
        stream = ["a", "b"] * 5
        result = cminer_mine(
            stream,
            CMinerConfig(segment_length=2, gap=1, min_support=3,
                         min_confidence=0.1),
        )
        assert ("a", "b") in result.pair_supports
        assert ("b", "a") not in result.pair_supports

    def test_gap_constraint_limits_distance(self):
        # b always follows a, but 3 positions later.
        stream = ["a", "x", "y", "b"] * 5
        tight = cminer_mine(stream, CMinerConfig(
            segment_length=4, gap=1, min_support=3, min_confidence=0.1))
        loose = cminer_mine(stream, CMinerConfig(
            segment_length=4, gap=3, min_support=3, min_confidence=0.1))
        assert ("a", "b") not in tight.pair_supports
        assert ("a", "b") in loose.pair_supports

    def test_support_counts_once_per_segment(self):
        stream = ["a", "b", "a", "b"]  # one segment, pattern repeats inside
        result = cminer_mine(stream, CMinerConfig(
            segment_length=4, gap=3, min_support=1, min_confidence=0.1))
        assert result.pair_supports[("a", "b")] == 1
        assert result.segments == 1

    def test_self_pairs_excluded(self):
        stream = ["a", "a", "a"] * 3
        result = cminer_mine(stream, CMinerConfig(
            segment_length=3, gap=2, min_support=1, min_confidence=0.1))
        assert ("a", "a") not in result.pair_supports

    def test_rules_confidence(self):
        # a -> b in every a-segment; b -> z in only half of b's segments.
        stream = (["a", "b"] * 6) + (["b", "z"] * 6)
        result = cminer_mine(stream, CMinerConfig(
            segment_length=2, gap=1, min_support=3, min_confidence=0.1))
        by_direction = {
            (rule.antecedent, rule.consequent): rule for rule in result.rules
        }
        assert by_direction[("a", "b")].confidence == pytest.approx(1.0)
        assert by_direction[("b", "z")].confidence == pytest.approx(0.5)

    def test_min_confidence_prunes_rules(self):
        stream = (["a", "b"] * 6) + (["b", "z"] * 6)
        result = cminer_mine(stream, CMinerConfig(
            segment_length=2, gap=1, min_support=3, min_confidence=0.9))
        directions = {(r.antecedent, r.consequent) for r in result.rules}
        assert ("a", "b") in directions
        assert ("b", "z") not in directions


class TestOnSyntheticTrace:
    def test_finds_planted_correlations(self, small_synthetic):
        """On the paper's synthetic workload, the offline C-Miner baseline
        must find the planted correlations, just as the online framework
        does -- the difference is it needed the stored trace."""
        records, truth = small_synthetic
        result = cminer_from_records(records, CMinerConfig(
            segment_length=50, gap=8, min_support=5, min_confidence=0.3))
        mined_extents = set()
        for a, b in result.pair_supports:
            mined_extents.add(a)
            mined_extents.add(b)
        for planted in truth.pairs:
            assert planted.first in mined_extents
            assert planted.second in mined_extents
