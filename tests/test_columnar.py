"""Columnar ingest equivalence: one stream, three lanes, one answer.

The property under test (ISSUE 7 acceptance criteria): pushing the same
event stream through

* the per-event lane (``Monitor.on_event`` via ``submit``),
* the amortized object lane (``submit_many`` with columnar conversion
  disabled), and
* the columnar lane (``submit_many`` over :class:`EventBatch` chunks)

produces *identical* :class:`MonitorStats` and identical top-k frequent
pairs -- on a Zipf-correlated stream and an MSR-like enterprise stream,
with both static and dynamic (EWMA) windows, at ``shards=1`` (the
single-analyzer tally-identity anchor) and ``shards=4``.  A separate
check pins the thread-parallel columnar path to its object-path twin.
"""

import random

import pytest

from repro.core.config import AnalyzerConfig
from repro.monitor.batch import EventBatch
from repro.monitor.events import BlockIOEvent
from repro.monitor.window import DynamicLatencyWindow, StaticWindow
from repro.service import CharacterizationService
from repro.telemetry import NULL_REGISTRY
from repro.trace.record import OpType
from repro.workloads.enterprise import generate_named

#: Deliberately unaligned with every batch boundary in the streams, so
#: pending transactions carry across chunk edges.
CHUNK = 257
TOP_K = 30
CONFIG = AnalyzerConfig(item_capacity=512, correlation_capacity=1024)


def zipf_events(seed=11, count=8000, groups=120):
    """Zipf-popular correlated extent groups plus uniform noise."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(groups)]
    group_extents = [
        [((rank * 7 + offset) * 16, 8 + 8 * (offset % 2))
         for offset in range(2 + rank % 2)]
        for rank in range(groups)
    ]
    events, now = [], 0.0
    while len(events) < count:
        if rng.random() < 0.15:  # noise access
            now += rng.random() * 0.004
            events.append(BlockIOEvent(
                now, rng.randrange(4),
                rng.choice([OpType.READ, OpType.WRITE]),
                rng.randrange(50_000) * 8, 8,
                latency=rng.random() * 0.002,
            ))
            continue
        (group,) = rng.choices(range(groups), weights=weights)
        now += rng.random() * 0.004
        for start, length in group_extents[group]:
            now += rng.random() * 0.0005
            events.append(BlockIOEvent(
                now, rng.randrange(4),
                rng.choice([OpType.READ, OpType.WRITE]),
                start, length,
                latency=rng.random() * 0.002,
            ))
    return events[:count]


def msr_events(name="hm", count=6000, seed=7):
    """An MSR-like enterprise stream (timestamps and latencies included)."""
    records, _truth = generate_named(name, requests=count, seed=seed)
    return [
        BlockIOEvent(record.timestamp, record.pid, record.op,
                     record.start, record.length, record.latency)
        for record in records
    ]


def run_lane(events, lane, *, shards, window, parallel_shards=False):
    service = CharacterizationService(
        config=CONFIG,
        window=window,
        min_support=1,
        registry=NULL_REGISTRY,
        shards=shards,
        parallel_shards=parallel_shards,
        columnar_threshold=None if lane == "object" else CHUNK,
    )
    if lane == "per_event":
        for event in events:
            service.submit(event)
    else:
        for i in range(0, len(events), CHUNK):
            chunk = events[i:i + CHUNK]
            if lane == "columnar":
                chunk = EventBatch.from_events(chunk)
            service.submit_many(chunk)
    service.close()
    return (
        service.monitor.stats,
        service.snapshot().frequent_pairs[:TOP_K],
        service.transactions,
    )


STREAMS = {
    "zipf": (zipf_events, StaticWindow(0.002)),
    "msr_hm": (msr_events, None),  # None: fresh dynamic window per lane
}


@pytest.mark.parametrize("stream", sorted(STREAMS))
@pytest.mark.parametrize("shards", [1, 4])
def test_three_lanes_agree(stream, shards):
    make_events, window = STREAMS[stream]
    events = make_events()
    reference = None
    for lane in ("per_event", "object", "columnar"):
        lane_window = window if window is not None \
            else DynamicLatencyWindow()
        result = run_lane(events, lane, shards=shards, window=lane_window)
        if reference is None:
            reference = result
            continue
        ref_stats, ref_pairs, ref_txns = reference
        stats, pairs, txns = result
        assert stats == ref_stats, f"{stream}/{shards}: {lane} stats differ"
        assert pairs == ref_pairs, f"{stream}/{shards}: {lane} pairs differ"
        assert txns == ref_txns


def test_thread_parallel_columnar_matches_object_path():
    events = zipf_events(seed=23, count=6000)
    object_result = run_lane(events, "object", shards=4,
                             window=StaticWindow(0.002),
                             parallel_shards=True)
    columnar_result = run_lane(events, "columnar", shards=4,
                               window=StaticWindow(0.002),
                               parallel_shards=True)
    assert columnar_result == object_result
