"""Tests for rank/weight agreement measures."""

import pytest

from repro.analysis.compare import rank_agreement

from conftest import pair


def truth():
    return {pair(1, 2): 50, pair(3, 4): 30, pair(5, 6): 10, pair(7, 8): 2}


class TestRankAgreement:
    def test_perfect_agreement(self):
        report = rank_agreement(truth(), dict(truth()), top_k=4)
        assert report.kendall_tau == pytest.approx(1.0)
        assert report.top_k_overlap == 1.0
        assert report.weighted_jaccard == pytest.approx(1.0)
        assert report.common_pairs == 4

    def test_undercounting_lowers_weighted_jaccard_only(self):
        """Synopsis tallies half the truth but in the same order."""
        synopsis = {key: count // 2 for key, count in truth().items()}
        report = rank_agreement(truth(), synopsis, top_k=4)
        assert report.kendall_tau == pytest.approx(1.0)
        assert report.top_k_overlap == 1.0
        assert report.weighted_jaccard == pytest.approx(0.489, abs=0.02)

    def test_inverted_ranks(self):
        synopsis = {pair(1, 2): 1, pair(3, 4): 2, pair(5, 6): 3, pair(7, 8): 4}
        report = rank_agreement(truth(), synopsis, top_k=4)
        assert report.kendall_tau == pytest.approx(-1.0)

    def test_top_k_overlap_partial(self):
        synopsis = {pair(1, 2): 50, pair(100, 200): 40}
        report = rank_agreement(truth(), synopsis, top_k=2)
        assert report.top_k_overlap == pytest.approx(0.5)

    def test_missing_pairs_shrink_common_set(self):
        synopsis = {pair(1, 2): 50}
        report = rank_agreement(truth(), synopsis, top_k=4)
        assert report.common_pairs == 1
        assert report.kendall_tau == 1.0  # degenerate: defined as agreement

    def test_empty_synopsis(self):
        report = rank_agreement(truth(), {}, top_k=4)
        assert report.top_k_overlap == 0.0
        assert report.weighted_jaccard == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_agreement(truth(), {}, top_k=0)

    def test_end_to_end_against_analyzer(self, simple_transactions):
        from repro.core.analyzer import OnlineAnalyzer
        from repro.core.config import AnalyzerConfig
        from repro.fim.pairs import exact_pair_counts

        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=64, correlation_capacity=64
        ))
        analyzer.process_stream(simple_transactions)
        exact = exact_pair_counts(simple_transactions)
        report = rank_agreement(exact, analyzer.pair_frequencies(), top_k=5)
        # Unbounded tables track exactly.
        assert report.weighted_jaccard == pytest.approx(1.0)
        assert report.kendall_tau == pytest.approx(1.0)
