"""Tests for trace slicing/splicing (Fig. 10 composition)."""

import pytest

from repro.trace.record import OpType, TraceRecord
from repro.workloads.composite import drift_workload, slice_requests, splice


def make_trace(count, base_ts=0.0, start_base=0):
    return [
        TraceRecord(base_ts + i * 0.01, 0, OpType.READ, start_base + i, 1)
        for i in range(count)
    ]


class TestSliceRequests:
    def test_rebases_to_zero(self):
        trace = make_trace(10, base_ts=100.0)
        window = slice_requests(trace, 2, 3)
        assert window[0].timestamp == 0.0
        assert len(window) == 3
        assert window[0].start == 2

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            slice_requests(make_trace(5), 3, 4)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            slice_requests(make_trace(5), -1, 2)
        with pytest.raises(ValueError):
            slice_requests(make_trace(5), 0, 0)


class TestSplice:
    def test_monotone_timestamps(self):
        flat, segments = splice([
            ("a", make_trace(5)),
            ("b", make_trace(5, base_ts=42.0)),
        ])
        times = [record.timestamp for record in flat]
        assert times == sorted(times)
        assert len(flat) == 10
        assert [segment.label for segment in segments] == ["a", "b"]

    def test_gap_between_segments(self):
        flat, _segments = splice(
            [("a", make_trace(2)), ("b", make_trace(2))], gap=0.5
        )
        assert flat[2].timestamp - flat[1].timestamp == pytest.approx(0.5)

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            splice([("a", [])])

    def test_segments_preserve_block_numbers(self):
        flat, segments = splice([("a", make_trace(3, start_base=100))])
        assert [record.start for record in flat] == [100, 101, 102]


class TestDriftWorkload:
    def test_paper_composition(self):
        """A(first N) -> B(first N) -> A(second N), per Fig. 10."""
        trace_a = make_trace(20, start_base=0)
        trace_b = make_trace(10, start_base=1000)
        flat, segments = drift_workload(trace_a, trace_b, 10,
                                        labels=("wdev", "hm"))
        assert [segment.label for segment in segments] == [
            "wdev-1", "hm-1", "wdev-2"
        ]
        assert len(flat) == 30
        # Middle segment carries B's block numbers.
        middle = segments[1].records
        assert all(record.start >= 1000 for record in middle)
        # Third segment is A's *second* slice.
        assert segments[2].records[0].start == 10

    def test_insufficient_source_rejected(self):
        with pytest.raises(ValueError):
            drift_workload(make_trace(15), make_trace(10), 10)
