"""Tests for the correlation table and its extent index."""

from repro.core.correlation_table import CorrelationTable
from repro.core.two_tier import TIER1, TIER2

from conftest import ext, pair


class TestBasicOperations:
    def test_access_and_frequent(self):
        table = CorrelationTable(8)
        p = pair(10, 20)
        table.access(p)
        table.access(p)
        table.access(p)
        assert table.tally(p) == 3
        assert table.tier_of(p) == TIER2
        assert table.frequent(min_tally=3) == [(p, 3)]

    def test_frequent_filters_by_support(self):
        table = CorrelationTable(8)
        strong, weak = pair(1, 2), pair(3, 4)
        for _ in range(5):
            table.access(strong)
        table.access(weak)
        assert table.frequent(min_tally=2) == [(strong, 5)]
        assert dict(table.frequent(min_tally=1)) == {strong: 5, weak: 1}

    def test_frequencies_snapshot(self):
        table = CorrelationTable(8)
        table.access(pair(1, 2))
        table.access(pair(1, 2))
        table.access(pair(5, 9))
        assert table.frequencies() == {pair(1, 2): 2, pair(5, 9): 1}

    def test_remove(self):
        table = CorrelationTable(4)
        p = pair(1, 2)
        table.access(p)
        assert table.remove(p) == 1
        assert table.remove(p) is None
        assert table.pairs_involving(ext(1)) == []


class TestExtentIndex:
    def test_pairs_involving(self):
        table = CorrelationTable(8)
        p1, p2, p3 = pair(1, 2), pair(1, 3), pair(4, 5)
        for p in (p1, p2, p3):
            table.access(p)
        assert table.pairs_involving(ext(1)) == sorted([p1, p2])
        assert table.pairs_involving(ext(4)) == [p3]
        assert table.pairs_involving(ext(99)) == []

    def test_index_tracks_evictions(self):
        table = CorrelationTable(1, 1)
        table.access(pair(1, 2))
        table.access(pair(3, 4))  # evicts (1,2) from T1 (capacity 1)
        assert table.pairs_involving(ext(1)) == []
        assert table.check_index()

    def test_index_survives_promotion(self):
        table = CorrelationTable(4)
        p = pair(1, 2)
        table.access(p)
        table.access(p)  # promoted to T2
        assert table.pairs_involving(ext(1)) == [p]
        assert table.check_index()

    def test_check_index_on_busy_table(self):
        table = CorrelationTable(3, 3)
        for i in range(20):
            table.access(pair(i % 7, 100 + (i % 5)))
        assert table.check_index()


class TestDemotion:
    def test_demote_involving_marks_for_eviction(self):
        """The Section III-D2 coupling: an item-table eviction demotes the
        evicted extent's pairs, making them the next LRU victims."""
        table = CorrelationTable(3, promote_threshold=10)
        victim_pair = pair(1, 2)
        other = pair(5, 6)
        table.access(victim_pair)
        table.access(other)
        demoted = table.demote_involving(ext(1))
        assert demoted == 1
        # Next insert into a full T1 must evict the demoted pair first.
        table.access(pair(7, 8))
        table.access(pair(9, 10))  # T1 capacity 3: evicts victim_pair
        assert victim_pair not in table
        assert other in table

    def test_demote_involving_multiple_pairs(self):
        table = CorrelationTable(8)
        shared = ext(1)
        p1, p2 = pair(1, 2), pair(1, 3)
        table.access(p1)
        table.access(p2)
        assert table.demote_involving(shared) == 2
        assert table.stats.demotions == 2

    def test_demote_involving_unknown_extent(self):
        table = CorrelationTable(4)
        table.access(pair(1, 2))
        assert table.demote_involving(ext(42)) == 0

    def test_demotion_does_not_change_tally(self):
        table = CorrelationTable(4)
        p = pair(1, 2)
        table.access(p)
        table.access(p)
        table.demote_involving(ext(1))
        assert table.tally(p) == 2
