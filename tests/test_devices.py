"""Tests for the simulated storage devices."""

import pytest

from repro.blkdev.device import (
    HddDevice,
    SsdDevice,
    measure_mean_read_latency,
)
from repro.trace.record import OpType, TraceRecord


def read(start=0, length=8, ts=0.0):
    return TraceRecord(ts, 0, OpType.READ, start, length)


def write(start=0, length=8, ts=0.0):
    return TraceRecord(ts, 0, OpType.WRITE, start, length)


class TestSsd:
    def test_read_latency_in_nvme_range(self):
        """A 4 KB SSD read should land in the tens of microseconds --
        the range Table II measures (31.8 to 63.8 us)."""
        device = SsdDevice(seed=1)
        latencies = [device.submit(read()) for _ in range(500)]
        mean = sum(latencies) / len(latencies)
        assert 20e-6 < mean < 120e-6

    def test_larger_transfers_take_longer(self):
        device = SsdDevice(jitter=0.0, seed=1)
        small = device.submit(read(length=8))
        large = device.submit(read(length=8192))
        assert large > small

    def test_writes_acknowledge_faster_than_reads(self):
        """Device-level write caching: the paper measures only reads."""
        device = SsdDevice(jitter=0.0, gc_probability=0.0, seed=1)
        assert device.submit(write()) < device.submit(read())

    def test_gc_pauses_create_write_tail(self):
        device = SsdDevice(gc_probability=0.5, gc_pause=5e-3, seed=3)
        latencies = [device.submit(write()) for _ in range(200)]
        assert max(latencies) > 50 * min(latencies)

    def test_stats_accumulate(self):
        device = SsdDevice(seed=1)
        device.submit(read())
        device.submit(write())
        assert device.stats.reads == 1
        assert device.stats.writes == 1
        assert device.stats.requests == 2
        assert device.stats.mean_read_latency > 0
        device.reset_stats()
        assert device.stats.requests == 0

    def test_deterministic_with_seed(self):
        a = [SsdDevice(seed=9).submit(read()) for _ in range(1)]
        b = [SsdDevice(seed=9).submit(read()) for _ in range(1)]
        assert a == b


class TestHdd:
    def test_mean_latency_in_millisecond_range(self):
        """Scattered reads on the HDD model should cost milliseconds --
        the 3-19 ms regime of the paper's trace devices."""
        device = HddDevice(seed=2)
        import random
        rng = random.Random(5)
        latencies = [
            device.submit(read(start=rng.randrange(2 ** 30)))
            for _ in range(300)
        ]
        mean = sum(latencies) / len(latencies)
        assert 1e-3 < mean < 25e-3

    def test_seek_distance_matters(self):
        device = HddDevice(seed=2)
        device.submit(read(start=0))
        near = device._service_time(read(start=8))
        device._head_position = 0
        far = device._service_time(read(start=2 ** 31))
        # Rotational randomness can blur a single sample; compare many.
        device_near = HddDevice(seed=7)
        device_far = HddDevice(seed=7)
        near_total = far_total = 0.0
        for _ in range(200):
            device_near._head_position = 0
            near_total += device_near._service_time(read(start=64))
            device_far._head_position = 0
            far_total += device_far._service_time(read(start=2 ** 31))
        assert far_total > near_total

    def test_hdd_slower_than_ssd(self):
        """The relative gap that produces Table II's replay speedups."""
        import random
        rng = random.Random(11)
        requests = [read(start=rng.randrange(2 ** 30)) for _ in range(200)]
        hdd, ssd = HddDevice(seed=1), SsdDevice(seed=1)
        hdd_mean = sum(hdd.submit(r) for r in requests) / len(requests)
        ssd_mean = sum(ssd.submit(r) for r in requests) / len(requests)
        assert hdd_mean / ssd_mean > 20


class TestMeasurement:
    def test_measure_mean_read_latency(self):
        device = SsdDevice(seed=4)
        records = [read(start=i * 100) for i in range(50)] + [write()]
        mean = measure_mean_read_latency(device, records, repeats=3)
        assert 10e-6 < mean < 200e-6
        assert device.stats.reads == 150

    def test_measure_requires_reads(self):
        with pytest.raises(ValueError):
            measure_mean_read_latency(SsdDevice(), [write()], repeats=1)
