"""Tests for correlation snapshot diffing."""

import pytest

from repro.analysis.diff import diff_snapshots, drift_series

from conftest import pair


def before():
    return {pair(1, 2): 10, pair(3, 4): 5, pair(5, 6): 3}


class TestDiffSnapshots:
    def test_appeared_and_vanished(self):
        after = {pair(1, 2): 10, pair(7, 8): 4}
        diff = diff_snapshots(before(), after)
        assert diff.appeared == ((pair(7, 8), 4),)
        vanished_pairs = {p for p, _t in diff.vanished}
        assert vanished_pairs == {pair(3, 4), pair(5, 6)}
        assert diff.churn == 3

    def test_strengthened_and_weakened(self):
        after = {pair(1, 2): 20, pair(3, 4): 2, pair(5, 6): 3}
        diff = diff_snapshots(before(), after)
        assert diff.strengthened == ((pair(1, 2), 10, 20),)
        assert diff.weakened == ((pair(3, 4), 5, 2),)
        assert diff.unchanged == 1

    def test_min_change_tolerance(self):
        after = {pair(1, 2): 12, pair(3, 4): 5, pair(5, 6): 3}
        loose = diff_snapshots(before(), after, min_change=5)
        assert loose.strengthened == ()
        assert loose.unchanged == 3
        tight = diff_snapshots(before(), after, min_change=1)
        assert tight.strengthened == ((pair(1, 2), 10, 12),)

    def test_identical_snapshots(self):
        diff = diff_snapshots(before(), dict(before()))
        assert diff.churn == 0
        assert diff.stability == 1.0
        assert diff.unchanged == 3

    def test_disjoint_snapshots(self):
        after = {pair(100, 200): 1}
        diff = diff_snapshots(before(), after)
        assert diff.stability == 0.0

    def test_empty_snapshots(self):
        diff = diff_snapshots({}, {})
        assert diff.stability == 1.0
        assert diff.churn == 0

    def test_ordering_strongest_first(self):
        after = {pair(1, 2): 1, pair(9, 10): 50, pair(11, 12): 5}
        diff = diff_snapshots({}, after)
        tallies = [t for _p, t in diff.appeared]
        assert tallies == sorted(tallies, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            diff_snapshots({}, {}, min_change=0)


class TestDriftSeries:
    def test_consecutive_diffs(self):
        snapshots = [
            {pair(1, 2): 5},
            {pair(1, 2): 10},
            {pair(3, 4): 2},
        ]
        series = drift_series(snapshots)
        assert len(series) == 2
        assert series[0].strengthened == ((pair(1, 2), 5, 10),)
        assert series[1].churn == 2

    def test_tracks_concept_drift_experiment(self):
        """The Fig. 10 story expressed as snapshot stability: the
        wdev->hm boundary is the point of lowest stability."""
        from repro.core.analyzer import OnlineAnalyzer
        from repro.core.config import AnalyzerConfig
        from conftest import ext

        def concept(base, rounds):
            return [[ext(base + (i % 4) * 10), ext(base + (i % 4) * 10 + 5)]
                    for i in range(rounds)]

        analyzer = OnlineAnalyzer(AnalyzerConfig(item_capacity=8,
                                                 correlation_capacity=8))
        snapshots = []
        for segment in (concept(0, 40), concept(0, 40),
                        concept(100000, 40)):
            analyzer.process_stream(segment)
            snapshots.append(dict(analyzer.pair_frequencies()))
        series = drift_series(snapshots, min_change=2)
        assert series[0].stability > series[1].stability
