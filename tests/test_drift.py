"""Tests for concept-drift adaptation metrics (Fig. 10)."""

import pytest

from repro.analysis.drift import (
    concept_affinity,
    run_drift_experiment,
)
from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig

from conftest import ext, pair


def concept_transactions(base, count):
    """A concept: `count` repetitions of 4 hot pairs rooted at `base`."""
    transactions = []
    for i in range(count):
        which = i % 4
        transactions.append([ext(base + which * 10), ext(base + which * 10 + 5)])
    return transactions


def concept_pairs(base):
    return {
        pair(base + which * 10, base + which * 10 + 5) for which in range(4)
    }


class TestConceptAffinity:
    def test_full_membership(self):
        concepts = {"a": concept_pairs(0), "b": concept_pairs(1000)}
        affinity = concept_affinity(concept_pairs(0), concepts)
        assert affinity == {"a": 1.0, "b": 0.0}

    def test_partial_membership(self):
        concepts = {"a": concept_pairs(0)}
        resident = list(concept_pairs(0))[:2] + [pair(77, 88)]
        affinity = concept_affinity(resident, concepts)
        assert affinity["a"] == pytest.approx(2 / 3)

    def test_empty_resident_set(self):
        affinity = concept_affinity([], {"a": concept_pairs(0)})
        assert affinity == {"a": 0.0}


class TestDriftExperiment:
    def test_concepts_displace_each_other(self):
        """Replays A -> B -> A through a synopsis too small to hold both
        concepts; affinity must track the active concept (Fig. 10)."""
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=4, correlation_capacity=4)
        )
        concepts = {"A": concept_pairs(0), "B": concept_pairs(100000)}
        snapshots = run_drift_experiment(
            analyzer,
            [
                ("A-1", concept_transactions(0, 40)),
                ("B-1", concept_transactions(100000, 40)),
                ("A-2", concept_transactions(0, 40)),
            ],
            concepts,
        )
        assert [snap.label for snap in snapshots] == ["A-1", "B-1", "A-2"]
        assert snapshots[0].dominant_concept() == "A"
        assert snapshots[1].dominant_concept() == "B"
        assert snapshots[2].dominant_concept() == "A"
        # After B's segment, A's pattern must have substantially faded.
        assert snapshots[1].affinity["A"] < 0.5

    def test_snapshot_counts_resident_pairs(self):
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=64, correlation_capacity=64)
        )
        snapshots = run_drift_experiment(
            analyzer,
            [("only", concept_transactions(0, 10))],
            {"only": concept_pairs(0)},
        )
        assert snapshots[0].resident_pairs == 4

    def test_dominant_concept_requires_affinities(self):
        from repro.analysis.drift import DriftSnapshot
        with pytest.raises(ValueError):
            DriftSnapshot("x", 0, {}).dominant_concept()
