"""Durable serving: acked means replayable.

The chaos suite behind the write-ahead journal.  Each scenario breaks
the serving stack the way reality does -- ``SIGKILL`` mid-stream, a torn
final journal record, a corrupt checkpoint next to an intact journal --
and demands that recovery reproduce *exactly* the state an uninterrupted
run would have reached (single-shard engines are deterministic, so the
bar is identity, not similarity).  Alongside the chaos scenarios:
producer-sequence deduplication (exactly-once application under
at-least-once retries), journal-append failure semantics, dead-letter
dumps on graceful shutdown, and the client's request deadline + circuit
breaker.
"""

import json
import multiprocessing
import os
import signal
import socket
import threading
import time

import pytest

from repro.core.config import AnalyzerConfig
from repro.monitor.events import BlockIOEvent
from repro.resilience.faults import flip_bits, truncate_tail
from repro.resilience.service import ResilientCharacterizationService
from repro.resilience.wal import (
    FsyncPolicy,
    WalMeta,
    WriteAheadLog,
    read_wal_meta,
    write_wal_meta,
)
from repro.server import protocol
from repro.server.circuit import (
    CircuitBreaker,
    CircuitOpenError,
    CircuitState,
)
from repro.server.client import (
    CharacterizationClient,
    DeadlineExceededError,
    ServerError,
    ServerOverloadedError,
)
from repro.server.recovery import (
    RecoveryReport,
    WalRecovery,
    discover_tenant_checkpoints,
    tenant_checkpoint_path,
)
from repro.server.server import CharacterizationServer, ServerThread
from repro.server.supervisor import WorkerConfig, run_server_worker
from repro.server.tenants import DEFAULT_TENANT, TenantRouter
from repro.telemetry.metrics import MetricsRegistry
from repro.trace.errors import RowError
from repro.trace.record import OpType

SUPPORT = 2
CAPACITY = 512


def event(ts, start, length=8, op=OpType.READ):
    return BlockIOEvent(ts, 1, op, start, length)


def workload(rounds=120, base=0.0):
    """Deterministic hot-pair traffic: ``rounds`` two-request
    transactions cycling over three extent pairs."""
    pairs = [(100, 9000), (200, 7000), (300, 5000)]
    out, clock = [], base
    for i in range(rounds):
        a, b = pairs[i % len(pairs)]
        out.append(event(clock, a, 8))
        out.append(event(clock + 1e-5, b, 16))
        clock += 0.05
    return out


def chunks(events, size=50):
    return [events[i:i + size] for i in range(0, len(events), size)]


def make_engine():
    return ResilientCharacterizationService(
        config=AnalyzerConfig(item_capacity=CAPACITY,
                              correlation_capacity=CAPACITY),
        min_support=SUPPORT,
        snapshot_interval=1000,
    )


def reference_pairs(batches):
    """The state an uninterrupted run reaches: same engine, same
    batched ingest lane, no journal, no crash."""
    service = make_engine()
    for batch in batches:
        service.submit_many(batch)
    service.flush()
    return service.analyzer.frequent_pairs(SUPPORT)


def recover_pairs(wal_dir, checkpoint_path=None):
    """Recover through the real path: checkpoint restore + WAL replay
    through ``submit_many``.  Returns (frequent_pairs, report)."""
    router = TenantRouter(make_engine)
    wal = WriteAheadLog(wal_dir, readonly=True)
    recovery = WalRecovery(router, wal,
                           str(checkpoint_path) if checkpoint_path else None)
    report = recovery.recover()
    service = router.get(DEFAULT_TENANT)
    service.flush()
    return service.analyzer.frequent_pairs(SUPPORT), report


def wait_for_socket(path, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(str(path))
                return
            except OSError:
                pass
            finally:
                probe.close()
        time.sleep(0.02)
    raise TimeoutError(f"server socket {path} never came up")


def worker_config(tmp_path, **overrides):
    defaults = dict(
        unix_path=str(tmp_path / "server.sock"),
        checkpoint_path=str(tmp_path / "checkpoint.bin"),
        wal_dir=str(tmp_path / "wal"),
        fsync="never",
        capacity=CAPACITY,
        support=SUPPORT,
        shards=1,
    )
    defaults.update(overrides)
    return WorkerConfig(**defaults)


# ---------------------------------------------------------------------------
# Chaos scenario 1: SIGKILL mid-stream
# ---------------------------------------------------------------------------

class TestKillMidStream:
    def test_sigkill_recovers_every_acked_event(self, tmp_path):
        """Kill -9 a live worker between acked frames; recovery must
        reproduce the uninterrupted run bit-for-bit (shards=1)."""
        config = worker_config(tmp_path)
        proc = multiprocessing.Process(
            target=run_server_worker, args=(config,), daemon=True
        )
        proc.start()
        try:
            wait_for_socket(config.unix_path)
            batches = chunks(workload(rounds=150))
            acked = []
            with CharacterizationClient(config.unix_path) as client:
                for batch in batches:
                    reply = client.send_events(batch)
                    assert reply["accepted"] == len(batch)
                    acked.append(batch)
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=15.0)
            assert proc.exitcode == -signal.SIGKILL
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=15.0)

        recovered, report = recover_pairs(config.wal_dir,
                                          config.checkpoint_path)
        assert report.replayed_records == len(acked)
        assert report.replayed_events == sum(len(b) for b in acked)
        assert report.corrupt_records == 0
        expected = reference_pairs(acked)
        assert recovered == expected
        assert recovered  # the workload produced real correlations

    def test_killed_worker_leaves_no_checkpoint_requirement(self, tmp_path):
        """No checkpoint ever happened: recovery is pure journal replay."""
        config = worker_config(tmp_path)
        proc = multiprocessing.Process(
            target=run_server_worker, args=(config,), daemon=True
        )
        proc.start()
        try:
            wait_for_socket(config.unix_path)
            with CharacterizationClient(config.unix_path) as client:
                client.send_events(workload(rounds=20))
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=15.0)
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=15.0)
        assert not os.path.exists(config.checkpoint_path)
        _, report = recover_pairs(config.wal_dir, config.checkpoint_path)
        assert report.checkpoint_seq == 0
        assert report.replayed_records == 1


# ---------------------------------------------------------------------------
# Chaos scenario 2: torn final record
# ---------------------------------------------------------------------------

class TestTornFinalRecord:
    def test_torn_tail_loses_exactly_the_torn_frame(self, tmp_path):
        batches = chunks(workload(rounds=120), size=40)
        wal_dir = tmp_path / "wal"
        with WriteAheadLog(wal_dir, fsync=FsyncPolicy.NEVER) as wal:
            for batch in batches:
                wal.append(batch)
            last_segment = wal.active_segment
        truncate_tail(last_segment, 9)  # crash mid-append of the last frame

        recovered, report = recover_pairs(wal_dir)
        assert report.torn_tail
        assert report.replayed_records == len(batches) - 1
        assert report.corrupt_records == 0
        assert recovered == reference_pairs(batches[:-1])

    def test_torn_tail_then_resume_appending(self, tmp_path):
        """After recovery the journal accepts new frames and replays the
        union -- the torn frame stays gone, nothing else is disturbed."""
        wal_dir = tmp_path / "wal"
        batches = chunks(workload(rounds=60), size=30)
        with WriteAheadLog(wal_dir, fsync=FsyncPolicy.NEVER) as wal:
            for batch in batches:
                wal.append(batch)
            last_segment = wal.active_segment
        truncate_tail(last_segment, 3)
        extra = workload(rounds=10, base=1000.0)
        with WriteAheadLog(wal_dir, fsync=FsyncPolicy.NEVER) as wal:
            wal.append(extra)
        recovered, report = recover_pairs(wal_dir)
        assert report.replayed_records == len(batches)  # -1 torn, +1 new
        assert recovered == reference_pairs(batches[:-1] + [extra])


# ---------------------------------------------------------------------------
# Chaos scenario 3: corrupt checkpoint, intact journal
# ---------------------------------------------------------------------------

class TestCorruptCheckpointIntactWal:
    def test_full_history_journal_rescues_corrupt_checkpoint(self, tmp_path):
        """With ``wal_truncate=False`` the journal retains checkpointed
        history, so a bit-flipped checkpoint costs nothing: the tenant is
        replayed from record one and ends identical."""
        checkpoint = tmp_path / "checkpoint.bin"
        wal_dir = tmp_path / "wal"
        batches = chunks(workload(rounds=150))
        mid = len(batches) // 2

        server = CharacterizationServer(
            make_engine(), unix_path=tmp_path / "server.sock",
            checkpoint_path=checkpoint, wal_dir=wal_dir, fsync="never",
            wal_truncate=False, registry=MetricsRegistry(),
        )
        with ServerThread(server) as thread:
            with CharacterizationClient(thread.address) as client:
                for batch in batches[:mid]:
                    client.send_events(batch)
                reply = client.checkpoint()
                assert reply["wal_cut"] > 0
                assert reply["segments_removed"] == 0  # retention mode
                for batch in batches[mid:]:
                    client.send_events(batch)
        assert checkpoint.exists()

        checkpoint.write_bytes(flip_bits(checkpoint.read_bytes(),
                                         flips=4, seed=11))

        recovered, report = recover_pairs(wal_dir, checkpoint)
        assert not report.checkpoint_loaded
        assert DEFAULT_TENANT in report.failed_tenants
        assert report.checkpoint_seq > 0       # the cut said "covered"...
        assert report.skipped_records == 0     # ...but nothing was skipped
        assert report.replayed_records == len(batches)
        assert recovered == reference_pairs(batches)

    def test_intact_checkpoint_skips_covered_records(self, tmp_path):
        """Control for the scenario above: with a healthy checkpoint
        covering a mid-journal cut, covered records are skipped, the
        tail is replayed, and the result is still identical."""
        checkpoint = tmp_path / "checkpoint.bin"
        wal_dir = tmp_path / "wal"
        batches = chunks(workload(rounds=150))
        mid = len(batches) // 2

        service = make_engine()
        with WriteAheadLog(wal_dir, fsync=FsyncPolicy.NEVER) as wal:
            for batch in batches[:mid]:
                wal.append(batch)
                service.submit_many(batch)
            service.checkpoint_to(str(checkpoint))
            write_wal_meta(wal_dir, WalMeta(checkpoint_seq=wal.last_seq))
            for batch in batches[mid:]:
                wal.append(batch)

        recovered, report = recover_pairs(wal_dir, checkpoint)
        assert report.checkpoint_loaded
        assert report.skipped_records == mid
        assert report.replayed_records == len(batches) - mid
        assert recovered == reference_pairs(batches)

    def test_graceful_shutdown_cut_covers_whole_journal(self, tmp_path):
        """A clean shutdown checkpoints every tenant at the final cut,
        so the next start replays nothing yet restores everything."""
        checkpoint = tmp_path / "checkpoint.bin"
        wal_dir = tmp_path / "wal"
        batches = chunks(workload(rounds=150))

        server = CharacterizationServer(
            make_engine(), unix_path=tmp_path / "server.sock",
            checkpoint_path=checkpoint, wal_dir=wal_dir, fsync="never",
            wal_truncate=False, registry=MetricsRegistry(),
        )
        with ServerThread(server) as thread:
            with CharacterizationClient(thread.address) as client:
                for batch in batches:
                    client.send_events(batch)

        recovered, report = recover_pairs(wal_dir, checkpoint)
        assert report.checkpoint_loaded
        assert report.skipped_records == len(batches)
        assert report.replayed_records == 0
        assert recovered == reference_pairs(batches)


# ---------------------------------------------------------------------------
# Producer dedup: exactly-once application under at-least-once delivery
# ---------------------------------------------------------------------------

class TestProducerDedup:
    def make_server(self, tmp_path):
        return CharacterizationServer(
            make_engine(), unix_path=tmp_path / "server.sock",
            checkpoint_path=tmp_path / "checkpoint.bin",
            wal_dir=tmp_path / "wal", fsync="never",
            registry=MetricsRegistry(),
        )

    def test_replayed_frame_acked_but_not_reapplied(self, tmp_path):
        server = self.make_server(tmp_path)
        with ServerThread(server) as thread:
            with CharacterizationClient(thread.address) as client:
                frame = client._stamp_producer(
                    protocol.batch_frame(workload(rounds=10))
                )
                first = client.request(dict(frame))
                assert first["accepted"] == 20
                # The ack was lost; the client retries the same frame.
                second = client.request(dict(frame))
                assert second["accepted"] == 0
                assert second.get("duplicate") is True
                stats = client.stats()
                assert stats["wal"]["duplicate_frames"] == 1
                assert stats["wal"]["last_seq"] == 1  # journalled once

    def test_dedup_state_survives_recovery(self, tmp_path):
        """The producer high-mark is rebuilt from the journal, so a
        post-crash retry of a pre-crash frame is still refused."""
        frame = None
        server = self.make_server(tmp_path)
        with ServerThread(server) as thread:
            with CharacterizationClient(thread.address) as client:
                frame = client._stamp_producer(
                    protocol.batch_frame(workload(rounds=10))
                )
                client.request(dict(frame))
        # ServerThread.stop is graceful: checkpoint + cut committed.
        restarted = self.make_server(tmp_path)
        with ServerThread(restarted) as thread:
            with CharacterizationClient(thread.address) as client:
                reply = client.request(dict(frame))
                assert reply["accepted"] == 0
                assert reply.get("duplicate") is True

    def test_wal_append_failure_refuses_the_frame(self, tmp_path):
        """A journal that cannot append must not acknowledge: the client
        sees UNAVAILABLE and nothing reaches the engine."""
        server = self.make_server(tmp_path)
        with ServerThread(server) as thread:
            def broken_append(*args, **kwargs):
                raise OSError("disk full")
            server.wal.append = broken_append
            client = CharacterizationClient(thread.address)
            with pytest.raises(ServerError) as excinfo:
                client.send_events(workload(rounds=5))
            assert excinfo.value.code == protocol.ERR_UNAVAILABLE
            client.close()
            assert server.service.transactions == 0
            assert server._producers == {}


# ---------------------------------------------------------------------------
# Dead letters on graceful shutdown
# ---------------------------------------------------------------------------

class TestDeadLetterDump:
    def test_quarantined_frames_dumped_on_shutdown(self, tmp_path):
        server = CharacterizationServer(
            make_engine(), unix_path=tmp_path / "server.sock",
            wal_dir=tmp_path / "wal", fsync="never",
            registry=MetricsRegistry(),
        )
        with ServerThread(server):
            server.dead_letters.offer(RowError(
                line_number=1, row='{"type": "BATCH"}',
                error="overloaded: 64 events rejected",
            ))
        dump = tmp_path / "wal" / "dead-letters.ndjson"
        assert dump.exists()
        rows = [json.loads(line) for line in
                dump.read_text().splitlines()]
        assert len(rows) == 1
        assert "overloaded" in rows[0]["error"]
        assert json.loads(rows[0]["row"])["type"] == "BATCH"

    def test_no_dump_file_when_nothing_quarantined(self, tmp_path):
        server = CharacterizationServer(
            make_engine(), unix_path=tmp_path / "server.sock",
            wal_dir=tmp_path / "wal", fsync="never",
            registry=MetricsRegistry(),
        )
        with ServerThread(server):
            pass
        assert not (tmp_path / "wal" / "dead-letters.ndjson").exists()


# ---------------------------------------------------------------------------
# Producer dedup map stays bounded
# ---------------------------------------------------------------------------

class TestProducerMapBound:
    def test_lru_eviction_caps_the_map(self, tmp_path):
        """Every short-lived client mints a fresh producer id; the dedup
        map must not grow with them forever."""
        server = CharacterizationServer(
            make_engine(), registry=MetricsRegistry(), max_producers=4,
        )
        for i in range(10):
            server._note_producer(f"p{i}", 1)
        assert len(server._producers) == 4
        assert list(server._producers) == ["p6", "p7", "p8", "p9"]
        assert server.expired_producers == 6
        # Touching a survivor refreshes it past the next eviction.
        server._note_producer("p6", 2)
        server._note_producer("p10", 1)
        assert "p6" in server._producers
        assert "p7" not in server._producers

    def test_idle_producers_pruned_at_checkpoint_cut(self, tmp_path):
        """The cut's wal.meta.json carries only live producers, so the
        meta file cannot grow without bound either."""
        server = CharacterizationServer(
            make_engine(), checkpoint_path=tmp_path / "checkpoint.bin",
            wal_dir=tmp_path / "wal", fsync="never",
            registry=MetricsRegistry(), producer_ttl=10.0,
        )
        server.wal = WriteAheadLog(tmp_path / "wal",
                                   fsync=FsyncPolicy.NEVER)
        server._note_producer("live", 7)
        server._note_producer("idle", 3)
        server._producer_seen["idle"] -= 60.0
        server._commit_wal_cut()
        assert "idle" not in server._producers
        assert server.expired_producers == 1
        assert read_wal_meta(tmp_path / "wal").producers == {"live": 7}
        server.wal.close()

    def test_nonsense_bounds_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_producers"):
            CharacterizationServer(make_engine(),
                                   registry=MetricsRegistry(),
                                   max_producers=0)
        with pytest.raises(ValueError, match="producer_ttl"):
            CharacterizationServer(make_engine(),
                                   registry=MetricsRegistry(),
                                   producer_ttl=0.0)


# ---------------------------------------------------------------------------
# Tenant checkpoint discovery
# ---------------------------------------------------------------------------

class TestTenantCheckpointPaths:
    def test_default_tenant_uses_base_path(self, tmp_path):
        base = str(tmp_path / "checkpoint.bin")
        assert tenant_checkpoint_path(base, DEFAULT_TENANT) == base
        assert tenant_checkpoint_path(base, "acme") == base + ".acme"

    def test_discovery_finds_all_tenants(self, tmp_path):
        base = tmp_path / "checkpoint.bin"
        base.write_bytes(b"x")
        (tmp_path / "checkpoint.bin.acme").write_bytes(b"x")
        (tmp_path / "checkpoint.bin.globex").write_bytes(b"x")
        found = discover_tenant_checkpoints(str(base))
        assert set(found) == {DEFAULT_TENANT, "acme", "globex"}
        assert found["acme"].endswith(".acme")

    def test_discovery_of_nothing(self, tmp_path):
        assert discover_tenant_checkpoints(
            str(tmp_path / "checkpoint.bin")) == {}

    def test_report_checkpoint_loaded(self):
        assert not RecoveryReport().checkpoint_loaded
        assert RecoveryReport(restored_tenants=[""]).checkpoint_loaded
        assert not RecoveryReport(restored_tenants=[""],
                                  failed_tenants=["acme"]).checkpoint_loaded


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check()
        assert excinfo.value.retry_after > 0
        assert breaker.refused == 1

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        clock.now = 1.5
        assert breaker.state is CircuitState.HALF_OPEN
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # no second probe
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        assert breaker.opens == 2


# ---------------------------------------------------------------------------
# Client deadlines
# ---------------------------------------------------------------------------

class SilentServer:
    """Accepts connections and never replies -- a wedged server."""

    def __init__(self, path):
        self.path = str(path)
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.bind(self.path)
        self.sock.listen(4)
        self._accepted = []
        self._thread = threading.Thread(target=self._accept_loop,
                                        daemon=True)
        self._thread.start()

    def _accept_loop(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self._accepted.append(conn)  # hold it open, say nothing

    def close(self):
        self.sock.close()
        for conn in self._accepted:
            conn.close()


class TestClientDeadline:
    def test_deadline_bounds_a_wedged_request(self, tmp_path):
        silent = SilentServer(tmp_path / "wedged.sock")
        try:
            client = CharacterizationClient(
                silent.path, request_deadline=0.3, timeout=0.1,
            )
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                client.ping()
            elapsed = time.monotonic() - started
            assert elapsed < 5.0  # nowhere near timeout * retries
            client.close()
        finally:
            silent.close()

    def test_deadline_not_an_oserror(self):
        """The retry loop swallows OSErrors; a blown deadline must
        escape it."""
        assert not issubclass(DeadlineExceededError, OSError)
        assert issubclass(DeadlineExceededError, RuntimeError)

    def test_invalid_deadline_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="request_deadline"):
            CharacterizationClient(str(tmp_path / "x.sock"),
                                   request_deadline=0.0)

    def test_overloaded_retry_sleep_respects_deadline(self, tmp_path):
        """The backoff sleep after an OVERLOADED rejection is clamped to
        the remaining request deadline, exactly like the reconnect
        path's -- the client must not block past its deadline."""
        from repro.resilience.policy import BackoffPolicy
        sleeps = []
        clock = FakeClock()

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock.now += seconds

        client = CharacterizationClient(
            str(tmp_path / "unused.sock"), request_deadline=1.0,
            policy=BackoffPolicy(base=30.0, cap=30.0, retries=5),
            sleep=fake_sleep, clock=clock,
        )
        client._send_and_receive = lambda data, deadline=None: {
            "type": protocol.REPLY_ERROR,
            "code": protocol.ERR_OVERLOADED,
            "error": "ingest queue full",
        }
        with pytest.raises(ServerOverloadedError):
            client.request({"type": protocol.FRAME_PING})
        assert sleeps == [1.0]  # clamped to the deadline, not 30s

    def test_breaker_fails_fast_after_repeated_failures(self, tmp_path):
        from repro.resilience.policy import BackoffPolicy
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        client = CharacterizationClient(
            str(tmp_path / "nobody-home.sock"),
            timeout=0.1, policy=BackoffPolicy(base=0.001, retries=0),
            breaker=breaker,
        )
        for _ in range(2):
            with pytest.raises(OSError):
                client.ping()
        assert breaker.state is CircuitState.OPEN
        with pytest.raises(CircuitOpenError):
            client.ping()  # refused locally, no socket attempt
        client.close()
