"""End-to-end scenario tests exercising the whole stack together."""

import io

import pytest

from repro.analysis.accuracy import detection_metrics
from repro.analysis.compare import rank_agreement
from repro.blkdev.device import SsdDevice
from repro.cli.main import main
from repro.core.config import AnalyzerConfig
from repro.core.serialize import dumps_analyzer, loads_analyzer
from repro.fim.eclat import eclat
from repro.fim.pairs import exact_pair_counts, itemsets_to_pair_counts
from repro.pipeline import run_pipeline
from repro.trace.io import load_msr_csv, save_msr_csv
from repro.workloads.enterprise import generate_named
from repro.workloads.synthetic import (
    SyntheticKind,
    SyntheticSpec,
    generate_synthetic,
)


class TestFullEvaluationScenario:
    """The paper's complete evaluation methodology on one workload:
    generate -> persist -> replay+monitor (dual output) -> offline FIM
    ground truth -> online accuracy and fidelity."""

    @pytest.fixture(scope="class")
    def scenario(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("scenario")
        records, _truth = generate_named("rsrch", requests=6000, seed=17)
        trace_path = directory / "rsrch.csv"
        save_msr_csv(records, trace_path)
        loaded = load_msr_csv(trace_path)
        result = run_pipeline(loaded, device=SsdDevice(seed=19))
        return loaded, result

    def test_persisted_trace_replays_identically(self, scenario):
        loaded, result = scenario
        assert result.monitor_stats.events_seen == len(loaded)

    def test_offline_fim_agrees_with_exact_counts(self, scenario):
        _loaded, result = scenario
        transactions = result.offline_transactions()
        exact = {
            pair: count
            for pair, count in exact_pair_counts(transactions).items()
            if count >= 5
        }
        mined = itemsets_to_pair_counts(
            eclat(transactions, min_support=5, max_size=2)
        )
        assert mined == exact

    def test_online_accuracy_and_fidelity(self, scenario):
        _loaded, result = scenario
        truth = exact_pair_counts(result.offline_transactions())
        detected = [p for p, _t in result.frequent_pairs(min_support=1)]
        metrics = detection_metrics(truth, detected, min_support=5)
        assert metrics.weighted_recall > 0.9
        agreement = rank_agreement(
            truth, result.analyzer.pair_frequencies(), top_k=50
        )
        assert agreement.top_k_overlap > 0.9

    def test_synopsis_survives_serialization_mid_scenario(self, scenario):
        _loaded, result = scenario
        restored = loads_analyzer(dumps_analyzer(result.analyzer))
        assert restored.pair_frequencies() == (
            result.analyzer.pair_frequencies()
        )


class TestCliRoundtripScenario:
    """The operator's workflow entirely through the CLI."""

    def test_generate_stats_characterize_mine(self, tmp_path, capsys):
        trace = tmp_path / "workload.csv"
        assert main(["generate", "one-to-one", str(trace),
                     "--duration", "40", "--seed", "23"]) == 0
        assert main(["stats", str(trace)]) == 0
        ckpt = tmp_path / "synopsis.bin"
        assert main(["characterize", str(trace), "--support", "5",
                     "--save-synopsis", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "top correlations" in out
        assert ckpt.exists()
        assert main(["mine", str(trace), "--algorithm", "eclat",
                     "--support", "5"]) == 0
        mined_out = capsys.readouterr().out
        assert "frequent pairs" in mined_out

    def test_cli_and_api_agree(self, tmp_path, capsys):
        """The CLI's detected pairs equal the API's on the same trace."""
        spec = SyntheticSpec(SyntheticKind.ONE_TO_ONE, duration=40.0,
                             seed=23)
        records, truth = generate_synthetic(spec)
        trace = tmp_path / "t.csv"
        save_msr_csv(records, trace)

        main(["characterize", str(trace), "--support", "5", "--top", "50"])
        cli_out = capsys.readouterr().out

        loaded = load_msr_csv(trace)
        api_result = run_pipeline(loaded, record_offline=False)
        for pair, _tally in api_result.frequent_pairs(min_support=5)[:4]:
            assert str(pair) in cli_out
