"""Tests for the energy-efficiency optimization."""

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.optimize.energy import (
    CorrelationEnergyPlacement,
    DiskArrayEnergyModel,
    PowerModel,
    StripingEnergyPlacement,
    run_energy_experiment,
)

from conftest import ext, pair


class TestPowerModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(active_watts=-1)
        with pytest.raises(ValueError):
            PowerModel(idle_timeout=0)


class TestDiskArrayEnergyModel:
    def test_single_access_energy(self):
        power = PowerModel(active_watts=10, idle_watts=5, standby_watts=1,
                           spinup_joules=0, idle_timeout=100, access_time=1.0)
        model = DiskArrayEnergyModel(1, power)
        stats = model.simulate([(0.0, 0)], duration=1.0)
        assert stats.total_joules == pytest.approx(10.0)
        assert stats.accesses == 1

    def test_idle_energy_between_accesses(self):
        power = PowerModel(active_watts=10, idle_watts=5, standby_watts=1,
                           spinup_joules=0, idle_timeout=100, access_time=1.0)
        model = DiskArrayEnergyModel(1, power)
        stats = model.simulate([(0.0, 0), (3.0, 0)], duration=4.0)
        # 2 accesses (20 J) + 2 s idle between (10 J).
        assert stats.total_joules == pytest.approx(30.0)

    def test_spin_down_saves_energy_on_long_gaps(self):
        power = PowerModel(active_watts=10, idle_watts=5, standby_watts=1,
                           spinup_joules=2, idle_timeout=1.0, access_time=0.1)
        model = DiskArrayEnergyModel(1, power)
        stats = model.simulate([(0.0, 0), (11.1, 0)], duration=12.0)
        # Gap 11 s: 1 s idle (5 J) + 10 s standby (10 J) + spin-up (2 J).
        assert stats.spinups >= 1
        always_idle = 11.0 * power.idle_watts
        gap_energy = stats.total_joules - 2 * 0.1 * 10
        assert gap_energy < always_idle

    def test_disk_range_validated(self):
        model = DiskArrayEnergyModel(2)
        with pytest.raises(ValueError):
            model.simulate([(0.0, 5)])

    def test_needs_at_least_one_disk(self):
        with pytest.raises(ValueError):
            DiskArrayEnergyModel(0)


class TestPlacements:
    def _hot_pairs(self):
        return [pair(i * 100000, i * 100000 + 50000, 8, 8)
                for i in range(1, 5)]

    def _analyzer(self):
        analyzer = OnlineAnalyzer(AnalyzerConfig(item_capacity=64,
                                                 correlation_capacity=64))
        for p in self._hot_pairs():
            for _ in range(4):
                analyzer.process([p.first, p.second])
        return analyzer

    def test_clusters_land_on_one_disk(self):
        placement = CorrelationEnergyPlacement(self._analyzer(), disks=4)
        for p in self._hot_pairs():
            assert placement.disk_of(p.first) == placement.disk_of(p.second)
        assert placement.placed_extents == 8

    def test_clusters_balanced_round_robin(self):
        placement = CorrelationEnergyPlacement(self._analyzer(), disks=4)
        disks_used = {
            placement.disk_of(p.first) for p in self._hot_pairs()
        }
        assert len(disks_used) == 4

    def test_unknown_extent_striped(self):
        placement = CorrelationEnergyPlacement(self._analyzer(), disks=4,
                                               stripe_blocks=4096)
        stranger = ext(987654321, 8)
        striping = StripingEnergyPlacement(4, 4096)
        assert placement.disk_of(stranger) == striping.disk_of(stranger)


class TestEnergyExperiment:
    def test_correlation_placement_saves_energy(self):
        """Bursts touching one correlated pair wake one disk under
        clustering but two under striping that splits the pair."""
        hot = pair(0, 4096, 8, 8)  # members in different stripes
        analyzer = OnlineAnalyzer(AnalyzerConfig(item_capacity=32,
                                                 correlation_capacity=32))
        for _ in range(5):
            analyzer.process([hot.first, hot.second])

        timeline = []
        clock = 0.0
        for _ in range(40):
            timeline.append((clock, hot.first))
            timeline.append((clock + 0.01, hot.second))
            clock += 30.0  # long gaps: disks can sleep between bursts

        power = PowerModel(idle_timeout=2.0)
        disks = 4
        striped = run_energy_experiment(
            timeline, StripingEnergyPlacement(disks, 4096), disks,
            power=power, duration=clock,
        )
        clustered = run_energy_experiment(
            timeline, CorrelationEnergyPlacement(analyzer, disks), disks,
            power=power, duration=clock,
        )
        assert striped.accesses == clustered.accesses
        assert clustered.total_joules < striped.total_joules
        # Clustering keeps the burst on one disk.
        active_clustered = sum(
            1 for count in clustered.per_disk_accesses if count > 0
        )
        active_striped = sum(
            1 for count in striped.per_disk_accesses if count > 0
        )
        assert active_clustered < active_striped
