"""The sharded synopsis engine: equivalence, recall, and checkpoint v3.

The contract under test (ISSUE 2 acceptance criteria):

* ``ShardedAnalyzer(shards=1)`` is tally-identical to ``OnlineAnalyzer``
  (and to ``TypedOnlineAnalyzer`` on the typed path) on any stream;
* with 4 shards at equal total capacity it recalls >= 0.95 of the single
  analyzer's frequent pairs on a Zipf workload;
* checkpoint v3 round-trips exactly, and a single corrupt shard degrades
  (fresh shard + degraded health) instead of destroying the synopsis;
* the batched ingest paths (``Monitor.on_events``, ``submit_many``,
  ``process_batch``) match their per-event/per-transaction equivalents.
"""

import io
import random

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.extent import Extent
from repro.core.serialize import CheckpointCorruptError
from repro.core.typed import CorrelationKind, TypedOnlineAnalyzer
from repro.engine import (
    ShardedAnalyzer,
    SingleAnalyzerEngine,
    SynopsisEngine,
    dump_engine,
    load_engine,
    shard_config,
)
from repro.engine.checkpoint import (
    load_engine_checkpoint,
    save_engine_checkpoint,
)
from repro.monitor.events import BlockIOEvent
from repro.monitor.monitor import ClockPolicy, Monitor, TransactionRecorder
from repro.monitor.window import DynamicLatencyWindow, StaticWindow
from repro.resilience import ResilientCharacterizationService
from repro.service import CharacterizationService
from repro.trace.record import OpType
from repro.workloads.zipf import ZipfRanks


# ---------------------------------------------------------------------------
# Workload helpers
# ---------------------------------------------------------------------------

def random_transactions(seed, count=2000, population=400):
    rng = random.Random(seed)
    return [
        [Extent(rng.randrange(1, population) * 8, rng.choice([4, 8]))
         for _ in range(rng.randrange(1, 8))]
        for _ in range(count)
    ]


def zipf_transactions(seed=7, groups=300, count=20000, noise_max=3):
    """Zipf-popular correlated extent groups plus uniform noise."""
    rng = random.Random(seed)
    pools = []
    for g in range(groups):
        base = (g + 1) * 10_000
        pools.append([Extent(base + i * 16, 8) for i in range(2 + g % 3)])
    ranks = ZipfRanks(groups, exponent=1.0)
    out = []
    for _ in range(count):
        noise = [Extent(rng.randrange(1, 2_000_000), 4)
                 for _ in range(rng.randrange(0, noise_max))]
        out.append(pools[ranks.sample(rng) - 1] + noise)
    return out


def random_events(seed, count=4000):
    rng = random.Random(seed)
    clock = 0.0
    events = []
    for _ in range(count):
        clock += rng.expovariate(2000.0)
        timestamp = clock
        if rng.random() < 0.05:  # some out-of-order delivery
            timestamp -= rng.random() * 0.002
        events.append(BlockIOEvent(
            timestamp=timestamp,
            pid=rng.randrange(4),
            op=rng.choice([OpType.READ, OpType.WRITE]),
            start=rng.randrange(1, 4000) * 8,
            length=8,
            latency=rng.random() * 0.001 if rng.random() < 0.7 else None,
        ))
    return events


SMALL = AnalyzerConfig(item_capacity=128, correlation_capacity=128)


def assert_tally_identical(left, right):
    assert left.pair_frequencies() == right.pair_frequencies()
    assert left.frequent_extents(1) == right.frequent_extents(1)
    assert left.frequent_pairs(1) == right.frequent_pairs(1)
    a, b = left.report(), right.report()
    assert a.transactions == b.transactions
    assert a.extents_seen == b.extents_seen
    assert a.pairs_seen == b.pairs_seen
    assert a.item_stats == b.item_stats
    assert a.correlation_stats == b.correlation_stats


# ---------------------------------------------------------------------------
# shards=1 equivalence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [1, 2, 3])
def test_one_shard_matches_single_analyzer(seed):
    single = OnlineAnalyzer(SMALL)
    sharded = ShardedAnalyzer(SMALL, shards=1)
    for transaction in random_transactions(seed):
        single.process(transaction)
        sharded.process(transaction)
    assert_tally_identical(single, sharded)


def test_one_shard_matches_typed_analyzer():
    rng = random.Random(9)
    single = TypedOnlineAnalyzer(SMALL)
    sharded = ShardedAnalyzer(SMALL, shards=1)
    for transaction in random_transactions(4, count=1500):
        typed = [(extent, rng.choice([OpType.READ, OpType.WRITE]))
                 for extent in transaction]
        single.process_typed(typed)
        sharded.process_typed(typed)
    assert_tally_identical(single, sharded)
    assert single.kind_summary() == sharded.kind_summary()
    for kind in CorrelationKind:
        assert (single.frequent_pairs_of_kind(kind, 2)
                == sharded.frequent_pairs_of_kind(kind, 2))


def test_single_engine_wrapper_is_pure_delegation():
    engine = SingleAnalyzerEngine(SMALL, typed=False)
    reference = OnlineAnalyzer(SMALL)
    transactions = random_transactions(5, count=800)
    assert engine.process_batch(transactions) == len(transactions)
    for transaction in transactions:
        reference.process(transaction)
    assert_tally_identical(engine, reference)
    assert isinstance(engine, SynopsisEngine)
    assert isinstance(ShardedAnalyzer(SMALL, shards=2), SynopsisEngine)


# ---------------------------------------------------------------------------
# Multi-shard behaviour
# ---------------------------------------------------------------------------

def test_shard_config_splits_capacity():
    config = AnalyzerConfig(item_capacity=1024, correlation_capacity=512)
    per_shard = shard_config(config, 4)
    assert per_shard.item_capacity == 256
    assert per_shard.correlation_capacity == 128
    assert per_shard.promote_threshold == config.promote_threshold
    with pytest.raises(ValueError):
        ShardedAnalyzer(config, shards=0)


def test_sharded_partitions_are_disjoint_and_complete():
    sharded = ShardedAnalyzer(SMALL, shards=4)
    for transaction in random_transactions(6, count=1000):
        sharded.process(transaction)
    merged = sharded.pair_frequencies()
    per_shard = [shard.pair_frequencies()
                 for shard in sharded.shard_analyzers]
    assert sum(len(part) for part in per_shard) == len(merged)
    for index, part in enumerate(per_shard):
        for pair in part:
            assert sharded.shard_of_pair(pair) == index
    occupancy = sharded.shard_occupancy()
    assert len(occupancy) == 4
    assert sum(pairs for _items, pairs in occupancy) == len(merged)


def test_four_shard_zipf_recall():
    """>= 0.95 pair recall versus the single analyzer at equal total
    capacity on the benchmark Zipf workload (the acceptance criterion)."""
    config = AnalyzerConfig(item_capacity=1024, correlation_capacity=1024)
    single = OnlineAnalyzer(config)
    sharded = ShardedAnalyzer(config, shards=4)
    for transaction in zipf_transactions():
        single.process(transaction)
        sharded.process(transaction)
    reference = {pair for pair, _ in single.frequent_pairs(5)}
    detected = {pair for pair, _ in sharded.frequent_pairs(5)}
    assert reference, "workload must produce frequent pairs"
    recall = len(reference & detected) / len(reference)
    assert recall >= 0.95, f"sharded recall {recall:.3f} < 0.95"


def test_process_batch_parallel_matches_sequential():
    """With no evictions in play, the thread-per-shard path is exact."""
    roomy = AnalyzerConfig(item_capacity=4096, correlation_capacity=4096)
    sequential = ShardedAnalyzer(roomy, shards=4)
    parallel = ShardedAnalyzer(roomy, shards=4)
    transactions = random_transactions(8, count=1500)
    assert sequential.process_batch(transactions) == len(transactions)
    assert parallel.process_batch(
        transactions, parallel=True) == len(transactions)
    assert sequential.pair_frequencies() == parallel.pair_frequencies()
    assert (sequential.frequent_extents(1)
            == parallel.frequent_extents(1))
    assert sequential.report().pairs_seen == parallel.report().pairs_seen


def test_sharded_reset():
    sharded = ShardedAnalyzer(SMALL, shards=3)
    for transaction in random_transactions(10, count=200):
        sharded.process(transaction)
    assert sharded.pair_frequencies()
    sharded.reset()
    assert not sharded.pair_frequencies()
    assert sharded.report().transactions == 0


# ---------------------------------------------------------------------------
# Batched monitor and service ingest
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("policy", list(ClockPolicy))
def test_monitor_on_events_matches_per_event(policy):
    events = random_events(11)
    for make_window in (lambda: StaticWindow(0.001),
                        lambda: DynamicLatencyWindow()):
        loop_rec, batch_rec = TransactionRecorder(), TransactionRecorder()
        per_event = Monitor(window=make_window(), sinks=[loop_rec],
                            clock_policy=policy)
        batched = Monitor(window=make_window(), sinks=[batch_rec],
                          clock_policy=policy)
        for event in events:
            per_event.on_event(event)
        assert batched.on_events(events) == len(events)
        per_event.flush()
        batched.flush()
        assert ([t.events for t in loop_rec.transactions]
                == [t.events for t in batch_rec.transactions])
        assert vars(per_event.stats) == vars(batched.stats)


def test_submit_many_matches_submit_loop():
    events = random_events(12)
    config = AnalyzerConfig(item_capacity=512, correlation_capacity=512)
    one_by_one = CharacterizationService(config=config, min_support=2)
    batched = CharacterizationService(config=config, min_support=2)
    for event in events:
        one_by_one.submit(event)
    assert batched.submit_many(events) == len(events)
    one_by_one.flush()
    batched.flush()
    left, right = one_by_one.snapshot(), batched.snapshot()
    assert left.frequent_pairs == right.frequent_pairs
    assert left.transactions == right.transactions
    assert left.kind_summary == right.kind_summary


def test_submit_many_fires_observers_once_per_batch():
    events = random_events(13, count=3000)
    service = CharacterizationService(
        config=SMALL, min_support=1, snapshot_interval=10
    )
    seen = []
    service.observe(seen.append)
    service.submit_many(events)
    service.flush()
    assert len(seen) == 1  # once per batch, not once per interval
    assert seen[0].transactions >= 10


def test_sharded_service_snapshot_matches_single_on_hot_pairs():
    events = random_events(14, count=5000)
    config = AnalyzerConfig(item_capacity=1024, correlation_capacity=1024)
    single = CharacterizationService(config=config, min_support=3)
    sharded = CharacterizationService(config=config, min_support=3, shards=4)
    single.submit_many(events)
    sharded.submit_many(events, parallel=True)
    single.flush()
    sharded.flush()
    reference = {pair for pair, _ in single.snapshot().frequent_pairs}
    detected = {pair for pair, _ in sharded.snapshot().frequent_pairs}
    if reference:
        recall = len(reference & detected) / len(reference)
        assert recall >= 0.9


# ---------------------------------------------------------------------------
# Checkpoint format v3
# ---------------------------------------------------------------------------

def _populated_sharded(shards=4, seed=20):
    engine = ShardedAnalyzer(SMALL, shards=shards)
    for transaction in random_transactions(seed, count=1200):
        engine.process(transaction)
    return engine


def test_v3_round_trip_exact():
    engine = _populated_sharded()
    buffer = io.BytesIO()
    written = dump_engine(engine, buffer)
    assert written == len(buffer.getvalue())
    buffer.seek(0)
    loaded = load_engine(buffer)
    restored = loaded.engine
    assert loaded.corrupt_shards == []
    assert isinstance(restored, ShardedAnalyzer)
    assert restored.shards == engine.shards
    assert restored.pair_frequencies() == engine.pair_frequencies()
    # LRU order and tier membership must survive, shard for shard.
    for original, revived in zip(engine.shard_analyzers,
                                 restored.shard_analyzers):
        assert original.items.items() == revived.items.items()
        assert original.correlations.items() == revived.correlations.items()


def test_v3_dispatch_still_reads_v2():
    analyzer = OnlineAnalyzer(SMALL)
    for transaction in random_transactions(21, count=400):
        analyzer.process(transaction)
    buffer = io.BytesIO()
    dump_engine(analyzer, buffer)
    buffer.seek(0)
    loaded = load_engine(buffer)
    assert isinstance(loaded.engine, OnlineAnalyzer)
    assert loaded.engine.pair_frequencies() == analyzer.pair_frequencies()


def _corrupt_one_shard(blob: bytes) -> bytes:
    """Flip bits in the middle of the *last* shard's payload."""
    corrupted = bytearray(blob)
    offset = len(corrupted) - 40
    corrupted[offset] ^= 0xFF
    corrupted[offset + 1] ^= 0xFF
    return bytes(corrupted)


def test_v3_one_corrupt_shard_strict_raises():
    engine = _populated_sharded()
    buffer = io.BytesIO()
    dump_engine(engine, buffer)
    corrupted = _corrupt_one_shard(buffer.getvalue())
    with pytest.raises(CheckpointCorruptError):
        load_engine(io.BytesIO(corrupted), strict=True)


def test_v3_one_corrupt_shard_degrades_not_destroys():
    engine = _populated_sharded()
    buffer = io.BytesIO()
    dump_engine(engine, buffer)
    corrupted = _corrupt_one_shard(buffer.getvalue())
    loaded = load_engine(io.BytesIO(corrupted), strict=False)
    assert loaded.corrupt_shards  # the damaged shard is reported ...
    restored = loaded.engine
    assert isinstance(restored, ShardedAnalyzer)
    survivors = set(range(engine.shards)) - set(loaded.corrupt_shards)
    assert survivors  # ... and the others keep their learned state
    for index in survivors:
        assert (restored.shard_analyzers[index].pair_frequencies()
                == engine.shard_analyzers[index].pair_frequencies())
    for index in loaded.corrupt_shards:
        assert not restored.shard_analyzers[index].pair_frequencies()


def test_resilient_service_degraded_shard_restore(tmp_path):
    path = tmp_path / "synopsis.v3"
    source = ResilientCharacterizationService(
        config=SMALL, min_support=1, shards=4
    )
    source.submit_many(random_events(22, count=3000))
    source.checkpoint_to(path)

    corrupted = _corrupt_one_shard(path.read_bytes())
    path.write_bytes(corrupted)

    revived = ResilientCharacterizationService(
        config=SMALL, min_support=1, shards=4
    )
    assert revived.restore_from(path) is True  # degraded, not destroyed
    health = revived.health()
    assert not health.ok
    assert any("shard" in reason for reason in health.reasons)
    surviving = revived.analyzer.pair_frequencies()
    original = source.analyzer.pair_frequencies()
    assert surviving  # intact shards carried their pairs across
    assert set(surviving).issubset(set(original))


def test_engine_checkpoint_file_helpers(tmp_path):
    path = tmp_path / "engine.ckpt"
    engine = _populated_sharded(shards=2, seed=23)
    written = save_engine_checkpoint(engine, path)
    assert path.stat().st_size == written
    loaded = load_engine_checkpoint(path)
    assert loaded.engine.pair_frequencies() == engine.pair_frequencies()


# ---------------------------------------------------------------------------
# Pipeline and CLI integration
# ---------------------------------------------------------------------------

def test_pipeline_shards_and_batch_size():
    from repro.pipeline import run_pipeline
    from repro.workloads.enterprise import generate_named

    records, _truth = generate_named("rsrch", requests=2500, seed=5)
    baseline = run_pipeline(records, record_offline=False)
    batched = run_pipeline(records, record_offline=False, batch_size=256)
    assert (baseline.frequent_pairs(3)
            == batched.frequent_pairs(3))
    sharded = run_pipeline(records, record_offline=False, shards=4)
    assert isinstance(sharded.analyzer, ShardedAnalyzer)
    reference = {pair for pair, _ in baseline.frequent_pairs(3)}
    detected = {pair for pair, _ in sharded.frequent_pairs(3)}
    if reference:
        assert len(reference & detected) / len(reference) >= 0.9
    with pytest.raises(ValueError):
        run_pipeline(records, shards=0)
    with pytest.raises(ValueError):
        run_pipeline(records, batch_size=0)


def test_cli_shards_and_batch_flags(tmp_path, capsys):
    from repro.cli.main import main
    from repro.trace.io import save_msr_csv
    from repro.workloads.enterprise import generate_named

    records, _truth = generate_named("rsrch", requests=1500, seed=5)
    trace = tmp_path / "trace.csv"
    save_msr_csv(records, trace)
    synopsis = tmp_path / "synopsis.v3"
    assert main([
        "characterize", str(trace), "--shards", "4",
        "--batch-size", "128", "--support", "3",
        "--save-synopsis", str(synopsis),
    ]) == 0
    out = capsys.readouterr().out
    assert "saved synopsis" in out
    assert synopsis.read_bytes().startswith(b"RTSHD\x03")
    # And the sharded synopsis can be resumed from.
    assert main([
        "characterize", str(trace), "--load-synopsis", str(synopsis),
        "--support", "3",
    ]) == 0
