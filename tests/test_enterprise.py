"""Tests for the MSR-like enterprise workload models."""

import pytest

from repro.trace.stats import compute_stats
from repro.workloads.enterprise import (
    PROFILES,
    WORKLOAD_NAMES,
    generate_enterprise,
    generate_named,
)


@pytest.fixture(scope="module")
def wdev_trace():
    return generate_named("wdev", requests=6000, seed=3)


class TestProfiles:
    def test_all_five_workloads_modelled(self):
        assert set(WORKLOAD_NAMES) == {"wdev", "src2", "rsrch", "stg", "hm"}

    def test_stg_has_largest_relative_space(self):
        """Paper: 'the stg trace has the largest number space (an order of
        magnitude larger than the others)'."""
        others = [
            profile.space_per_request
            for name, profile in PROFILES.items()
            if name != "stg"
        ]
        assert PROFILES["stg"].space_per_request >= 10 * min(others)

    def test_only_wdev_repeats_in_window(self):
        """Paper: repeated identical requests were seen 'for wdev in
        particular'."""
        assert PROFILES["wdev"].repeat_in_window > 0
        for name in ("src2", "rsrch", "stg", "hm"):
            assert PROFILES[name].repeat_in_window == 0

    def test_latency_means_match_table2(self):
        assert PROFILES["wdev"].mean_trace_latency == pytest.approx(3.65e-3)
        assert PROFILES["stg"].mean_trace_latency == pytest.approx(18.94e-3)


class TestGeneratedTraces:
    def test_request_count_and_order(self, wdev_trace):
        records, _truth = wdev_trace
        assert len(records) == 6000
        times = [record.timestamp for record in records]
        assert times == sorted(times)

    def test_recorded_latency_near_profile_mean(self, wdev_trace):
        records, _truth = wdev_trace
        stats = compute_stats(records)
        assert stats.mean_latency == pytest.approx(3.65e-3, rel=0.25)

    def test_reuse_ratio_shapes_footprint(self):
        """High-reuse wdev must have a much higher total/unique ratio than
        mostly-unique stg (Table I: 21x vs 1.3x)."""
        wdev_records, _ = generate_named("wdev", requests=6000, seed=3)
        stg_records, _ = generate_named("stg", requests=6000, seed=3)
        wdev_stats = compute_stats(wdev_records)
        stg_stats = compute_stats(stg_records)
        wdev_ratio = wdev_stats.total_bytes / wdev_stats.unique_bytes
        stg_ratio = stg_stats.total_bytes / stg_stats.unique_bytes
        assert wdev_ratio > 8
        assert stg_ratio < 2.5
        assert wdev_ratio > 4 * stg_ratio

    def test_fast_interarrival_ordering(self):
        """wdev is burstier than stg (78.4% vs 65.9% below 100 us)."""
        wdev_records, _ = generate_named("wdev", requests=8000, seed=3)
        stg_records, _ = generate_named("stg", requests=8000, seed=3)
        wdev_fast = compute_stats(wdev_records).fast_interarrival_fraction
        stg_fast = compute_stats(stg_records).fast_interarrival_fraction
        assert wdev_fast > stg_fast
        assert 0.5 < wdev_fast < 0.95
        assert 0.35 < stg_fast < 0.85

    def test_wdev_contains_in_window_duplicates(self, wdev_trace):
        records, _truth = wdev_trace
        duplicates = 0
        for earlier, later in zip(records, records[1:]):
            same_shape = (
                earlier.start == later.start and earlier.length == later.length
            )
            if same_shape and later.timestamp - earlier.timestamp < 100e-6:
                duplicates += 1
        assert duplicates > 0

    def test_hot_pairs_actually_recur(self, wdev_trace):
        records, truth = wdev_trace
        top_pair = truth.pairs[0]
        hits = sum(1 for r in records if r.start == top_pair.first.start
                   and r.length == top_pair.first.length)
        assert hits >= 5

    def test_deterministic_for_seed(self):
        first, _ = generate_named("hm", requests=500, seed=11)
        second, _ = generate_named("hm", requests=500, seed=11)
        assert first == second

    def test_seed_changes_trace(self):
        first, _ = generate_named("hm", requests=500, seed=11)
        second, _ = generate_named("hm", requests=500, seed=12)
        assert first != second

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            generate_named("nosuch")

    def test_minimum_request_validation(self):
        with pytest.raises(ValueError):
            generate_enterprise(PROFILES["wdev"], requests=1)

    def test_latency_can_be_disabled(self):
        records, _ = generate_enterprise(
            PROFILES["rsrch"], requests=100, with_latency=False
        )
        assert all(record.latency is None for record in records)


class TestMultiDiskGeneration:
    def test_single_disk_default(self):
        records, _ = generate_named("wdev", requests=500, seed=3)
        assert {record.disk_id for record in records} == {0}

    def test_multi_disk_partitions_address_space(self):
        from repro.blkdev.multidisk import rank_disks, split_by_disk
        records, _ = generate_enterprise(
            PROFILES["stg"], requests=3000, seed=3, disks=4
        )
        disks = split_by_disk(records)
        assert len(disks) >= 3  # stg scatters widely enough to hit most
        # Per-disk address ranges are disjoint volumes.
        ranges = {}
        for disk_id, disk_records in disks.items():
            ranges[disk_id] = (
                min(r.start for r in disk_records),
                max(r.start + r.length for r in disk_records),
            )
        ordered = sorted(ranges.values())
        for (low_a, high_a), (low_b, _hb) in zip(ordered, ordered[1:]):
            assert low_b >= high_a - 1  # volume boundary crossings only
        # The paper's methodology: pick the busiest disk.
        busiest = rank_disks(records)[0]
        assert busiest.requests == max(len(v) for v in disks.values())

    def test_disks_validation(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            generate_enterprise(PROFILES["wdev"], requests=100, disks=0)
