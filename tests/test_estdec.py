"""Tests for the simplified estDec+ stream miner."""

import pytest

from repro.fim.estdec import EstDecConfig, EstDecMiner


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EstDecConfig(decay=0.0)
        with pytest.raises(ValueError):
            EstDecConfig(decay=1.5)
        with pytest.raises(ValueError):
            EstDecConfig(insertion_threshold=0.0)
        with pytest.raises(ValueError):
            EstDecConfig(max_entries=1)


class TestCounting:
    def test_no_decay_counts_exactly(self):
        miner = EstDecMiner(EstDecConfig(decay=1.0))
        for _ in range(5):
            miner.process(["a", "b"])
        pairs = dict(miner.frequent_pairs(min_support=1.0))
        assert pairs[frozenset(("a", "b"))] == pytest.approx(5.0)

    def test_duplicates_in_transaction_count_once(self):
        miner = EstDecMiner(EstDecConfig(decay=1.0))
        miner.process(["a", "a", "b"])
        pairs = dict(miner.frequent_pairs(min_support=0.5))
        assert pairs[frozenset(("a", "b"))] == pytest.approx(1.0)

    def test_min_support_filter(self):
        miner = EstDecMiner(EstDecConfig(decay=1.0))
        for _ in range(4):
            miner.process(["a", "b"])
        miner.process(["x", "y"])
        strong = miner.frequent_pairs(min_support=3.0)
        assert [key for key, _count in strong] == [frozenset(("a", "b"))]

    def test_frequent_pairs_sorted_strongest_first(self):
        miner = EstDecMiner(EstDecConfig(decay=1.0))
        for _ in range(3):
            miner.process(["a", "b"])
        miner.process(["x", "y"])
        counts = [count for _key, count in miner.frequent_pairs(0.5)]
        assert counts == sorted(counts, reverse=True)


class TestDecay:
    def test_old_patterns_fade(self):
        miner = EstDecMiner(EstDecConfig(decay=0.9))
        for _ in range(10):
            miner.process(["old-1", "old-2"])
        for _ in range(50):
            miner.process(["new-1", "new-2"])
        pairs = dict(miner.frequent_pairs(min_support=0.0))
        old = pairs.get(frozenset(("old-1", "old-2")), 0.0)
        new = pairs[frozenset(("new-1", "new-2"))]
        assert new > 5 * max(old, 1e-9)

    def test_decayed_entries_pruned_on_overflow(self):
        miner = EstDecMiner(
            EstDecConfig(decay=0.5, insertion_threshold=0.9, max_entries=8)
        )
        for i in range(100):
            miner.process([f"x{i}", f"y{i}"])
        assert len(miner) <= 8


class TestMemoryBound:
    def test_hard_cap_enforced(self):
        miner = EstDecMiner(
            EstDecConfig(decay=1.0, insertion_threshold=0.1, max_entries=16)
        )
        for i in range(200):
            miner.process([f"a{i}", f"b{i}", f"c{i}"])
        assert len(miner) <= 16

    def test_hot_pair_survives_cap(self):
        miner = EstDecMiner(
            EstDecConfig(decay=1.0, insertion_threshold=0.5, max_entries=32)
        )
        for i in range(100):
            miner.process(["hot-a", "hot-b"])
            miner.process([f"cold-{i}", f"cold2-{i}"])
        pairs = dict(miner.frequent_pairs(min_support=10.0))
        assert frozenset(("hot-a", "hot-b")) in pairs

    def test_transaction_counter(self):
        miner = EstDecMiner()
        miner.process_stream([["a"], ["b"], ["c"]])
        assert miner.transactions == 3


class TestLatticeDepth:
    def test_deeper_lattice_counts_triples(self):
        miner = EstDecMiner(EstDecConfig(decay=1.0, max_itemset_size=3))
        for _ in range(4):
            miner.process(["a", "b", "c"])
        triples = dict(miner.frequent_itemsets(min_support=3.0, size=3))
        assert triples[frozenset(("a", "b", "c"))] == pytest.approx(4.0)

    def test_pair_only_default_skips_triples(self):
        miner = EstDecMiner(EstDecConfig(decay=1.0))
        miner.process(["a", "b", "c"])
        assert miner.frequent_itemsets(0.5, size=3) == []

    def test_lattice_depth_multiplies_work(self):
        """The paper's point: chasing larger itemsets explodes per-
        transaction cost.  Entry counts grow combinatorially with depth."""
        shallow = EstDecMiner(EstDecConfig(decay=1.0, max_itemset_size=2))
        deep = EstDecMiner(EstDecConfig(decay=1.0, max_itemset_size=4))
        transaction = [f"x{i}" for i in range(8)]
        shallow.process(transaction)
        deep.process(transaction)
        # 8 singles + C(8,2)=28 pairs vs additionally C(8,3)+C(8,4)=126.
        assert len(shallow) == 36
        assert len(deep) == 36 + 56 + 70

    def test_frequent_itemsets_any_size(self):
        miner = EstDecMiner(EstDecConfig(decay=1.0, max_itemset_size=3))
        for _ in range(3):
            miner.process(["a", "b", "c"])
        everything = miner.frequent_itemsets(min_support=2.0)
        sizes = {len(key) for key, _count in everything}
        assert sizes == {2, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            EstDecConfig(max_itemset_size=1)
