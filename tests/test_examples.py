"""Smoke tests: every example script must run cleanly end to end."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
SRC_DIR = EXAMPLES_DIR.parent / "src"


def example_env():
    """Subprocess env with an *absolute* src path.

    The tests run example scripts with a temp-dir cwd; a relative
    ``PYTHONPATH=src`` from the invoking shell would resolve against that
    cwd and break the import, so prepend the absolute path.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable: at least three examples


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.name
)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # any output files land in the temp dir
        env=example_env(),
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_quickstart_detects_everything():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=120, env=example_env(),
    )
    assert "4/4 planted correlations detected" in result.stdout
