"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable: at least three examples


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.name
)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # any output files land in the temp dir
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_quickstart_detects_everything():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert "4/4 planted correlations detected" in result.stdout
