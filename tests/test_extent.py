"""Tests for extents and extent pairs (paper Section II-A / Fig. 2)."""

import pytest

from repro.core.extent import (
    Extent,
    ExtentPair,
    block_correlations,
    unique_pairs,
)


class TestExtent:
    def test_basic_properties(self):
        extent = Extent(100, 4)
        assert extent.start == 100
        assert extent.length == 4
        assert extent.end == 104
        assert list(extent.blocks()) == [100, 101, 102, 103]

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Extent(-1, 4)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            Extent(0, 0)
        with pytest.raises(ValueError):
            Extent(0, -3)

    def test_contains_block(self):
        extent = Extent(10, 3)
        assert extent.contains_block(10)
        assert extent.contains_block(12)
        assert not extent.contains_block(13)
        assert not extent.contains_block(9)

    def test_overlaps(self):
        assert Extent(0, 10).overlaps(Extent(5, 10))
        assert Extent(5, 10).overlaps(Extent(0, 10))
        assert not Extent(0, 5).overlaps(Extent(5, 5))  # adjacency != overlap
        assert Extent(3, 1).overlaps(Extent(0, 10))     # containment

    def test_adjacency(self):
        assert Extent(0, 5).is_adjacent(Extent(5, 2))
        assert Extent(5, 2).is_adjacent(Extent(0, 5))
        assert not Extent(0, 5).is_adjacent(Extent(6, 2))
        assert not Extent(0, 5).is_adjacent(Extent(4, 2))

    def test_union_span(self):
        assert Extent(0, 2).union_span(Extent(10, 5)) == Extent(0, 15)
        assert Extent(10, 5).union_span(Extent(0, 2)) == Extent(0, 15)

    def test_intra_block_pairs_matches_paper_fig2(self):
        # Fig. 2: C(4, 2) = 6 intra pairs for 100+4, C(3, 2) = 3 for 200+3.
        assert Extent(100, 4).intra_block_pairs() == 6
        assert Extent(200, 3).intra_block_pairs() == 3
        assert Extent(0, 1).intra_block_pairs() == 0

    def test_string_notation_roundtrip(self):
        extent = Extent(100, 4)
        assert str(extent) == "100+4"
        assert Extent.parse("100+4") == extent

    def test_parse_rejects_garbage(self):
        for bad in ("", "100", "100-4", "a+b", "100+4+5"):
            with pytest.raises(ValueError):
                Extent.parse(bad)

    def test_ordering_is_lexicographic(self):
        assert Extent(1, 5) < Extent(2, 1)
        assert Extent(1, 2) < Extent(1, 3)

    def test_hashable_and_equal(self):
        assert Extent(5, 2) == Extent(5, 2)
        assert len({Extent(5, 2), Extent(5, 2), Extent(5, 3)}) == 2


class TestExtentPair:
    def test_canonical_orientation(self):
        a, b = Extent(200, 3), Extent(100, 4)
        pair = ExtentPair(a, b)
        assert pair.first == b
        assert pair.second == a
        assert ExtentPair(a, b) == ExtentPair(b, a)
        assert hash(ExtentPair(a, b)) == hash(ExtentPair(b, a))

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            ExtentPair(Extent(1, 1), Extent(1, 1))

    def test_involves_and_other(self):
        a, b = Extent(1, 1), Extent(2, 2)
        pair = ExtentPair(a, b)
        assert pair.involves(a) and pair.involves(b)
        assert not pair.involves(Extent(3, 1))
        assert pair.other(a) == b
        assert pair.other(b) == a
        with pytest.raises(ValueError):
            pair.other(Extent(3, 1))

    def test_inter_block_pairs_matches_paper_fig2(self):
        # Fig. 2: 4 x 3 = 12 inter-request block correlations.
        pair = ExtentPair(Extent(100, 4), Extent(200, 3))
        assert pair.inter_block_pairs() == 12
        assert len(list(pair.block_pairs())) == 12

    def test_block_pairs_contents(self):
        pair = ExtentPair(Extent(0, 2), Extent(10, 1))
        assert set(pair.block_pairs()) == {(0, 10), (1, 10)}


class TestUniquePairs:
    def test_counts_match_combinatorics(self):
        extents = [Extent(i * 10, 1) for i in range(5)]
        assert len(unique_pairs(extents)) == 10  # C(5, 2)

    def test_deduplicates_before_pairing(self):
        a, b = Extent(0, 1), Extent(10, 1)
        assert unique_pairs([a, a, b, b]) == [ExtentPair(a, b)]

    def test_empty_and_singleton(self):
        assert unique_pairs([]) == []
        assert unique_pairs([Extent(0, 1)]) == []

    def test_pairs_are_canonical_and_sorted(self):
        extents = [Extent(30, 1), Extent(10, 1), Extent(20, 1)]
        pairs = unique_pairs(extents)
        assert pairs == sorted(pairs)
        for p in pairs:
            assert p.first < p.second


class TestBlockCorrelations:
    def test_fig2_total(self):
        """Fig. 2's example: 9 intra + 12 inter = 21 block correlations."""
        correlations = block_correlations([Extent(100, 4), Extent(200, 3)])
        assert len(correlations) == 21

    def test_pairs_are_canonical(self):
        correlations = block_correlations([Extent(0, 2), Extent(5, 2)])
        for low, high in correlations:
            assert low < high

    def test_overlapping_extents_do_not_self_pair(self):
        correlations = block_correlations([Extent(0, 3), Extent(1, 3)])
        assert all(low != high for low, high in correlations)
