"""Tests for the offline FIM baselines (apriori, eclat, fp-growth)."""

import random

import pytest

from repro.fim.apriori import apriori
from repro.fim.eclat import eclat
from repro.fim.fpgrowth import fpgrowth
from repro.fim.itemset import (
    TransactionDatabase,
    filter_max_size,
    frequent_pairs,
    support_of,
)

MINERS = [apriori, eclat, fpgrowth]

#: The classic FIM teaching example.
MARKET = [
    ["beer", "diapers", "chips"],
    ["beer", "diapers"],
    ["beer", "chips"],
    ["diapers", "chips"],
    ["beer", "diapers", "chips", "salsa"],
]


class TestTransactionDatabase:
    def test_deduplicates_and_sorts(self):
        database = TransactionDatabase([["b", "a", "b"]])
        assert database[0] == ("a", "b")

    def test_item_counts(self):
        database = TransactionDatabase(MARKET)
        counts = database.item_counts()
        assert counts["beer"] == 4
        assert counts["salsa"] == 1

    def test_support_of_oracle(self):
        database = TransactionDatabase(MARKET)
        assert support_of(database, ["beer", "diapers"]) == 3
        assert support_of(database, ["salsa", "chips"]) == 1
        assert support_of(database, ["missing"]) == 0


@pytest.mark.parametrize("miner", MINERS, ids=lambda m: m.__name__)
class TestMinersAgree:
    def test_market_pairs(self, miner):
        result = miner(MARKET, min_support=3, max_size=2)
        pairs = frequent_pairs(result)
        assert pairs == {
            frozenset(("beer", "diapers")): 3,
            frozenset(("beer", "chips")): 3,
            frozenset(("diapers", "chips")): 3,
        }

    def test_singletons_reported(self, miner):
        result = miner(MARKET, min_support=4, max_size=1)
        assert result == {
            frozenset(("beer",)): 4,
            frozenset(("diapers",)): 4,
            frozenset(("chips",)): 4,
        }

    def test_triples_when_requested(self, miner):
        result = miner(MARKET, min_support=2, max_size=3)
        assert result[frozenset(("beer", "diapers", "chips"))] == 2

    def test_max_size_respected(self, miner):
        result = miner(MARKET, min_support=1, max_size=2)
        assert all(len(itemset) <= 2 for itemset in result)

    def test_high_support_empty(self, miner):
        assert miner(MARKET, min_support=6) == {}

    def test_empty_database(self, miner):
        assert miner([], min_support=1) == {}

    def test_validation(self, miner):
        with pytest.raises(ValueError):
            miner(MARKET, min_support=0)
        with pytest.raises(ValueError):
            miner(MARKET, min_support=1, max_size=0)

    def test_duplicate_items_in_transaction_count_once(self, miner):
        result = miner([["a", "a", "b"]], min_support=1, max_size=2)
        assert result[frozenset(("a", "b"))] == 1


class TestCrossValidation:
    """All three miners must produce identical results on random data, and
    every reported support must match the brute-force oracle."""

    def _random_database(self, seed, transactions=60, alphabet=12):
        rng = random.Random(seed)
        return [
            rng.sample(range(alphabet), rng.randint(1, 5))
            for _ in range(transactions)
        ]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("min_support", [2, 5])
    def test_three_way_agreement(self, seed, min_support):
        transactions = self._random_database(seed)
        results = [
            miner(transactions, min_support=min_support, max_size=3)
            for miner in MINERS
        ]
        assert results[0] == results[1] == results[2]

    def test_supports_match_oracle(self):
        transactions = self._random_database(7)
        database = TransactionDatabase(transactions)
        result = apriori(database, min_support=3, max_size=3)
        assert result  # sanity: something was frequent
        for itemset, support in result.items():
            assert support == support_of(database, list(itemset))

    def test_downward_closure_holds(self):
        """Every subset of a frequent itemset must be frequent with at
        least the superset's support."""
        transactions = self._random_database(9)
        result = eclat(transactions, min_support=2, max_size=3)
        for itemset, support in result.items():
            if len(itemset) < 2:
                continue
            for item in itemset:
                subset = frozenset(itemset - {item})
                assert result[subset] >= support


class TestHelpers:
    def test_filter_max_size(self):
        itemsets = {frozenset("a"): 3, frozenset("ab"): 2, frozenset("abc"): 1}
        assert filter_max_size(itemsets, 2) == {
            frozenset("a"): 3, frozenset("ab"): 2
        }

    def test_frequent_pairs_picks_only_pairs(self):
        itemsets = {frozenset("a"): 3, frozenset("ab"): 2, frozenset("abc"): 1}
        assert frequent_pairs(itemsets) == {frozenset("ab"): 2}
