"""Tests for trace/correlation rasterisation (Figs 1, 7, 8)."""

import numpy as np
import pytest

from repro.analysis.heatmap import (
    ascii_render,
    pair_rectangles,
    raster_containment,
    raster_similarity,
    rasterize_pairs,
    trace_heatmap,
)
from repro.trace.record import OpType, TraceRecord

from conftest import pair


def records_two_bands():
    low = [TraceRecord(i * 0.01, 0, OpType.READ, 10, 1) for i in range(50)]
    high = [TraceRecord(0.005 + i * 0.01, 0, OpType.READ, 990, 1)
            for i in range(50)]
    return sorted(low + high, key=lambda r: r.timestamp)


class TestTraceHeatmap:
    def test_shape_and_total(self):
        grid = trace_heatmap(records_two_bands(), sequence_bins=10, block_bins=8)
        assert grid.shape == (8, 10)
        assert grid.sum() == 100

    def test_bands_land_in_expected_rows(self):
        grid = trace_heatmap(records_two_bands(), sequence_bins=4, block_bins=4)
        assert grid[0].sum() == 50    # low band
        assert grid[3].sum() == 50    # high band
        assert grid[1].sum() == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trace_heatmap([])


class TestPairRectangles:
    def test_both_orientations_emitted(self):
        rects = pair_rectangles({pair(10, 20, 2, 3): 5})
        assert len(rects) == 2
        assert (10, 12, 20, 23, 5) in rects
        assert (20, 23, 10, 12, 5) in rects

    def test_min_support_filters(self):
        counts = {pair(1, 2): 1, pair(5, 9): 7}
        rects = pair_rectangles(counts, min_support=5)
        assert len(rects) == 2
        assert all(count == 7 for *_coords, count in rects)


class TestRasterize:
    def test_symmetric_raster(self):
        grid = rasterize_pairs({pair(10, 90): 3}, bins=16, max_block=100)
        assert np.array_equal(grid, grid.T)
        assert grid.sum() > 0

    def test_empty_counts(self):
        grid = rasterize_pairs({}, bins=8)
        assert grid.sum() == 0

    def test_max_block_scales(self):
        counts = {pair(10, 90): 1}
        tight = rasterize_pairs(counts, bins=16, max_block=100)
        loose = rasterize_pairs(counts, bins=16, max_block=10000)
        # With a huge scale everything collapses near the origin.
        assert loose[:2, :2].sum() > 0
        assert tight[:2, :2].sum() == 0


class TestSimilarity:
    def test_identical_rasters(self):
        grid = rasterize_pairs({pair(10, 90): 3}, bins=16, max_block=100)
        assert raster_similarity(grid, grid) == 1.0

    def test_disjoint_rasters(self):
        a = rasterize_pairs({pair(1, 20): 1}, bins=32, max_block=1000)
        b = rasterize_pairs({pair(500, 900): 1}, bins=32, max_block=1000)
        assert raster_similarity(a, b) == 0.0

    def test_both_empty_is_similar(self):
        empty = np.zeros((4, 4), dtype=np.int64)
        assert raster_similarity(empty, empty) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            raster_similarity(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_containment(self):
        counts = {pair(10, 90): 3, pair(200, 800): 2}
        full = rasterize_pairs(counts, bins=32, max_block=1000)
        subset = rasterize_pairs({pair(10, 90): 3}, bins=32, max_block=1000)
        assert raster_containment(subset, full) == 1.0
        assert raster_containment(full, subset) < 1.0

    def test_containment_empty_reference(self):
        empty = np.zeros((4, 4), dtype=np.int64)
        busy = np.ones((4, 4), dtype=np.int64)
        assert raster_containment(empty, busy) == 1.0


class TestAsciiRender:
    def test_renders_rows(self):
        grid = rasterize_pairs({pair(10, 90): 3}, bins=8, max_block=100)
        art = ascii_render(grid)
        assert len(art.splitlines()) == 8

    def test_empty_grid(self):
        art = ascii_render(np.zeros((3, 3), dtype=np.int64))
        assert set(art) <= {" ", "\n"}
