"""Tests for the latency histogram and percentile window."""

import random

import pytest

from repro.monitor.histogram import LatencyHistogram, PercentileLatencyWindow


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean() == 0.0
        assert histogram.percentile(0.5) == 0.0

    def test_mean_and_count(self):
        histogram = LatencyHistogram()
        for latency in (1e-3, 2e-3, 3e-3):
            histogram.record(latency)
        assert histogram.count == 3
        assert histogram.mean() == pytest.approx(2e-3)
        assert histogram.max_latency == 3e-3

    def test_percentile_accuracy_within_bucket_width(self):
        """Bucket resolution is ~±19%: percentiles land near the truth."""
        histogram = LatencyHistogram()
        rng = random.Random(5)
        samples = sorted(rng.uniform(50e-6, 150e-6) for _ in range(5000))
        for sample in samples:
            histogram.record(sample)
        true_median = samples[len(samples) // 2]
        assert histogram.median() == pytest.approx(true_median, rel=0.25)
        true_p90 = samples[int(0.9 * len(samples))]
        assert histogram.percentile(0.9) == pytest.approx(true_p90, rel=0.25)

    def test_percentiles_monotone(self):
        histogram = LatencyHistogram()
        rng = random.Random(7)
        for _ in range(1000):
            histogram.record(rng.lognormvariate(-9, 1.0))
        values = [histogram.percentile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert values == sorted(values)

    def test_median_robust_to_tail(self):
        """A few huge outliers barely move the median -- the property that
        motivates a percentile window over a mean-based one."""
        histogram = LatencyHistogram()
        for _ in range(990):
            histogram.record(100e-6)
        for _ in range(10):
            histogram.record(50e-3)  # GC stalls
        assert histogram.median() == pytest.approx(100e-6, rel=0.25)
        assert histogram.mean() > 500e-6

    def test_extreme_values_clamped_to_buckets(self):
        histogram = LatencyHistogram()
        histogram.record(0.0)
        histogram.record(1e6)
        assert histogram.count == 2
        assert histogram.percentile(1.0) > 0

    def test_validation(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.record(-1.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_reset(self):
        histogram = LatencyHistogram()
        histogram.record(1e-3)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.max_latency == 0.0


class TestPercentileWindow:
    def test_cold_start_uses_initial(self):
        window = PercentileLatencyWindow(initial=1e-3)
        assert window.duration() == pytest.approx(2e-3)

    def test_tracks_median(self):
        window = PercentileLatencyWindow()
        for _ in range(500):
            window.observe_latency(100e-6)
        assert window.duration() == pytest.approx(200e-6, rel=0.3)

    def test_ignores_heavy_tail(self):
        """The mean-based window doubles after a stall burst; the median
        window stays put."""
        from repro.monitor.window import DynamicLatencyWindow
        median_window = PercentileLatencyWindow()
        mean_window = DynamicLatencyWindow()
        for _ in range(200):
            median_window.observe_latency(100e-6)
            mean_window.observe_latency(100e-6)
        for _ in range(20):
            median_window.observe_latency(20e-3)
            mean_window.observe_latency(20e-3)
        assert median_window.duration() < 3 * 200e-6
        assert mean_window.duration() > 3 * 200e-6

    def test_clamps(self):
        window = PercentileLatencyWindow(floor=1e-4, ceiling=1e-2)
        window.observe_latency(1e-9)
        assert window.duration() == 1e-4
        for _ in range(100):
            window.observe_latency(10.0)
        assert window.duration() == 1e-2

    def test_validation(self):
        with pytest.raises(ValueError):
            PercentileLatencyWindow(multiplier=0)
        with pytest.raises(ValueError):
            PercentileLatencyWindow(quantile=1.0)
        with pytest.raises(ValueError):
            PercentileLatencyWindow(floor=2.0, ceiling=1.0)
