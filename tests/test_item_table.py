"""Tests for the item table."""

from repro.core.item_table import ItemTable
from repro.core.two_tier import TIER1, TIER2

from conftest import ext


class TestItemTable:
    def test_access_and_tally(self):
        table = ItemTable(4)
        table.access(ext(10))
        table.access(ext(10))
        assert table.tally(ext(10)) == 2
        assert table.tier_of(ext(10)) == TIER2
        assert len(table) == 1

    def test_extents_with_different_shape_are_distinct(self):
        """Extent identity is (start, length): 100+4 is not 100+3."""
        table = ItemTable(4)
        table.access(ext(100, 4))
        table.access(ext(100, 3))
        assert len(table) == 2
        assert table.tally(ext(100, 4)) == 1

    def test_evicted_from_reports_extents(self):
        table = ItemTable(1, 1)
        table.access(ext(1))
        result = table.access(ext(2))
        assert table.evicted_from(result) == [ext(1)]

    def test_frequent_sorted_by_tally(self):
        table = ItemTable(8)
        for _ in range(3):
            table.access(ext(1))
        for _ in range(2):
            table.access(ext(2))
        table.access(ext(3))
        top = table.frequent(min_tally=2)
        assert [tally for _e, tally in top] == [3, 2]
        assert top[0][0] == ext(1)

    def test_frequent_ties_break_canonically(self):
        table = ItemTable(8)
        table.access(ext(5))
        table.access(ext(1))
        top = table.frequent()
        assert [entry[0] for entry in top] == [ext(1), ext(5)]

    def test_capacity_and_clear(self):
        table = ItemTable(3, 5)
        assert table.capacity == 8
        table.access(ext(1))
        table.clear()
        assert len(table) == 0
        assert ext(1) not in table

    def test_stats_exposed(self):
        table = ItemTable(4)
        table.access(ext(1))
        table.access(ext(1))
        assert table.stats.lookups == 2
        assert table.stats.promotions == 1
