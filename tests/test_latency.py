"""Tests for the EWMA latency tracker."""

import pytest

from repro.monitor.latency import EwmaLatencyTracker


class TestEwmaLatencyTracker:
    def test_initial_prior(self):
        tracker = EwmaLatencyTracker(initial=5e-3)
        assert tracker.mean() == 5e-3
        assert tracker.count == 0

    def test_first_observation_replaces_prior(self):
        tracker = EwmaLatencyTracker(initial=1.0)
        tracker.observe(100e-6)
        assert tracker.mean() == pytest.approx(100e-6)

    def test_ewma_recurrence(self):
        tracker = EwmaLatencyTracker(alpha=0.5)
        tracker.observe(100e-6)
        tracker.observe(200e-6)
        assert tracker.mean() == pytest.approx(150e-6)
        tracker.observe(150e-6)
        assert tracker.mean() == pytest.approx(150e-6)

    def test_converges_to_shifted_level(self):
        """The tracker adapts when the device's latency regime changes --
        the property the dynamic window depends on."""
        tracker = EwmaLatencyTracker(alpha=0.125)
        for _ in range(100):
            tracker.observe(1e-3)
        for _ in range(100):
            tracker.observe(10e-3)
        assert tracker.mean() == pytest.approx(10e-3, rel=0.01)

    def test_count_tracks_observations(self):
        tracker = EwmaLatencyTracker()
        for _ in range(7):
            tracker.observe(1e-3)
        assert tracker.count == 7

    def test_reset(self):
        tracker = EwmaLatencyTracker(initial=3e-3)
        tracker.observe(1e-3)
        tracker.reset()
        assert tracker.mean() == 3e-3
        assert tracker.count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaLatencyTracker(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaLatencyTracker(alpha=1.5)
        with pytest.raises(ValueError):
            EwmaLatencyTracker(initial=0.0)
        tracker = EwmaLatencyTracker()
        with pytest.raises(ValueError):
            tracker.observe(-1e-3)

    def test_zero_latency_accepted(self):
        tracker = EwmaLatencyTracker()
        tracker.observe(0.0)
        assert tracker.mean() == 0.0
