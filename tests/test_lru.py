"""Tests for the indexed LRU queue."""

import pytest

from repro.core.lru import LruQueue


class TestLruQueueBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LruQueue(0)
        with pytest.raises(ValueError):
            LruQueue(-5)

    def test_insert_and_membership(self):
        queue = LruQueue(3)
        queue.insert("a")
        assert "a" in queue
        assert len(queue) == 1
        assert queue.tally("a") == 1

    def test_insert_with_custom_tally(self):
        queue = LruQueue(3)
        queue.insert("a", tally=7)
        assert queue.tally("a") == 7

    def test_insert_duplicate_raises(self):
        queue = LruQueue(3)
        queue.insert("a")
        with pytest.raises(KeyError):
            queue.insert("a")

    def test_tally_of_absent_is_none(self):
        assert LruQueue(2).tally("missing") is None


class TestEviction:
    def test_eviction_is_lru_order(self):
        queue = LruQueue(2)
        assert queue.insert("a") is None
        assert queue.insert("b") is None
        evicted = queue.insert("c")
        assert evicted == ("a", 1)
        assert "a" not in queue and "b" in queue and "c" in queue

    def test_touch_protects_from_eviction(self):
        queue = LruQueue(2)
        queue.insert("a")
        queue.insert("b")
        queue.touch("a")  # now b is LRU
        evicted = queue.insert("c")
        assert evicted == ("b", 1)
        assert "a" in queue

    def test_evicted_tally_is_preserved(self):
        queue = LruQueue(1)
        queue.insert("a")
        queue.touch("a")
        queue.touch("a")
        evicted = queue.insert("b")
        assert evicted == ("a", 3)

    def test_pop_lru(self):
        queue = LruQueue(3)
        queue.insert("a")
        queue.insert("b")
        assert queue.pop_lru() == ("a", 1)
        assert queue.pop_lru() == ("b", 1)
        assert queue.pop_lru() is None


class TestTouchAndDemote:
    def test_touch_increments_and_moves_to_front(self):
        queue = LruQueue(3)
        queue.insert("a")
        queue.insert("b")
        assert queue.touch("a") == 2
        assert queue.keys_mru_order() == ["a", "b"]

    def test_touch_missing_raises(self):
        queue = LruQueue(2)
        with pytest.raises(KeyError):
            queue.touch("nope")

    def test_touch_custom_increment(self):
        queue = LruQueue(2)
        queue.insert("a")
        assert queue.touch("a", increment=5) == 6

    def test_demote_moves_to_lru_end(self):
        queue = LruQueue(3)
        queue.insert("a")
        queue.insert("b")
        queue.insert("c")
        assert queue.demote("c") is True
        assert queue.peek_lru() == "c"
        assert queue.keys_mru_order() == ["b", "a", "c"]

    def test_demote_preserves_tally(self):
        queue = LruQueue(2)
        queue.insert("a")
        queue.touch("a")
        queue.demote("a")
        assert queue.tally("a") == 2

    def test_demote_absent_returns_false(self):
        assert LruQueue(2).demote("nope") is False

    def test_demoted_entry_evicted_next(self):
        queue = LruQueue(2)
        queue.insert("a")
        queue.insert("b")
        queue.demote("b")
        evicted = queue.insert("c")
        assert evicted[0] == "b"


class TestViews:
    def test_keys_mru_order(self):
        queue = LruQueue(4)
        for key in "abcd":
            queue.insert(key)
        assert queue.keys_mru_order() == ["d", "c", "b", "a"]

    def test_items_lru_to_mru(self):
        queue = LruQueue(3)
        queue.insert("a")
        queue.insert("b")
        assert list(queue.items()) == [("a", 1), ("b", 1)]

    def test_is_full_and_peek(self):
        queue = LruQueue(2)
        assert not queue.is_full()
        assert queue.peek_lru() is None
        queue.insert("a")
        queue.insert("b")
        assert queue.is_full()
        assert queue.peek_lru() == "a"

    def test_pop_and_clear(self):
        queue = LruQueue(2)
        queue.insert("a")
        assert queue.pop("a") == 1
        assert queue.pop("a") is None
        queue.insert("x")
        queue.clear()
        assert len(queue) == 0
