"""Tests pinning the paper's memory accounting (Section IV-C1)."""

import pytest

from repro.core.memory_model import (
    EXTENT_BYTES,
    ITEM_ENTRY_BYTES,
    PAIR_ENTRY_BYTES,
    SynopsisMemoryModel,
    capacity_for_budget,
)


class TestEntrySizes:
    def test_paper_entry_sizes(self):
        assert EXTENT_BYTES == 12        # 64-bit block ID + 32-bit length
        assert ITEM_ENTRY_BYTES == 16    # extent + 32-bit counter
        assert PAIR_ENTRY_BYTES == 28    # two extents + counter


class TestTotals:
    def test_component_formulas(self):
        model = SynopsisMemoryModel(capacity=1000)
        assert model.item_table_bytes == 32 * 1000
        assert model.correlation_table_bytes == 56 * 1000
        assert model.total_bytes == 88 * 1000

    def test_paper_16k_configuration(self):
        """Paper: 1.44 MB for C = 16 K."""
        model = SynopsisMemoryModel(capacity=16 * 1024)
        assert model.total_megabytes == pytest.approx(1.44, abs=0.07)

    def test_paper_4m_configuration(self):
        """Paper: 369 MB for C = 4 M."""
        model = SynopsisMemoryModel(capacity=4 * 1024 * 1024)
        assert model.total_megabytes == pytest.approx(369, rel=0.05)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SynopsisMemoryModel(capacity=0)


class TestBudget:
    def test_capacity_for_budget_roundtrip(self):
        capacity = capacity_for_budget(88 * 12345)
        assert capacity == 12345
        assert SynopsisMemoryModel(capacity).total_bytes <= 88 * 12345

    def test_budget_too_small(self):
        with pytest.raises(ValueError):
            capacity_for_budget(10)

    def test_budget_is_maximal(self):
        budget = 1_000_000
        capacity = capacity_for_budget(budget)
        assert SynopsisMemoryModel(capacity).total_bytes <= budget
        assert SynopsisMemoryModel(capacity + 1).total_bytes > budget
