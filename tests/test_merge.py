"""Tests for block-layer request merging."""

import pytest

from repro.monitor.events import BlockIOEvent
from repro.monitor.merge import RequestMerger
from repro.trace.record import OpType

R, W = OpType.READ, OpType.WRITE


def event(ts, start, length=8, op=R):
    return BlockIOEvent(ts, 1, op, start, length)


def merger(**kwargs):
    out = []
    m = RequestMerger(out.append, **kwargs)
    return m, out


class TestMerging:
    def test_back_merge(self):
        m, out = merger()
        m.on_event(event(0.0, 0, 8))
        m.on_event(event(1e-5, 8, 8))
        m.flush()
        assert len(out) == 1
        assert out[0].start == 0 and out[0].length == 16
        assert m.stats.back_merges == 1
        assert m.stats.merge_ratio == pytest.approx(0.5)

    def test_front_merge(self):
        m, out = merger()
        m.on_event(event(0.0, 8, 8))
        m.on_event(event(1e-5, 0, 8))
        m.flush()
        assert len(out) == 1
        assert out[0].start == 0 and out[0].length == 16
        assert m.stats.front_merges == 1

    def test_sequential_run_collapses_to_one_request(self):
        m, out = merger()
        for i in range(10):
            m.on_event(event(i * 1e-5, i * 8, 8))
        m.flush()
        assert len(out) == 1
        assert out[0].length == 80

    def test_non_adjacent_not_merged(self):
        m, out = merger()
        m.on_event(event(0.0, 0, 8))
        m.on_event(event(1e-5, 100, 8))
        m.flush()
        assert len(out) == 2

    def test_window_expiry_blocks_merge(self):
        m, out = merger(merge_window=1e-4)
        m.on_event(event(0.0, 0, 8))
        m.on_event(event(1.0, 8, 8))  # adjacent but far too late
        m.flush()
        assert len(out) == 2

    def test_max_blocks_cap(self):
        m, out = merger(max_blocks=12)
        m.on_event(event(0.0, 0, 8))
        m.on_event(event(1e-5, 8, 8))  # would make 16 > 12
        m.flush()
        assert len(out) == 2

    def test_different_ops_do_not_merge(self):
        m, out = merger()
        m.on_event(event(0.0, 0, 8, op=R))
        m.on_event(event(1e-5, 8, 8, op=W))
        m.flush()
        assert len(out) == 2
        assert {e.op for e in out} == {R, W}

    def test_merged_event_keeps_first_timestamp(self):
        m, out = merger()
        m.on_event(event(1.0, 0, 8))
        m.on_event(event(1.00001, 8, 8))
        m.flush()
        assert out[0].timestamp == 1.0

    def test_stale_other_op_flushed_by_time(self):
        m, out = merger(merge_window=1e-4)
        m.on_event(event(0.0, 0, 8, op=W))
        m.on_event(event(1.0, 100, 8, op=R))  # W's window long expired
        assert len(out) == 1  # the write flushed before stream end
        assert out[0].op is W

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestMerger(lambda e: None, merge_window=0.0)
        with pytest.raises(ValueError):
            RequestMerger(lambda e: None, max_blocks=0)

    def test_chained_into_monitor(self):
        """Merger upstream of the monitor: a split sequential run arrives
        as one extent, so the item table sees one item, not four."""
        from repro.monitor.monitor import Monitor, TransactionRecorder
        from repro.monitor.window import StaticWindow

        recorder = TransactionRecorder()
        monitor = Monitor(window=StaticWindow(1e-3), sinks=[recorder])
        m = RequestMerger(monitor.on_event)
        for i in range(4):
            m.on_event(event(i * 1e-5, i * 8, 8))
        m.flush()
        monitor.flush()
        assert len(recorder.transactions) == 1
        assert len(recorder.transactions[0]) == 1
        assert recorder.transactions[0].extents[0].length == 32
