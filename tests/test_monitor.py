"""Tests for the monitoring module (paper Section III-C)."""

import pytest

from repro.monitor.events import BlockIOEvent
from repro.monitor.monitor import GroupingMode, Monitor, TransactionRecorder
from repro.monitor.window import DynamicLatencyWindow, StaticWindow
from repro.trace.record import OpType


def event(ts, start=0, length=1, pid=1, pgid=0, latency=None):
    return BlockIOEvent(ts, pid, OpType.READ, start, length,
                        latency=latency, pgid=pgid)


def collecting_monitor(**kwargs):
    recorder = TransactionRecorder()
    monitor = Monitor(sinks=[recorder], **kwargs)
    return monitor, recorder


class TestWindowGrouping:
    def test_gap_grouping(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1e-3))
        for ts, start in [(0.0, 1), (0.5e-3, 2), (10e-3, 3)]:
            monitor.on_event(event(ts, start))
        monitor.flush()
        assert len(recorder) == 2
        assert [e.start for e in recorder.transactions[0].events] == [1, 2]
        assert [e.start for e in recorder.transactions[1].events] == [3]

    def test_gap_mode_chains_bursts(self):
        """In GAP mode a chain of sub-window gaps stays in one transaction
        even when its total span exceeds the window."""
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1e-3), grouping=GroupingMode.GAP
        )
        for i in range(5):
            monitor.on_event(event(i * 0.9e-3, i))
        monitor.flush()
        assert len(recorder) == 1

    def test_fixed_mode_bounds_span(self):
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1e-3), grouping=GroupingMode.FIXED
        )
        for i in range(5):
            monitor.on_event(event(i * 0.9e-3, i))
        monitor.flush()
        assert len(recorder) > 1
        for txn in recorder.transactions:
            assert txn.span <= 1e-3 + 1e-12

    def test_dynamic_window_reacts_to_latency(self):
        """Once measured latencies shrink, the window shrinks and the same
        arrival pattern splits into more transactions."""
        window = DynamicLatencyWindow(floor=1e-7)
        monitor, recorder = collecting_monitor(window=window)
        # Feed fast latencies so the EWMA settles near 10 us -> window 20 us.
        for i in range(50):
            monitor.on_event(event(i * 1e-4, i, latency=10e-6))
        monitor.flush()
        # 100 us gaps exceed the 20 us window: every event is its own txn.
        assert len(recorder) == 50


class TestSizeCap:
    def test_overflow_starts_new_transaction(self):
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1.0), max_transaction_size=3
        )
        for i in range(7):
            monitor.on_event(event(i * 1e-6, i))
        monitor.flush()
        sizes = [len(txn) for txn in recorder.transactions]
        assert sizes == [3, 3, 1]
        assert monitor.stats.size_splits == 2

    def test_default_cap_is_paper_value(self):
        monitor = Monitor()
        assert monitor.max_transaction_size == 8

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            Monitor(max_transaction_size=0)


class TestDedup:
    def test_duplicates_removed_within_transaction(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1.0))
        monitor.on_event(event(0.0, 5, 4))
        monitor.on_event(event(1e-6, 5, 4))
        monitor.on_event(event(2e-6, 9, 1))
        monitor.flush()
        assert len(recorder.transactions[0]) == 2
        assert monitor.stats.duplicates_removed == 1

    def test_dedup_can_be_disabled(self):
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1.0), dedup=False
        )
        monitor.on_event(event(0.0, 5))
        monitor.on_event(event(1e-6, 5))
        monitor.flush()
        assert len(recorder.transactions[0]) == 2


class TestFilters:
    def test_pid_filter(self):
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1.0), pid_filter={7}
        )
        monitor.on_event(event(0.0, 1, pid=7))
        monitor.on_event(event(1e-6, 2, pid=8))
        monitor.flush()
        assert [e.start for e in recorder.transactions[0].events] == [1]
        assert monitor.stats.events_filtered == 1

    def test_pgid_filter(self):
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1.0), pgid_filter={100}
        )
        monitor.on_event(event(0.0, 1, pgid=100))
        monitor.on_event(event(1e-6, 2, pgid=200))
        monitor.flush()
        assert len(recorder.transactions[0]) == 1

    def test_no_filter_passes_everything(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1.0))
        monitor.on_event(event(0.0, 1, pid=1))
        monitor.on_event(event(1e-6, 2, pid=9999))
        monitor.flush()
        assert len(recorder.transactions[0]) == 2


class TestStatsAndSinks:
    def test_stats_counters(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1e-3))
        monitor.on_event(event(0.0, 1))
        monitor.on_event(event(5e-3, 2))
        monitor.flush()
        stats = monitor.stats
        assert stats.events_seen == 2
        assert stats.transactions_emitted == 2
        assert stats.singleton_transactions == 2

    def test_multiple_sinks_both_called(self):
        first, second = TransactionRecorder(), TransactionRecorder()
        monitor = Monitor(window=StaticWindow(1.0), sinks=[first])
        monitor.add_sink(second)
        monitor.on_event(event(0.0, 1))
        monitor.flush()
        assert len(first) == 1 and len(second) == 1

    def test_flush_idempotent(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1.0))
        monitor.on_event(event(0.0, 1))
        monitor.flush()
        monitor.flush()
        assert len(recorder) == 1

    def test_recorder_extent_transactions(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1.0))
        monitor.on_event(event(0.0, 5, 4))
        monitor.flush()
        extent_lists = recorder.extent_transactions()
        assert len(extent_lists) == 1
        assert extent_lists[0][0].start == 5


class TestClockAnomalies:
    """Regression tests for non-monotonic timestamp input.

    The full policy matrix lives in tests/test_resilience.py; these pin
    the default behaviour so a refactor cannot silently regress it.
    """

    def test_backwards_timestamp_within_window_is_kept(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1e-3))
        monitor.on_event(event(0.0, 1))
        monitor.on_event(event(5e-4, 2))
        monitor.on_event(event(3e-4, 3))  # delivered late, same burst
        monitor.flush()
        assert len(recorder) == 1
        assert len(recorder.transactions[0]) == 3
        assert monitor.stats.clock_anomalies == 1
        assert monitor.stats.events_reordered == 1

    def test_large_backwards_jump_resets_the_window(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1e-3))
        monitor.on_event(event(100.0, 1))
        monitor.on_event(event(0.0, 2))  # clock went backwards
        monitor.flush()
        assert len(recorder) == 2  # both events delivered, split apart
        assert monitor.stats.window_resets == 1

    def test_degenerate_window_duration_is_clamped(self):
        class NegativeWindow(StaticWindow):
            def duration(self):
                return -1.0

        monitor, recorder = collecting_monitor(window=NegativeWindow(1.0))
        monitor.on_event(event(0.0, 1))
        monitor.on_event(event(1e-6, 2))  # any positive gap closes now
        monitor.flush()
        assert len(recorder) == 2
        assert monitor.stats.window_clamps > 0
