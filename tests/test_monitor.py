"""Tests for the monitoring module (paper Section III-C)."""

import pytest

from repro.monitor.events import BlockIOEvent
from repro.monitor.monitor import GroupingMode, Monitor, TransactionRecorder
from repro.monitor.window import DynamicLatencyWindow, StaticWindow
from repro.trace.record import OpType


def event(ts, start=0, length=1, pid=1, pgid=0, latency=None):
    return BlockIOEvent(ts, pid, OpType.READ, start, length,
                        latency=latency, pgid=pgid)


def collecting_monitor(**kwargs):
    recorder = TransactionRecorder()
    monitor = Monitor(sinks=[recorder], **kwargs)
    return monitor, recorder


class TestWindowGrouping:
    def test_gap_grouping(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1e-3))
        for ts, start in [(0.0, 1), (0.5e-3, 2), (10e-3, 3)]:
            monitor.on_event(event(ts, start))
        monitor.flush()
        assert len(recorder) == 2
        assert [e.start for e in recorder.transactions[0].events] == [1, 2]
        assert [e.start for e in recorder.transactions[1].events] == [3]

    def test_gap_mode_chains_bursts(self):
        """In GAP mode a chain of sub-window gaps stays in one transaction
        even when its total span exceeds the window."""
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1e-3), grouping=GroupingMode.GAP
        )
        for i in range(5):
            monitor.on_event(event(i * 0.9e-3, i))
        monitor.flush()
        assert len(recorder) == 1

    def test_fixed_mode_bounds_span(self):
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1e-3), grouping=GroupingMode.FIXED
        )
        for i in range(5):
            monitor.on_event(event(i * 0.9e-3, i))
        monitor.flush()
        assert len(recorder) > 1
        for txn in recorder.transactions:
            assert txn.span <= 1e-3 + 1e-12

    def test_dynamic_window_reacts_to_latency(self):
        """Once measured latencies shrink, the window shrinks and the same
        arrival pattern splits into more transactions."""
        window = DynamicLatencyWindow(floor=1e-7)
        monitor, recorder = collecting_monitor(window=window)
        # Feed fast latencies so the EWMA settles near 10 us -> window 20 us.
        for i in range(50):
            monitor.on_event(event(i * 1e-4, i, latency=10e-6))
        monitor.flush()
        # 100 us gaps exceed the 20 us window: every event is its own txn.
        assert len(recorder) == 50


class TestSizeCap:
    def test_overflow_starts_new_transaction(self):
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1.0), max_transaction_size=3
        )
        for i in range(7):
            monitor.on_event(event(i * 1e-6, i))
        monitor.flush()
        sizes = [len(txn) for txn in recorder.transactions]
        assert sizes == [3, 3, 1]
        assert monitor.stats.size_splits == 2

    def test_default_cap_is_paper_value(self):
        monitor = Monitor()
        assert monitor.max_transaction_size == 8

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            Monitor(max_transaction_size=0)


class TestDedup:
    def test_duplicates_removed_within_transaction(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1.0))
        monitor.on_event(event(0.0, 5, 4))
        monitor.on_event(event(1e-6, 5, 4))
        monitor.on_event(event(2e-6, 9, 1))
        monitor.flush()
        assert len(recorder.transactions[0]) == 2
        assert monitor.stats.duplicates_removed == 1

    def test_dedup_can_be_disabled(self):
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1.0), dedup=False
        )
        monitor.on_event(event(0.0, 5))
        monitor.on_event(event(1e-6, 5))
        monitor.flush()
        assert len(recorder.transactions[0]) == 2


class TestFilters:
    def test_pid_filter(self):
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1.0), pid_filter={7}
        )
        monitor.on_event(event(0.0, 1, pid=7))
        monitor.on_event(event(1e-6, 2, pid=8))
        monitor.flush()
        assert [e.start for e in recorder.transactions[0].events] == [1]
        assert monitor.stats.events_filtered == 1

    def test_pgid_filter(self):
        monitor, recorder = collecting_monitor(
            window=StaticWindow(1.0), pgid_filter={100}
        )
        monitor.on_event(event(0.0, 1, pgid=100))
        monitor.on_event(event(1e-6, 2, pgid=200))
        monitor.flush()
        assert len(recorder.transactions[0]) == 1

    def test_no_filter_passes_everything(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1.0))
        monitor.on_event(event(0.0, 1, pid=1))
        monitor.on_event(event(1e-6, 2, pid=9999))
        monitor.flush()
        assert len(recorder.transactions[0]) == 2


class TestStatsAndSinks:
    def test_stats_counters(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1e-3))
        monitor.on_event(event(0.0, 1))
        monitor.on_event(event(5e-3, 2))
        monitor.flush()
        stats = monitor.stats
        assert stats.events_seen == 2
        assert stats.transactions_emitted == 2
        assert stats.singleton_transactions == 2

    def test_multiple_sinks_both_called(self):
        first, second = TransactionRecorder(), TransactionRecorder()
        monitor = Monitor(window=StaticWindow(1.0), sinks=[first])
        monitor.add_sink(second)
        monitor.on_event(event(0.0, 1))
        monitor.flush()
        assert len(first) == 1 and len(second) == 1

    def test_flush_idempotent(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1.0))
        monitor.on_event(event(0.0, 1))
        monitor.flush()
        monitor.flush()
        assert len(recorder) == 1

    def test_recorder_extent_transactions(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1.0))
        monitor.on_event(event(0.0, 5, 4))
        monitor.flush()
        extent_lists = recorder.extent_transactions()
        assert len(extent_lists) == 1
        assert extent_lists[0][0].start == 5


class TestClockAnomalies:
    """Regression tests for non-monotonic timestamp input.

    The full policy matrix lives in tests/test_resilience.py; these pin
    the default behaviour so a refactor cannot silently regress it.
    """

    def test_backwards_timestamp_within_window_is_kept(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1e-3))
        monitor.on_event(event(0.0, 1))
        monitor.on_event(event(5e-4, 2))
        monitor.on_event(event(3e-4, 3))  # delivered late, same burst
        monitor.flush()
        assert len(recorder) == 1
        assert len(recorder.transactions[0]) == 3
        assert monitor.stats.clock_anomalies == 1
        assert monitor.stats.events_reordered == 1

    def test_large_backwards_jump_resets_the_window(self):
        monitor, recorder = collecting_monitor(window=StaticWindow(1e-3))
        monitor.on_event(event(100.0, 1))
        monitor.on_event(event(0.0, 2))  # clock went backwards
        monitor.flush()
        assert len(recorder) == 2  # both events delivered, split apart
        assert monitor.stats.window_resets == 1

    def test_degenerate_window_duration_is_clamped(self):
        class NegativeWindow(StaticWindow):
            def duration(self):
                return -1.0

        monitor, recorder = collecting_monitor(window=NegativeWindow(1.0))
        monitor.on_event(event(0.0, 1))
        monitor.on_event(event(1e-6, 2))  # any positive gap closes now
        monitor.flush()
        assert len(recorder) == 2
        assert monitor.stats.window_clamps > 0


class TestBatchSingleParity:
    """``on_event`` and ``on_events`` share one ingest core.

    Regression tests for the counter-drift class of bug: with two
    hand-maintained copies of the ingest loop, a stats update added to
    one path but not the other silently skews ``MonitorStats``
    depending on how events are fed.  Both entry points now delegate to
    ``Monitor._ingest``, so identical input must produce identical
    stats, whatever the batching.
    """

    @staticmethod
    def awkward_stream():
        """A stream that trips every counter at least once."""
        stream = []
        clock = 0.0
        for round_index in range(8):
            base = 100 * round_index
            stream.append(event(clock, base, latency=5e-4))
            stream.append(event(clock + 1e-5, base + 1, latency=5e-4))
            stream.append(event(clock + 2e-5, base + 1))   # duplicate
            stream.append(event(clock + 5e-6, base + 2))   # reordered
            stream.append(event(clock + 3e-5, base + 3, pid=99))  # filtered
            clock += 0.05
        stream.append(event(0.0, 999))  # huge backwards jump: window reset
        for index in range(12):  # size-cap splits (cap is 8 below)
            stream.append(event(clock + index * 1e-6, 2000 + index))
        clock += 0.05
        for index in range(4):  # latency spike: the window turns degenerate
            stream.append(
                event(clock + index * 1e-4, 3000 + index, latency=1.0)
            )
        return stream

    @staticmethod
    def run_monitor(feed):
        class SometimesDegenerate(DynamicLatencyWindow):
            def duration(self):
                duration = super().duration()
                return -1.0 if duration > 1e-2 else duration

        monitor, recorder = collecting_monitor(
            window=SometimesDegenerate(),
            max_transaction_size=8,
            pid_filter={1},
        )
        feed(monitor)
        monitor.flush()
        return monitor, recorder

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 7, 1000])
    def test_identical_stats_for_any_batching(self, batch_size):
        stream = self.awkward_stream()

        def per_event(monitor):
            for item in stream:
                monitor.on_event(item)

        def batched(monitor):
            for start in range(0, len(stream), batch_size):
                monitor.on_events(stream[start:start + batch_size])

        single_monitor, single_recorder = self.run_monitor(per_event)
        batch_monitor, batch_recorder = self.run_monitor(batched)

        assert batch_monitor.stats.as_dict() == \
            single_monitor.stats.as_dict()
        assert [t.extents for t in batch_recorder.transactions] == \
            [t.extents for t in single_recorder.transactions]

    def test_stream_actually_exercises_every_counter(self):
        monitor, _recorder = self.run_monitor(
            lambda m: m.on_events(self.awkward_stream())
        )
        stats = monitor.stats.as_dict()
        exercised = [
            "events_seen", "events_filtered", "duplicates_removed",
            "size_splits", "clock_anomalies", "events_reordered",
            "window_resets", "window_clamps", "transactions_emitted",
        ]
        for name in exercised:
            assert stats[name] > 0, f"stream never tripped {name}"
