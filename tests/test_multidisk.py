"""Tests for multi-disk trace handling."""

import pytest

from repro.blkdev.device import SsdDevice
from repro.blkdev.multidisk import (
    rank_disks,
    replay_multidisk,
    split_by_disk,
)
from repro.trace.record import OpType, TraceRecord


def multi_trace():
    records = []
    for i in range(12):
        records.append(TraceRecord(i * 0.01, 1, OpType.READ,
                                   i * 8, 8, disk_id=0))
    for i in range(4):
        records.append(TraceRecord(i * 0.03, 1, OpType.WRITE,
                                   1000 + i * 8, 16, disk_id=1))
    records.sort(key=lambda record: record.timestamp)
    return records


class TestSplitAndRank:
    def test_split_by_disk(self):
        disks = split_by_disk(multi_trace())
        assert set(disks) == {0, 1}
        assert len(disks[0]) == 12
        assert len(disks[1]) == 4

    def test_rank_disks_busiest_first(self):
        summaries = rank_disks(multi_trace())
        assert summaries[0].disk_id == 0
        assert summaries[0].requests == 12
        assert summaries[0].request_share == pytest.approx(0.75)
        assert summaries[1].request_share == pytest.approx(0.25)

    def test_paper_methodology_selects_busiest(self):
        """The paper replays 'the disk with the greatest number of
        requests' -- which the ranking makes a one-liner."""
        from repro.trace.filter import filter_by_disk
        records = multi_trace()
        busiest = rank_disks(records)[0].disk_id
        selected = filter_by_disk(records, busiest)
        assert len(selected) == 12

    def test_empty_trace(self):
        assert rank_disks([]) == []
        assert split_by_disk([]) == {}


class TestReplayMultidisk:
    def test_events_in_global_arrival_order(self):
        result = replay_multidisk(multi_trace())
        times = [event.timestamp for event in result.events]
        assert times == sorted(times)
        assert result.request_count == 16

    def test_disks_serve_independently(self):
        """Saturating disk 0 must not delay disk 1's requests."""
        records = []
        for i in range(50):
            records.append(TraceRecord(i * 1e-6, 1, OpType.READ,
                                       i * 8, 2048, disk_id=0))
        records.append(TraceRecord(25e-6, 1, OpType.READ, 0, 8, disk_id=1))
        result = replay_multidisk(
            records, device_factory=lambda disk: SsdDevice(seed=disk,
                                                           jitter=0.0)
        )
        disk1_events = [e for e in result.events
                        if e.start == 0 and e.length == 8]
        assert disk1_events
        # Disk 1 was idle: its latency is a bare service time (< 1 ms),
        # while disk 0's later requests queue far beyond that.
        assert disk1_events[0].latency < 1e-3
        disk0_last = result.events[-1]
        assert disk0_last.latency > disk1_events[0].latency

    def test_custom_factory_called_per_disk(self):
        created = []

        def factory(disk_id):
            created.append(disk_id)
            return SsdDevice(seed=disk_id)

        replay_multidisk(multi_trace(), device_factory=factory)
        assert sorted(created) == [0, 1]

    def test_listeners_and_speedup(self):
        seen = []
        result = replay_multidisk(multi_trace(), listeners=[seen.append],
                                  speedup=10.0, collect=False)
        assert len(seen) == 16
        assert result.events == []
        assert max(e.timestamp for e in seen) < 0.02

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            replay_multidisk([], speedup=0.0)


class TestWearReport:
    def test_wear_tracking(self):
        from repro.optimize.multistream import FlashConfig, MultiStreamSsd
        config = FlashConfig(erase_units=16, pages_per_eu=16,
                             streams=4, overprovision_eus=4)
        device = MultiStreamSsd(config)
        logical = config.logical_capacity_pages
        for _round in range(4):
            for lba in range(logical):
                device.write(lba)
        report = device.wear_report()
        assert report.total_erases == device.stats.erases
        assert report.max_erases >= 1
        assert report.imbalance >= 1.0
        assert len(report.erase_counts) == 16

    def test_fresh_device_has_level_wear(self):
        from repro.optimize.multistream import FlashConfig, MultiStreamSsd
        device = MultiStreamSsd(FlashConfig(erase_units=16, pages_per_eu=16,
                                            streams=4, overprovision_eus=4))
        report = device.wear_report()
        assert report.total_erases == 0
        assert report.imbalance == 1.0
