"""Tests for the multi-stream SSD GC optimization (paper §V-1)."""

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.optimize.multistream import (
    CorrelationStreamAssigner,
    FlashConfig,
    MultiStreamSsd,
    SingleStreamAssigner,
    run_waf_experiment,
)

from conftest import ext


def small_flash(streams=4):
    return FlashConfig(erase_units=16, pages_per_eu=32, streams=streams,
                       overprovision_eus=4)


class TestFlashModel:
    def test_write_and_mapping(self):
        device = MultiStreamSsd(small_flash())
        device.write(5)
        device.write(5)  # overwrite invalidates the first copy
        assert device.stats.host_writes == 2
        assert sum(device.valid_page_histogram()) == 1

    def test_stream_bounds_validated(self):
        device = MultiStreamSsd(small_flash(streams=2))
        with pytest.raises(ValueError):
            device.write(0, stream=2)
        with pytest.raises(ValueError):
            device.write(0, stream=-1)

    def test_streams_fill_distinct_erase_units(self):
        device = MultiStreamSsd(small_flash())
        for lba in range(10):
            device.write(lba, stream=0)
        for lba in range(100, 110):
            device.write(lba, stream=1)
        histogram = device.valid_page_histogram()
        populated = [count for count in histogram if count > 0]
        assert len(populated) == 2  # one open EU per stream

    def test_gc_reclaims_space(self):
        config = small_flash()
        device = MultiStreamSsd(config)
        logical = config.logical_capacity_pages
        # Three full overwrite rounds force garbage collection.
        for _round in range(3):
            for lba in range(logical):
                device.write(lba)
        assert device.stats.erases > 0
        assert device.stats.waf >= 1.0

    def test_capacity_limit_enforced(self):
        config = small_flash()
        device = MultiStreamSsd(config)
        logical = config.logical_capacity_pages
        for lba in range(logical):
            device.write(lba)
        with pytest.raises(RuntimeError):
            device.write(logical + 1)

    def test_write_extent_covers_pages(self):
        device = MultiStreamSsd(small_flash())
        device.write_extent(ext(0, 17), page_blocks=8)  # blocks 0..16 -> 3 pages
        assert device.stats.host_writes == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FlashConfig(erase_units=1)
        with pytest.raises(ValueError):
            FlashConfig(streams=0)
        with pytest.raises(ValueError):
            FlashConfig(overprovision_eus=64, erase_units=64)


class TestAssigners:
    def _write_transactions(self, groups=4, rounds=30):
        """Each group's two extents are always (over)written together."""
        transactions = []
        for round_index in range(rounds):
            group = round_index % groups
            base = group * 10000
            transactions.append([ext(base, 32), ext(base + 5000, 32)])
        return transactions

    def _trained_analyzer(self, transactions):
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=64, correlation_capacity=64)
        )
        analyzer.process_stream(transactions)
        return analyzer

    def test_single_stream_constant(self):
        assigner = SingleStreamAssigner()
        assert assigner.assign(ext(1)) == 0
        assert assigner.assign(ext(999999)) == 0

    def test_correlation_assigner_groups_partners(self):
        transactions = self._write_transactions()
        analyzer = self._trained_analyzer(transactions)
        assigner = CorrelationStreamAssigner(analyzer, streams=8)
        assert assigner.clusters >= 4
        for extents in transactions[:4]:
            first, second = extents
            assert assigner.assign(first) == assigner.assign(second)
            assert assigner.assign(first) != 0  # clusters avoid stream 0

    def test_unknown_extent_falls_back_to_stream_zero(self):
        analyzer = self._trained_analyzer(self._write_transactions())
        assigner = CorrelationStreamAssigner(analyzer, streams=8)
        assert assigner.assign(ext(123456789)) == 0

    def test_needs_two_streams(self):
        analyzer = self._trained_analyzer(self._write_transactions())
        with pytest.raises(ValueError):
            CorrelationStreamAssigner(analyzer, streams=1)


class TestWafExperiment:
    def test_workload_generator_shape(self):
        from repro.optimize.multistream import death_time_workload
        transactions = death_time_workload(hot_groups=3, rounds=30,
                                           cold_extents=20, warm_batch=0,
                                           seed=1)
        hot = [t for t in transactions if t[0].start < 3 * 10_000_000]
        cold = [t for t in transactions if t[0].start >= 4 * 10_000_000]
        assert len(hot) == 30
        assert sum(len(t) for t in cold) == 20
        # With warm refresh off, cold extents are written exactly once.
        seen = [e for t in cold for e in t]
        assert len(seen) == len(set(seen))

    def test_warm_refresh_rewrites_cold_extents(self):
        from repro.optimize.multistream import death_time_workload
        transactions = death_time_workload(hot_groups=3, rounds=60,
                                           cold_extents=20, warm_batch=4,
                                           seed=1)
        cold = [e for t in transactions for e in t
                if e.start >= 4 * 10_000_000]
        assert len(cold) > len(set(cold))  # some extents rewritten

    def test_correlation_streams_reduce_waf(self):
        """The §V-1 headline: separating death-time-correlated hot writes
        from immortal cold writes lowers WAF versus a single append point."""
        from repro.optimize.multistream import death_time_workload
        transactions = death_time_workload(
            hot_groups=4, extent_blocks=64, rounds=240,
            cold_extents=180, seed=2,
        )
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=256, correlation_capacity=256)
        )
        analyzer.process_stream(transactions)

        config = FlashConfig(erase_units=32, pages_per_eu=16,
                             streams=8, overprovision_eus=6)
        single = run_waf_experiment(
            transactions, SingleStreamAssigner(), config
        )
        streamed = run_waf_experiment(
            transactions, CorrelationStreamAssigner(analyzer, 8), config
        )
        assert single.host_writes == streamed.host_writes
        assert single.waf > 1.05       # the baseline genuinely amplifies
        assert streamed.waf < single.waf
