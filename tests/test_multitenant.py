"""Tests for multi-tenant workload composition."""

import pytest

from repro.monitor.monitor import Monitor, TransactionRecorder
from repro.monitor.window import StaticWindow
from repro.pipeline import run_pipeline
from repro.trace.record import OpType, TraceRecord
from repro.workloads.multitenant import (
    check_disjoint_volumes,
    make_tenant,
    merge_tenants,
    shared_workload,
    tenant_address_ranges,
)


def trace(count=10, gap=0.01, start=0):
    return [
        TraceRecord(i * gap, 99, OpType.READ, start + i * 8, 8)
        for i in range(count)
    ]


class TestMakeTenant:
    def test_rebasing(self):
        tenant = make_tenant("a", trace(3), pid=42, block_offset=1000,
                             time_offset=5.0)
        assert all(record.pid == 42 for record in tenant.records)
        assert tenant.records[0].start == 1000
        assert tenant.records[0].timestamp == pytest.approx(5.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            make_tenant("a", [], pid=1)


class TestMergeAndRanges:
    def test_merged_sorted_by_time(self):
        a = make_tenant("a", trace(5, gap=0.02), pid=1)
        b = make_tenant("b", trace(5, gap=0.02), pid=2,
                        block_offset=10_000, time_offset=0.01)
        merged = merge_tenants([a, b])
        times = [record.timestamp for record in merged]
        assert times == sorted(times)
        assert len(merged) == 10

    def test_address_ranges(self):
        a = make_tenant("a", trace(3), pid=1)
        ranges = tenant_address_ranges([a])
        assert ranges["a"] == (0, 24)

    def test_disjoint_check(self):
        a = make_tenant("a", trace(3), pid=1)
        b = make_tenant("b", trace(3), pid=2, block_offset=1000)
        overlapping = make_tenant("c", trace(3), pid=3, block_offset=8)
        assert check_disjoint_volumes([a, b])
        assert not check_disjoint_volumes([a, overlapping])

    def test_merge_requires_tenants(self):
        with pytest.raises(ValueError):
            merge_tenants([])


class TestSharedWorkload:
    def test_layout_is_disjoint_with_distinct_pids(self):
        merged, tenants = shared_workload([
            ("web", trace(20)),
            ("db", trace(20)),
            ("batch", trace(20)),
        ])
        assert len(merged) == 60
        assert check_disjoint_volumes(tenants)
        assert len({tenant.pid for tenant in tenants}) == 3

    def test_pid_filter_isolates_one_tenant(self):
        """The monitor's PID filter (Section III-C) must recover exactly
        one tenant's requests from the shared stream."""
        merged, tenants = shared_workload([
            ("web", trace(30, gap=0.001)),
            ("db", trace(30, gap=0.001)),
        ])
        target = tenants[1]
        result = run_pipeline(merged, pid_filter={target.pid})
        low, high = tenant_address_ranges([target])[target.name]
        for transaction in result.recorder.transactions:
            for event in transaction.events:
                assert low <= event.start < high

    def test_inter_tenant_correlations_visible_without_filter(self):
        """Two tenants whose requests always arrive together form
        inter-tenant correlations at the block layer -- detectable only
        because the monitor sees the shared stream."""
        web = [TraceRecord(i * 0.01, 0, OpType.READ, 100, 8)
               for i in range(30)]
        db = [TraceRecord(i * 0.01 + 1e-5, 0, OpType.READ, 100, 8)
              for i in range(30)]
        merged, tenants = shared_workload([("web", web), ("db", db)])
        result = run_pipeline(merged, window=StaticWindow(1e-3))
        detected = [p for p, _t in result.frequent_pairs(min_support=10)]
        assert detected  # the cross-tenant pair is frequent
        pair = detected[0]
        ranges = tenant_address_ranges(tenants)
        web_low, web_high = ranges["web"]
        db_low, db_high = ranges["db"]
        members = sorted([pair.first.start, pair.second.start])
        assert web_low <= members[0] < web_high
        assert db_low <= members[1] < db_high
