"""The cross-process observability plane (ISSUE 8).

Covers the four tentpole pieces and their seams:

* trace propagation -- context codecs, sampling with slow exemplars,
  and the acceptance test: one client request produces a *linked* span
  tree across three processes (client -> server worker -> shard worker);
* worker metrics aggregation -- shard-process counters surfacing in the
  parent registry (and in ``/metrics``) under ``shard=N`` labels, plus
  clean deregistration on release (satellite 1);
* the ops HTTP sidecar -- ``/metrics``, ``/healthz``, ``/readyz``
  (including the 503 -> 200 flip around recovery and promotion), and
  ``/vars``;
* structured logging -- JSON lines carrying trace correlation;
* tenant-labelled server latency/error metrics behind a bounded
  cardinality guard (satellite 2).
"""

import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import AnalyzerConfig
from repro.engine.procshard import ProcessShardedAnalyzer
from repro.monitor.batch import TransactionBatch
from repro.server.client import CharacterizationClient
from repro.server.metrics import TENANT_OVERFLOW, ServerMetrics, \
    TenantLabelGuard
from repro.server.server import CharacterizationServer, ServerThread
from repro.server.supervisor import Supervisor, WarmStandby, WorkerConfig
from repro.telemetry import (
    JsonLogger,
    MetricsRegistry,
    OpsServer,
    TraceContext,
    TraceLog,
    configure_logging,
    current_context,
    get_logger,
    histogram_quantile,
    install_tracelog,
    merge_worker_snapshot,
    read_trace_records,
    render_prometheus,
    snapshot,
    snapshot_value,
    trace_span,
    use_context,
)

from test_procshard import make_batches
from test_server import hot_events, make_server
from test_telemetry import parse_prometheus


@pytest.fixture(autouse=True)
def _no_leaked_tracelog():
    """Every test leaves the process-wide trace sink as it found it."""
    previous = install_tracelog(None)
    yield
    install_tracelog(previous)


def http_get(url, timeout=5.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


# ---------------------------------------------------------------------------
# Trace contexts and the NDJSON span log
# ---------------------------------------------------------------------------

class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext.new_trace(sampled=True)
        back = TraceContext.from_wire(ctx.to_wire())
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id
        assert back.sampled is True

    def test_tuple_round_trip(self):
        ctx = TraceContext.new_trace(sampled=False).child()
        back = TraceContext.from_tuple(ctx.to_tuple())
        assert (back.trace_id, back.span_id) == (ctx.trace_id, ctx.span_id)
        assert back.sampled is False

    @pytest.mark.parametrize("garbage", [
        None, 17, "nope", [], {}, {"tid": 5, "sid": "x"},
        {"tid": "a"}, ("a",), ("a", "b", True, "extra"),
    ])
    def test_malformed_decodes_to_none(self, garbage):
        assert TraceContext.from_wire(garbage) is None
        assert TraceContext.from_tuple(garbage) is None

    def test_child_keeps_trace_and_sampling(self):
        root = TraceContext.new_trace(sampled=True)
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        assert child.sampled is True

    def test_ambient_context_nests_and_restores(self):
        assert current_context() is None
        outer = TraceContext.new_trace()
        inner = outer.child()
        with use_context(outer):
            assert current_context() is outer
            with use_context(inner):
                assert current_context() is inner
            assert current_context() is outer
        assert current_context() is None


class TestTraceLog:
    def make_log(self, tmp_path, **kw):
        return TraceLog(str(tmp_path / "trace.ndjson"), **kw)

    def test_sampled_span_is_recorded_with_linkage(self, tmp_path):
        log = self.make_log(tmp_path, sample_rate=1.0)
        with log.span("outer", tags={"k": "v"}) as outer:
            with log.span("inner"):
                pass
        log.close()
        records = {r["name"]: r for r in read_trace_records(log.path)}
        assert set(records) == {"outer", "inner"}
        assert records["inner"]["trace_id"] == records["outer"]["trace_id"]
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["outer"]["tags"] == {"k": "v"}
        assert records["outer"]["pid"] == os.getpid()
        assert outer.context.sampled

    def test_unsampled_fast_span_is_dropped(self, tmp_path):
        log = self.make_log(tmp_path, sample_rate=0.0)
        with log.span("quick"):
            pass
        assert log.records_written == 0
        assert read_trace_records(log.path) == []

    def test_slow_exemplar_recorded_despite_sampling(self, tmp_path):
        ticks = iter([0.0, 10.0])  # perf: start, end -> 10s elapsed
        log = self.make_log(tmp_path, sample_rate=0.0, slow_threshold=0.5,
                            perf=lambda: next(ticks))
        with log.span("glacial"):
            pass
        (record,) = read_trace_records(log.path)
        assert record["name"] == "glacial"
        assert record["slow"] is True
        assert record["duration"] == pytest.approx(10.0)

    def test_error_span_recorded_and_tagged(self, tmp_path):
        log = self.make_log(tmp_path, sample_rate=0.0)
        with pytest.raises(ValueError):
            with log.span("doomed"):
                raise ValueError("boom")
        (record,) = read_trace_records(log.path)
        assert record["tags"]["error"] == "ValueError"

    def test_trace_span_helper_requires_installed_sink(self, tmp_path):
        with trace_span("noop") as span:
            assert span.context is None  # the shared NULL_SPAN
        log = self.make_log(tmp_path, sample_rate=1.0)
        install_tracelog(log)
        with trace_span("real") as span:
            assert span.context is not None
        # require_parent: no ambient context -> no span, no new root
        assert trace_span("interior", require_parent=True).context is None
        with use_context(TraceContext.new_trace(sampled=True)):
            assert trace_span("interior",
                              require_parent=True).context is not None

    def test_torn_lines_are_skipped_on_read(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        good = json.dumps({"name": "ok", "trace_id": "t", "span_id": "s"})
        path.write_text(good + "\n{\"torn\": \n" + good + "\n")
        assert len(read_trace_records(str(path))) == 2


# ---------------------------------------------------------------------------
# Structured JSON logging
# ---------------------------------------------------------------------------

class TestJsonLogger:
    def test_records_are_json_with_standard_fields(self, capsys):
        import io
        stream = io.StringIO()
        configure_logging(stream=stream, min_level="debug")
        try:
            log = get_logger("unit", zone="a")
            log.info("unit.event", answer=42)
            record = json.loads(stream.getvalue())
        finally:
            configure_logging(stream=None, min_level="info")
        assert record["component"] == "unit"
        assert record["event"] == "unit.event"
        assert record["level"] == "info"
        assert record["answer"] == 42
        assert record["zone"] == "a"
        assert record["pid"] == os.getpid()
        assert "ts" in record

    def test_trace_ids_attached_from_ambient_context(self):
        import io
        stream = io.StringIO()
        configure_logging(stream=stream, min_level="info")
        try:
            ctx = TraceContext.new_trace(sampled=True)
            with use_context(ctx):
                get_logger("unit").warning("traced.event")
            record = json.loads(stream.getvalue())
        finally:
            configure_logging(stream=None, min_level="info")
        assert record["trace_id"] == ctx.trace_id
        assert record["span_id"] == ctx.span_id

    def test_min_level_filters(self):
        import io
        stream = io.StringIO()
        configure_logging(stream=stream, min_level="warning")
        try:
            log = JsonLogger("unit")
            log.info("dropped")
            log.error("kept")
        finally:
            configure_logging(stream=None, min_level="info")
        lines = [json.loads(line) for line in
                 stream.getvalue().splitlines()]
        assert [r["event"] for r in lines] == ["kept"]


# ---------------------------------------------------------------------------
# Registry aggregation: merge, quantiles, deregistration
# ---------------------------------------------------------------------------

class TestAggregation:
    def worker_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_worker_ops_total", "ops").inc(7)
        registry.gauge("repro_worker_depth", "depth").set(3)
        hist = registry.histogram("repro_worker_latency_seconds", "lat",
                                  buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        return registry.snapshot()

    def test_merge_adds_shard_label_and_values(self):
        parent = MetricsRegistry()
        touched = merge_worker_snapshot(parent, self.worker_snapshot(),
                                        shard=2)
        assert touched
        assert snapshot_value(snapshot(parent), "repro_worker_ops_total",
                              {"shard": "2"}) == 7
        assert snapshot_value(snapshot(parent), "repro_worker_depth",
                              {"shard": "2"}) == 3
        snap = snapshot(parent)["metrics"]["repro_worker_latency_seconds"]
        (sample,) = snap["samples"]
        assert sample["labels"] == {"shard": "2"}
        assert sample["count"] == 3
        assert sample["buckets"]["+Inf"] == 3

    def test_merge_is_idempotent_per_snapshot(self):
        parent = MetricsRegistry()
        snap = self.worker_snapshot()
        merge_worker_snapshot(parent, snap, shard=0)
        merge_worker_snapshot(parent, snap, shard=0)  # newest wins, no 2x
        assert snapshot_value(snapshot(parent), "repro_worker_ops_total",
                              {"shard": "0"}) == 7

    def test_histogram_quantile_interpolates(self):
        buckets = [(0.1, 10), (1.0, 90), (float("inf"), 100)]
        assert histogram_quantile(buckets, 0.05) <= 0.1
        p50 = histogram_quantile(buckets, 0.5)
        assert 0.1 < p50 < 1.0
        # +Inf bucket: clamp to the last finite bound
        assert histogram_quantile(buckets, 0.99) == pytest.approx(1.0)

    def test_deregister_collector_stops_callbacks(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_unit_pull", "pull")

        class Owner:
            calls = 0

            def collect(self):
                Owner.calls += 1
                gauge.set(Owner.calls)

        owner = Owner()
        registry.register_collector(owner.collect)
        registry.snapshot()
        assert Owner.calls == 1
        registry.deregister_collector(owner.collect)
        registry.snapshot()
        assert Owner.calls == 1


# ---------------------------------------------------------------------------
# Worker metrics surface in the parent registry (and /metrics)
# ---------------------------------------------------------------------------

class TestWorkerMetricsAggregation:
    def test_shard_counters_reach_parent_and_exposition(self):
        registry = MetricsRegistry()
        engine = ProcessShardedAnalyzer(
            AnalyzerConfig(item_capacity=64, correlation_capacity=128),
            shards=2, registry=registry)
        try:
            for batch in make_batches(seed=5, count=400, chunk=100):
                engine.process_transaction_batch(batch)
            assert engine.collect_worker_metrics() == 2
            text = render_prometheus(registry)
            samples, _types = parse_prometheus(text)
            by_shard = {
                labels: value for (name, labels), value in samples.items()
                if name == "repro_synopsis_lookups_total"
                and ("table", "items") in labels
            }
            shard_values = {dict(labels)["shard"]: value
                            for labels, value in by_shard.items()
                            if "shard" in dict(labels)}
            assert set(shard_values) == {"0", "1"}
            assert all(value > 0 for value in shard_values.values())
        finally:
            engine.close()

    def test_release_removes_shard_series_and_zeroes_gauges(self):
        """Satellite 1: a closed fleet must not leave stale shard gauges
        or orphaned pull collectors behind in a shared registry."""
        registry = MetricsRegistry()
        engine = ProcessShardedAnalyzer(
            AnalyzerConfig(item_capacity=64, correlation_capacity=128),
            shards=2, registry=registry)
        for batch in make_batches(seed=6, count=200, chunk=100):
            engine.process_transaction_batch(batch)
        assert engine.collect_worker_metrics() == 2
        before = snapshot(registry)["metrics"]
        assert any(
            sample["labels"].get("shard") is not None
            for sample in before["repro_synopsis_lookups_total"]["samples"]
        )
        engine.close()
        after = snapshot(registry)["metrics"]
        assert snapshot_value(snapshot(registry), "repro_engine_shards") == 0
        shard_samples = [
            sample
            for family in after.values()
            for sample in family["samples"]
            if sample["labels"].get("shard") is not None
        ]
        assert shard_samples == []


# ---------------------------------------------------------------------------
# The ops HTTP sidecar
# ---------------------------------------------------------------------------

class TestOpsServer:
    def test_endpoints_and_readiness_flip(self):
        registry = MetricsRegistry()
        registry.counter("repro_unit_total", "unit").inc(5)
        state = {"ready": False}
        with OpsServer(registry=registry, port=0,
                       ready=lambda: (state["ready"], {"why": "warming"}),
                       vars_probe=lambda: {"build": "test"}) as ops:
            base = ops.address
            status, body = http_get(base + "/healthz")
            assert status == 200 and json.loads(body)["status"] == "ok"
            status, body = http_get(base + "/readyz")
            assert status == 503
            assert json.loads(body)["status"] == "unavailable"
            state["ready"] = True
            status, body = http_get(base + "/readyz")
            assert status == 200 and json.loads(body)["status"] == "ready"
            status, body = http_get(base + "/metrics")
            assert status == 200
            samples, types = parse_prometheus(body)
            assert samples[("repro_unit_total", ())] == 5.0
            assert types["repro_unit_total"] == "counter"
            status, body = http_get(base + "/vars")
            payload = json.loads(body)
            assert payload["build"] == "test"
            assert payload["pid"] == os.getpid()
            assert "repro_unit_total" in payload["metrics"]
            status, _body = http_get(base + "/nope")
            assert status == 404

    def test_broken_ready_probe_reads_not_ready(self):
        def explode():
            raise RuntimeError("probe wiring error")

        with OpsServer(registry=MetricsRegistry(), port=0,
                       ready=explode) as ops:
            status, body = http_get(ops.address + "/readyz")
            assert status == 503
            assert "probe wiring error" in body


class TestServerOpsEndpoint:
    def test_server_metrics_and_readyz_over_http(self, tmp_path):
        server = make_server(tmp_path, http_port=0)
        assert server._readiness()[0] is False  # not started yet
        with ServerThread(server) as handle:
            base = server.ops.address
            status, _body = http_get(base + "/healthz")
            assert status == 200
            status, body = http_get(base + "/readyz")
            assert status == 200
            with CharacterizationClient(handle.address) as client:
                client.send_events(hot_events(10))
                client.query_top(k=5, min_support=3)
            status, body = http_get(base + "/metrics")
            samples, _types = parse_prometheus(body)
            frames = {dict(labels).get("type"): value
                      for (name, labels), value in samples.items()
                      if name == "repro_server_frames_total"}
            assert frames.get("BATCH", 0) >= 1
            assert frames.get("QUERY", 0) >= 1
            status, body = http_get(base + "/vars")
            assert json.loads(body)["server"]["ready"] is True
        assert server.ops is None  # shutdown stopped the sidecar
        assert server.ready is False

    def test_promoted_standby_serves_ready(self, tmp_path):
        """After failover, the successor's /readyz must flip to 200 only
        once catch-up finished and its socket is accepting."""
        wal_dir = tmp_path / "wal"
        primary = make_server(tmp_path, wal_dir=str(wal_dir),
                              checkpoint_path=str(tmp_path / "ckpt"))
        with ServerThread(primary) as handle:
            with CharacterizationClient(handle.address) as client:
                client.send_events(hot_events(10))
                client.query_top(k=5, min_support=3)
        standby = WarmStandby(str(wal_dir),
                              checkpoint_path=str(tmp_path / "ckpt"),
                              registry=MetricsRegistry())
        standby.warm_up()
        successor = standby.promote(
            unix_path=str(tmp_path / "successor.sock"),
            registry=MetricsRegistry(), http_port=0)
        assert successor._readiness()[0] is False
        with ServerThread(successor):
            status, body = http_get(successor.ops.address + "/readyz")
            assert status == 200
            assert json.loads(body)["status"] == "ready"
            status, _body = http_get(successor.ops.address + "/healthz")
            assert status == 200


# ---------------------------------------------------------------------------
# Tenant-labelled server metrics with a cardinality guard (satellite 2)
# ---------------------------------------------------------------------------

class TestTenantLabels:
    def test_guard_caps_distinct_values(self):
        guard = TenantLabelGuard(max_values=2)
        assert guard.label("a") == "a"
        assert guard.label("b") == "b"
        assert guard.label("c") == TENANT_OVERFLOW
        assert guard.label("a") == "a"  # established tenants keep theirs
        assert guard.label("") == TENANT_OVERFLOW  # default arrived late

    def test_frame_latency_carries_tenant_label(self):
        registry = MetricsRegistry()
        metrics = ServerMetrics(registry, max_tenant_labels=2)
        metrics.frame("BATCH", 0.01, tenant="acme")
        metrics.frame("BATCH", 0.02, tenant="")
        for flood in range(5):
            metrics.frame("BATCH", 0.01, tenant=f"mint-{flood}")
        metrics.frame_error("bad_request", tenant="acme")
        snap = snapshot(registry)["metrics"]
        latency = snap["repro_server_frame_latency_seconds"]["samples"]
        tenants = {sample["labels"]["tenant"] for sample in latency}
        assert tenants == {"acme", "default", TENANT_OVERFLOW}
        overflow = [sample for sample in latency
                    if sample["labels"]["tenant"] == TENANT_OVERFLOW]
        assert overflow[0]["count"] == 5
        errors = snap["repro_server_frame_errors_total"]["samples"]
        assert errors[0]["labels"] == {"code": "bad_request",
                                      "tenant": "acme"}

    def test_server_end_to_end_labels_by_tenant(self, tmp_path):
        registry = MetricsRegistry()
        with ServerThread(make_server(tmp_path,
                                      registry=registry)) as handle:
            with CharacterizationClient(handle.address,
                                        tenant="blue") as client:
                client.send_events(hot_events(5))
                client.query_top(k=3, min_support=2)
        latency = snapshot(registry)["metrics"][
            "repro_server_frame_latency_seconds"]["samples"]
        assert {"type": "BATCH", "tenant": "blue"} in \
            [sample["labels"] for sample in latency]


# ---------------------------------------------------------------------------
# The acceptance test: one request, one linked tree, three processes
# ---------------------------------------------------------------------------

class TestCrossProcessTrace:
    def _wait_for_socket(self, path, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(path):
                return
            time.sleep(0.02)
        raise AssertionError(f"server socket {path} never appeared")

    def test_span_tree_links_client_server_and_shard(self, tmp_path):
        trace_path = str(tmp_path / "trace.ndjson")
        sock = str(tmp_path / "server.sock")
        config = WorkerConfig(
            unix_path=sock,
            wal_dir=str(tmp_path / "wal"),
            checkpoint_path=str(tmp_path / "ckpt"),
            heartbeat_path=str(tmp_path / "wal" / "heartbeat.json"),
            capacity=4096,
            support=2,
            shards=2,
            shard_processes=True,
            trace_log=trace_path,
            trace_sample_rate=1.0,
        )
        supervisor = Supervisor(config, registry=MetricsRegistry())
        # The client (this process) writes to the same O_APPEND file.
        install_tracelog(TraceLog(trace_path, sample_rate=1.0))
        try:
            supervisor.start()
            self._wait_for_socket(sock)
            with CharacterizationClient(sock, request_deadline=60.0,
                                        tenant="traced") as client:
                client.send_events(hot_events(20))
                client.query_top(k=5, min_support=2)
        finally:
            supervisor.stop()

        records = read_trace_records(trace_path)
        by_span = {r["span_id"]: r for r in records}
        shard_spans = [r for r in records if r["name"] == "shard.apply"]
        assert shard_spans, f"no shard spans in {sorted({r['name'] for r in records})}"

        # Walk one shard span's parent chain back to the client root.
        chain = [shard_spans[0]]
        while chain[-1].get("parent_id"):
            parent = by_span.get(chain[-1]["parent_id"])
            assert parent is not None, \
                f"broken parent link at {chain[-1]['name']}"
            chain.append(parent)
        names = [r["name"] for r in chain]
        assert names[0] == "shard.apply"
        assert names[-1] == "client.request"
        assert "server.frame" in names and "server.ingest" in names
        # One coherent trace across at least three distinct processes.
        assert len({r["trace_id"] for r in chain}) == 1
        pids = {r["pid"] for r in chain}
        assert len(pids) >= 3, f"span tree spans only pids {pids}"
        assert os.getpid() in pids  # the client leg really is this process
