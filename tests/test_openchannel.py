"""Tests for the open-channel parallel I/O optimization (paper §V-2)."""

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.optimize.openchannel import (
    CorrelationPlacement,
    OcssdConfig,
    StripingPlacement,
    run_parallel_read_experiment,
    service_transaction,
)

from conftest import ext


def correlated_reads(pairs=4, rounds=25, stride=0):
    """Pairs that always read together; ``stride=0`` puts both members of
    each pair in the same stripe so striping collides them on one PU."""
    transactions = []
    for round_index in range(rounds):
        which = round_index % pairs
        base = which * 4096
        transactions.append([ext(base, 8), ext(base + 64 + stride, 8)])
    return transactions


def trained_analyzer(transactions):
    analyzer = OnlineAnalyzer(
        AnalyzerConfig(item_capacity=64, correlation_capacity=64)
    )
    analyzer.process_stream(transactions)
    return analyzer


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            OcssdConfig(parallel_units=0)
        with pytest.raises(ValueError):
            OcssdConfig(read_latency=0.0)
        with pytest.raises(ValueError):
            OcssdConfig(stripe_blocks=0)


class TestStriping:
    def test_round_robin_over_stripes(self):
        config = OcssdConfig(parallel_units=4, stripe_blocks=256)
        placement = StripingPlacement(config)
        assert placement.unit_of(ext(0, 8)) == 0
        assert placement.unit_of(ext(256, 8)) == 1
        assert placement.unit_of(ext(4 * 256, 8)) == 0

    def test_same_stripe_same_unit(self):
        config = OcssdConfig(parallel_units=4, stripe_blocks=256)
        placement = StripingPlacement(config)
        assert placement.unit_of(ext(0, 8)) == placement.unit_of(ext(100, 8))


class TestServiceModel:
    def test_parallel_extents_cost_one_read(self):
        config = OcssdConfig(parallel_units=4, read_latency=100e-6)

        class _Spread:
            def unit_of(self, extent):
                return extent.start % 4

        latency = service_transaction(
            [ext(0, 1), ext(1, 1), ext(2, 1)], _Spread(), config
        )
        assert latency == pytest.approx(100e-6)

    def test_colliding_extents_serialise(self):
        config = OcssdConfig(parallel_units=4, read_latency=100e-6)

        class _Collide:
            def unit_of(self, extent):
                return 0

        latency = service_transaction(
            [ext(0, 1), ext(1, 1), ext(2, 1)], _Collide(), config
        )
        assert latency == pytest.approx(300e-6)

    def test_empty_transaction(self):
        config = OcssdConfig()
        latency = service_transaction([], StripingPlacement(config), config)
        assert latency == 0.0


class TestCorrelationPlacement:
    def test_correlated_extents_on_distinct_units(self):
        transactions = correlated_reads()
        analyzer = trained_analyzer(transactions)
        config = OcssdConfig(parallel_units=4)
        placement = CorrelationPlacement(analyzer, config)
        assert placement.placed_extents >= 8
        for extents in transactions[:4]:
            first, second = extents
            assert placement.unit_of(first) != placement.unit_of(second)

    def test_unknown_extent_uses_striping_fallback(self):
        analyzer = trained_analyzer(correlated_reads())
        config = OcssdConfig(parallel_units=4, stripe_blocks=256)
        placement = CorrelationPlacement(analyzer, config)
        stranger = ext(10_000_000, 8)
        assert placement.unit_of(stranger) == (
            StripingPlacement(config).unit_of(stranger)
        )


class TestParallelReadExperiment:
    def test_correlation_placement_beats_collision_prone_striping(self):
        """The §V-2 headline: correlated reads spread over PUs finish
        faster than striping that lands them on the same unit."""
        transactions = correlated_reads()
        analyzer = trained_analyzer(transactions)
        config = OcssdConfig(parallel_units=4, stripe_blocks=4096)
        baseline = run_parallel_read_experiment(
            transactions, StripingPlacement(config), config
        )
        optimized = run_parallel_read_experiment(
            transactions, CorrelationPlacement(analyzer, config), config
        )
        assert optimized.mean_latency < baseline.mean_latency
        assert optimized.parallel_speedup > baseline.parallel_speedup

    def test_stats_accounting(self):
        transactions = correlated_reads(rounds=10)
        config = OcssdConfig(parallel_units=2)
        stats = run_parallel_read_experiment(
            transactions, StripingPlacement(config), config
        )
        assert stats.transactions == 10
        assert stats.total_latency > 0
        assert stats.serialized_latency >= stats.total_latency
