"""Tests for the optimal coverage curve (Fig. 6)."""

import pytest

from repro.analysis.optimal import optimal_curve, power_of_two_sizes

from conftest import pair


def counts_example():
    return {
        pair(1, 2): 50,
        pair(3, 4): 30,
        pair(5, 6): 15,
        pair(7, 8): 4,
        pair(9, 10): 1,
    }


class TestOptimalCurve:
    def test_sorted_descending(self):
        curve = optimal_curve(counts_example())
        assert curve.sorted_counts == (50, 30, 15, 4, 1)
        assert curve.total_frequency == 100

    def test_fraction_for_size(self):
        curve = optimal_curve(counts_example())
        assert curve.fraction_for_size(1) == pytest.approx(0.50)
        assert curve.fraction_for_size(2) == pytest.approx(0.80)
        assert curve.fraction_for_size(3) == pytest.approx(0.95)
        assert curve.fraction_for_size(5) == pytest.approx(1.0)

    def test_fraction_saturates_beyond_population(self):
        curve = optimal_curve(counts_example())
        assert curve.fraction_for_size(10 ** 6) == pytest.approx(1.0)

    def test_fraction_for_zero(self):
        assert optimal_curve(counts_example()).fraction_for_size(0) == 0.0

    def test_fraction_rejects_negative(self):
        with pytest.raises(ValueError):
            optimal_curve(counts_example()).fraction_for_size(-1)

    def test_size_for_fraction(self):
        curve = optimal_curve(counts_example())
        assert curve.size_for_fraction(0.5) == 1
        assert curve.size_for_fraction(0.51) == 2
        assert curve.size_for_fraction(1.0) == 5
        assert curve.size_for_fraction(0.0) == 0

    def test_size_fraction_inverse_relation(self):
        curve = optimal_curve(counts_example())
        for fraction in (0.3, 0.6, 0.9):
            size = curve.size_for_fraction(fraction)
            assert curve.fraction_for_size(size) >= fraction
            if size > 0:
                assert curve.fraction_for_size(size - 1) < fraction

    def test_series(self):
        curve = optimal_curve(counts_example())
        series = curve.series([1, 2, 4])
        assert series == [
            (1, pytest.approx(0.50)),
            (2, pytest.approx(0.80)),
            (4, pytest.approx(0.99)),
        ]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            optimal_curve({})


class TestPowerOfTwoSizes:
    def test_paper_sweep(self):
        """The paper sweeps 16 K through 4 M in powers of two."""
        sizes = power_of_two_sizes(16 * 1024, 4 * 1024 * 1024)
        assert sizes[0] == 16 * 1024
        assert sizes[-1] == 4 * 1024 * 1024
        assert len(sizes) == 9

    def test_min_not_power_of_two(self):
        assert power_of_two_sizes(3, 20) == [4, 8, 16]

    def test_validation(self):
        with pytest.raises(ValueError):
            power_of_two_sizes(0, 8)
        with pytest.raises(ValueError):
            power_of_two_sizes(16, 8)
