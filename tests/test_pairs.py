"""Tests for exact pair counting (the evaluation ground truth)."""

import pytest

from repro.core.extent import ExtentPair
from repro.fim.apriori import apriori
from repro.fim.pairs import (
    exact_extent_counts,
    exact_pair_counts,
    itemsets_to_pair_counts,
    pairs_with_support,
    sorted_by_frequency,
)

from conftest import ext, pair


class TestExactPairCounts:
    def test_known_counts(self, simple_transactions):
        counts = exact_pair_counts(simple_transactions)
        assert counts[pair(10, 20, 1, 2)] == 3
        assert counts[pair(10, 30)] == 2
        assert counts[pair(30, 40, 1, 4)] == 1

    def test_duplicates_in_transaction_count_once(self):
        counts = exact_pair_counts([[ext(1), ext(1), ext(2)]])
        assert counts == {pair(1, 2): 1}

    def test_matches_apriori_pairs(self, simple_transactions):
        """The exact counter and a real FIM implementation must agree on
        every pair at support 1."""
        exact = exact_pair_counts(simple_transactions)
        mined = itemsets_to_pair_counts(
            apriori(simple_transactions, min_support=1, max_size=2)
        )
        assert mined == exact

    def test_empty(self):
        assert exact_pair_counts([]) == {}


class TestExtentCounts:
    def test_known_counts(self, simple_transactions):
        counts = exact_extent_counts(simple_transactions)
        assert counts[ext(10)] == 4
        assert counts[ext(40, 4)] == 2


class TestFilters:
    def test_pairs_with_support(self, simple_transactions):
        counts = exact_pair_counts(simple_transactions)
        frequent = pairs_with_support(counts, 2)
        assert set(frequent) == {pair(10, 20, 1, 2), pair(10, 30)}
        with pytest.raises(ValueError):
            pairs_with_support(counts, 0)

    def test_sorted_by_frequency(self, simple_transactions):
        counts = exact_pair_counts(simple_transactions)
        ordered = sorted_by_frequency(counts)
        tallies = [tally for _p, tally in ordered]
        assert tallies == sorted(tallies, reverse=True)
        assert ordered[0] == (pair(10, 20, 1, 2), 3)

    def test_itemsets_to_pair_counts_skips_non_pairs(self):
        itemsets = {
            frozenset((ext(1),)): 5,
            frozenset((ext(1), ext(2))): 3,
            frozenset((ext(1), ext(2), ext(3))): 2,
        }
        converted = itemsets_to_pair_counts(itemsets)
        assert converted == {pair(1, 2): 3}
        assert isinstance(next(iter(converted)), ExtentPair)
