"""Integration tests: replay -> monitor -> analysis end to end."""

import pytest

from repro.analysis.accuracy import detection_metrics
from repro.blkdev.device import SsdDevice
from repro.core.config import AnalyzerConfig
from repro.fim.pairs import exact_pair_counts
from repro.monitor.window import StaticWindow
from repro.pipeline import characterize, run_pipeline
from repro.workloads.synthetic import (
    SyntheticKind,
    SyntheticSpec,
    generate_synthetic,
)


class TestPipelineOnSynthetic:
    def test_detects_all_planted_correlations(self, small_synthetic):
        records, truth = small_synthetic
        result = run_pipeline(records, device=SsdDevice(seed=2))
        detected = {p for p, _t in result.frequent_pairs(min_support=3)}
        for planted in truth.pairs:
            assert planted in detected

    def test_detected_strength_follows_zipf_rank(self, small_synthetic):
        records, truth = small_synthetic
        result = run_pipeline(records, device=SsdDevice(seed=2))
        frequencies = result.analyzer.pair_frequencies()
        tallies = [frequencies.get(p, 0) for p in truth.pairs]
        assert tallies[0] > tallies[-1]

    def test_online_agrees_with_offline_ground_truth(self, small_synthetic):
        """The dual pipeline of Section IV-A: recorded transactions mined
        offline must rank the same top pairs the synopsis holds."""
        records, truth = small_synthetic
        result = run_pipeline(records, device=SsdDevice(seed=2))
        offline_counts = exact_pair_counts(result.offline_transactions())
        metrics = detection_metrics(
            offline_counts,
            [p for p, _t in result.frequent_pairs(min_support=1)],
            min_support=5,
        )
        assert metrics.weighted_recall > 0.9

    def test_characterize_convenience(self, small_synthetic):
        records, truth = small_synthetic
        top = characterize(records, min_support=5)
        assert top
        assert top[0][0] == truth.pairs[0]

    def test_offline_recording_optional(self, small_synthetic):
        records, _truth = small_synthetic
        result = run_pipeline(records, record_offline=False)
        with pytest.raises(ValueError):
            result.offline_transactions()

    def test_monitor_stats_populated(self, small_synthetic):
        records, _truth = small_synthetic
        result = run_pipeline(records)
        assert result.monitor_stats.events_seen == len(records)
        assert result.monitor_stats.transactions_emitted > 0

    def test_collect_events_flag(self, small_synthetic):
        records, _truth = small_synthetic
        without = run_pipeline(records, collect_events=False)
        assert without.replay.events == []
        with_events = run_pipeline(records, collect_events=True)
        assert len(with_events.replay.events) == len(records)


class TestPipelineKnobs:
    def test_static_window_respected(self, small_synthetic):
        records, _truth = small_synthetic
        result = run_pipeline(records, window=StaticWindow(10.0))
        # A 10-second window glues everything into few giant transactions,
        # which the size cap then splits into 8-request chunks.
        sizes = [len(t) for t in result.recorder.transactions]
        assert max(sizes) <= 8
        assert result.monitor_stats.size_splits > 0

    def test_transaction_size_cap_controls_pair_blowup(self, small_synthetic):
        records, _truth = small_synthetic
        capped = run_pipeline(records, window=StaticWindow(10.0),
                              max_transaction_size=2)
        assert all(len(t) <= 2 for t in capped.recorder.transactions)

    def test_pid_filter_drops_noise(self, small_synthetic):
        """Synthetic noise uses pid 1001; filtering to pid 1000 keeps only
        the planted correlated requests."""
        records, truth = small_synthetic
        result = run_pipeline(records, pid_filter={1000})
        assert result.monitor_stats.events_filtered > 0
        planted_starts = {
            e.start for p in truth.pairs for e in (p.first, p.second)
        }
        for transaction in result.recorder.transactions:
            for event in transaction.events:
                assert event.start in planted_starts

    def test_small_tables_still_find_top_pair(self, small_synthetic):
        records, truth = small_synthetic
        config = AnalyzerConfig(item_capacity=32, correlation_capacity=32)
        result = run_pipeline(records, config=config)
        detected = [p for p, _t in result.frequent_pairs(min_support=3)]
        assert truth.pairs[0] in detected

    def test_speedup_shrinks_wall_time(self, small_synthetic):
        records, _truth = small_synthetic
        slow = run_pipeline(records, device=SsdDevice(seed=3))
        fast = run_pipeline(records, device=SsdDevice(seed=3), speedup=50.0)
        assert fast.replay.wall_time < slow.replay.wall_time


class TestAllSyntheticKinds:
    @pytest.mark.parametrize("kind", list(SyntheticKind), ids=lambda k: k.value)
    def test_each_workload_end_to_end(self, kind):
        spec = SyntheticSpec(kind=kind, duration=20.0, seed=17)
        records, truth = generate_synthetic(spec)
        top = characterize(records, min_support=3)
        detected = {p for p, _t in top}
        # The most popular planted correlation must always be found.
        assert truth.pairs[0] in detected
