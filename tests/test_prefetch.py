"""Tests for correlation-driven prefetching."""

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.optimize.prefetch import (
    BlockCache,
    CorrelationPrefetcher,
    run_cache_experiment,
)

from conftest import ext


def alternating_accesses(pairs=4, rounds=40, length=8):
    """Access streams where A is always followed by its partner B."""
    accesses = []
    for round_index in range(rounds):
        which = round_index % pairs
        base = which * 100000
        accesses.append(ext(base, length))
        accesses.append(ext(base + 50000, length))
    return accesses


def trained_analyzer(accesses):
    analyzer = OnlineAnalyzer(
        AnalyzerConfig(item_capacity=64, correlation_capacity=64)
    )
    for first, second in zip(accesses[::2], accesses[1::2]):
        analyzer.process([first, second])
    return analyzer


class TestBlockCache:
    def test_miss_then_hit(self):
        cache = BlockCache(16)
        assert cache.access(ext(0, 4)) == 0
        assert cache.access(ext(0, 4)) == 4
        assert cache.stats.hits == 4
        assert cache.stats.misses == 4

    def test_lru_eviction(self):
        cache = BlockCache(4)
        cache.access(ext(0, 4))
        cache.access(ext(100, 4))  # evicts blocks 0-3
        assert cache.access(ext(0, 4)) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BlockCache(0)

    def test_prefetch_counts_and_attribution(self):
        cache = BlockCache(16)
        cache.prefetch(ext(10, 4))
        assert cache.stats.prefetches_issued == 4
        cache.access(ext(10, 4))
        assert cache.stats.prefetch_hits == 4
        assert cache.stats.prefetch_accuracy == 1.0

    def test_prefetch_attributed_once(self):
        cache = BlockCache(16)
        cache.prefetch(ext(10, 1))
        cache.access(ext(10, 1))
        cache.access(ext(10, 1))
        assert cache.stats.prefetch_hits == 1
        assert cache.stats.hits == 2

    def test_prefetch_does_not_count_as_demand(self):
        cache = BlockCache(16)
        cache.prefetch(ext(10, 4))
        assert cache.stats.accesses == 0


class TestCorrelationPrefetcher:
    def test_partners_sorted_by_strength(self):
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=64, correlation_capacity=64)
        )
        for _ in range(5):
            analyzer.process([ext(0, 4), ext(1000, 4)])
        analyzer.process([ext(0, 4), ext(2000, 4)])
        prefetcher = CorrelationPrefetcher(analyzer, min_support=1, fanout=2)
        partners = prefetcher.partners_of(ext(0, 4))
        assert partners[0] == ext(1000, 4)

    def test_fanout_limits_partners(self):
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=64, correlation_capacity=64)
        )
        for i in range(1, 6):
            for _ in range(3):
                analyzer.process([ext(0, 4), ext(i * 1000, 4)])
        prefetcher = CorrelationPrefetcher(analyzer, min_support=2, fanout=2)
        assert len(prefetcher.partners_of(ext(0, 4))) == 2

    def test_unknown_extent_has_no_partners(self):
        analyzer = OnlineAnalyzer(AnalyzerConfig(item_capacity=8,
                                                 correlation_capacity=8))
        prefetcher = CorrelationPrefetcher(analyzer)
        assert prefetcher.partners_of(ext(5)) == []

    def test_fanout_validation(self):
        analyzer = OnlineAnalyzer(AnalyzerConfig(item_capacity=8,
                                                 correlation_capacity=8))
        with pytest.raises(ValueError):
            CorrelationPrefetcher(analyzer, fanout=0)


class TestCacheExperiment:
    def test_prefetching_improves_hit_ratio(self):
        """A cache too small to retain both members across rounds benefits
        from pulling the partner in on demand access."""
        accesses = alternating_accesses(pairs=8, rounds=80)
        analyzer = trained_analyzer(accesses)
        capacity = 24  # holds ~1.5 extents of 8 blocks + partner prefetch
        baseline = run_cache_experiment(accesses, capacity)
        prefetched = run_cache_experiment(
            accesses, capacity, CorrelationPrefetcher(analyzer, min_support=3)
        )
        assert prefetched.hit_ratio > baseline.hit_ratio
        assert prefetched.prefetch_accuracy > 0.3


class TestRulePrefetcher:
    def test_directional_prefetch(self):
        """A -> B prefetches B on A, but not A on B when the reverse rule
        is below confidence."""
        from repro.fim.rules import AssociationRule, RuleIndex
        from repro.optimize.prefetch import RulePrefetcher

        rules = RuleIndex([
            AssociationRule(ext(0, 4), ext(1000, 4), 10, 0.9, 3.0),
        ])
        prefetcher = RulePrefetcher(rules, fanout=2)
        assert prefetcher.partners_of(ext(0, 4)) == [ext(1000, 4)]
        assert prefetcher.partners_of(ext(1000, 4)) == []

    def test_fanout_validation(self):
        from repro.fim.rules import RuleIndex
        from repro.optimize.prefetch import RulePrefetcher
        import pytest as _pytest
        with _pytest.raises(ValueError):
            RulePrefetcher(RuleIndex([]), fanout=0)

    def test_rule_prefetching_in_cache_experiment(self):
        """End to end: rules mined from the analyzer drive prefetching."""
        from repro.fim.rules import RuleIndex, rules_from_analyzer
        from repro.optimize.prefetch import RulePrefetcher

        accesses = alternating_accesses(pairs=8, rounds=80)
        analyzer = trained_analyzer(accesses)
        rules = RuleIndex(rules_from_analyzer(analyzer, min_support=3,
                                              min_confidence=0.5))
        baseline = run_cache_experiment(accesses, 24)
        prefetched = run_cache_experiment(
            accesses, 24, RulePrefetcher(rules, fanout=1)
        )
        assert prefetched.hit_ratio > baseline.hit_ratio
