"""Shard-per-process execution: identity, queries, lifecycle, crash safety.

The contract under test (ISSUE 7):

* the worker fleet produces *byte-identical* per-shard synopses to an
  in-process reference applying the same routed work (``route_batch`` +
  ``_apply_shard_work`` + the cross-shard demote broadcast) -- the shard
  semantics live in one module-level function shared by both sides;
* merged queries (frequent pairs/extents, kinds, type tallies, report,
  occupancy) equal merging the reference shards;
* checkpoint v3 round-trips through the ``shard_analyzers`` seam, and
  ``adopt_shards`` restores learned state into a live fleet;
* a SIGKILL'd worker surfaces as :class:`ShardWorkerError` (plus a
  telemetry death count) instead of hanging the caller, and ``close``
  still shuts the engine down afterwards.
"""

import io
import os
import random
import signal
import threading
import time

import pytest

from repro.core.config import AnalyzerConfig
from repro.core.typed import TypedOnlineAnalyzer
from repro.engine.checkpoint import as_typed_engine, dump_engine, load_engine
from repro.engine.procshard import (
    ProcessShardedAnalyzer,
    ShardWorkerError,
    _apply_shard_work,
    route_batch,
)
from repro.monitor.batch import TransactionBatch
from repro.monitor.events import BlockIOEvent
from repro.engine.sharded import shard_config
from repro.monitor.transaction import Transaction
from repro.telemetry import NULL_REGISTRY
from repro.trace.record import OpType

SHARDS = 3
CONFIG = AnalyzerConfig(item_capacity=64, correlation_capacity=128)


def make_transactions(seed, count=1500, population=300):
    rng = random.Random(seed)
    out, now = [], 0.0
    for _ in range(count):
        events = []
        for _ in range(rng.randint(1, 8)):
            now += 1e-6
            events.append(BlockIOEvent(
                now, 1, rng.choice([OpType.READ, OpType.WRITE]),
                rng.randint(0, population), rng.randint(1, 4),
            ))
        out.append(Transaction(events))
    return out


def make_batches(seed=3, count=1500, chunk=100):
    transactions = make_transactions(seed, count)
    return [
        TransactionBatch.from_transactions(transactions[i:i + chunk])
        for i in range(0, count, chunk)
    ]


def reference_shards(batches, shards=SHARDS, config=CONFIG):
    """Apply the routed work in-process: the identity oracle."""
    per_shard = shard_config(config, shards)
    analyzers = [TypedOnlineAnalyzer(per_shard, registry=NULL_REGISTRY)
                 for _ in range(shards)]
    for batch in batches:
        work = route_batch(batch, shards)
        evicted_by = [
            _apply_shard_work(analyzers[i], *item_work, *pair_work)
            for i, (item_work, pair_work) in enumerate(work)
        ]
        for origin, evicted in enumerate(evicted_by):
            for start, length in evicted:
                for i in range(shards):
                    if i != origin:
                        analyzers[i].correlations.demote_involving(
                            analyzers[i]._interner.extent(start, length)
                        )
    return analyzers


def merged_pairs(analyzers, min_support=1):
    merged = []
    for analyzer in analyzers:
        merged.extend(analyzer.frequent_pairs(min_support))
    merged.sort(key=lambda entry: (-entry[1], entry[0]))
    return merged


def types_of(analyzer):
    return {pair: (tally.read, tally.write, tally.mixed)
            for pair, tally in analyzer._types.items()}


@pytest.fixture(scope="module")
def batches():
    return make_batches()


@pytest.fixture(scope="module")
def reference(batches):
    return reference_shards(batches)


@pytest.fixture(scope="module")
def engine(batches):
    engine = ProcessShardedAnalyzer(CONFIG, shards=SHARDS,
                                    registry=NULL_REGISTRY)
    for batch in batches:
        engine.process_transaction_batch(batch)
    yield engine
    engine.close()


def test_workers_match_in_process_reference(engine, reference):
    shards = engine.shard_analyzers
    for i in range(SHARDS):
        assert shards[i].items.stats.as_dict() == \
            reference[i].items.stats.as_dict()
        assert shards[i].correlations.stats.as_dict() == \
            reference[i].correlations.stats.as_dict()
        assert shards[i].frequent_pairs(1) == reference[i].frequent_pairs(1)
        assert types_of(shards[i]) == types_of(reference[i])


def test_merged_queries(engine, reference, batches):
    expected = merged_pairs(reference)
    assert engine.frequent_pairs(1) == expected
    assert engine.report().transactions == sum(len(b) for b in batches)
    assert engine.kind_summary() is not None
    assert engine.shard_occupancy() == [
        (len(analyzer.items), len(analyzer.correlations))
        for analyzer in reference
    ]
    top = expected[0][0]
    assert engine.type_tally(top) is not None
    assert engine.pair_frequencies() == {
        pair: count
        for analyzer in reference
        for pair, count in analyzer.pair_frequencies().items()
    }


def test_checkpoint_v3_round_trip(engine, reference):
    buffer = io.BytesIO()
    dump_engine(engine, buffer)
    buffer.seek(0)
    loaded = as_typed_engine(load_engine(buffer))
    assert loaded.frequent_pairs(1) == merged_pairs(reference)


def test_adopt_shards_restores_fleet(engine, reference):
    adopted = ProcessShardedAnalyzer(CONFIG, shards=SHARDS,
                                     registry=NULL_REGISTRY)
    try:
        adopted.adopt_shards(engine.shard_analyzers)
        assert adopted.frequent_pairs(1) == merged_pairs(reference)
        restored = adopted.shard_analyzers
        for i in range(SHARDS):
            assert types_of(restored[i]) == types_of(reference[i])
    finally:
        adopted.close()
    assert adopted.closed


def test_closed_engine_refuses_work(batches):
    engine = ProcessShardedAnalyzer(CONFIG, shards=2, registry=NULL_REGISTRY)
    engine.close()
    engine.close()  # idempotent
    with pytest.raises(ShardWorkerError):
        engine.process_transaction_batch(batches[0])


def test_worker_crash_surfaces_instead_of_hanging(batches):
    """SIGKILL one worker mid-stream: the next protocol round must raise
    :class:`ShardWorkerError` promptly (a watchdog bounds the wait, so a
    deadlock on the dead pipe fails the test instead of hanging the
    suite), count the death, and leave the engine closeable."""
    engine = ProcessShardedAnalyzer(CONFIG, shards=2, registry=NULL_REGISTRY)
    outcome = {}

    def drive():
        try:
            for batch in batches:
                engine.process_transaction_batch(batch)
            outcome["error"] = None
        except ShardWorkerError as exc:
            outcome["error"] = exc

    try:
        engine.process_transaction_batch(batches[0])
        os.kill(engine._procs[1].pid, signal.SIGKILL)
        engine._procs[1].join(timeout=10)
        driver = threading.Thread(target=drive, daemon=True)
        started = time.monotonic()
        driver.start()
        driver.join(timeout=30)
        assert not driver.is_alive(), \
            "ingest against a dead worker hung instead of raising"
        assert time.monotonic() - started < 30
        assert isinstance(outcome["error"], ShardWorkerError)
        assert engine.worker_deaths == 1
    finally:
        engine.close()
    assert engine.closed
