"""Property-based tests (hypothesis) on core data structures and invariants."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.extent import Extent, ExtentPair, unique_pairs
from repro.core.lru import LruQueue
from repro.core.two_tier import TwoTierTable
from repro.fim.apriori import apriori
from repro.fim.eclat import eclat
from repro.fim.fpgrowth import fpgrowth
from repro.fim.pairs import exact_pair_counts, itemsets_to_pair_counts
from repro.trace.stats import merge_intervals

extents = st.builds(
    Extent,
    start=st.integers(min_value=0, max_value=500),
    length=st.integers(min_value=1, max_value=16),
)

transactions_strategy = st.lists(
    st.lists(extents, min_size=0, max_size=6),
    min_size=0,
    max_size=40,
)


class TestExtentProperties:
    @given(extents, extents)
    def test_pair_is_commutative(self, a, b):
        if a == b:
            return
        assert ExtentPair(a, b) == ExtentPair(b, a)
        assert hash(ExtentPair(a, b)) == hash(ExtentPair(b, a))

    @given(extents, extents)
    def test_overlap_is_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(extents, extents)
    def test_union_span_contains_both(self, a, b):
        span = a.union_span(b)
        assert span.start <= a.start and span.end >= a.end
        assert span.start <= b.start and span.end >= b.end

    @given(st.lists(extents, max_size=8))
    def test_unique_pairs_count(self, items):
        n = len(set(items))
        assert len(unique_pairs(items)) == n * (n - 1) // 2

    @given(extents)
    def test_parse_roundtrip(self, extent):
        assert Extent.parse(str(extent)) == extent


class TestLruProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.integers(min_value=0, max_value=20), max_size=100),
    )
    def test_capacity_never_exceeded(self, capacity, keys):
        queue = LruQueue(capacity)
        for key in keys:
            if key in queue:
                queue.touch(key)
            else:
                queue.insert(key)
        assert len(queue) <= capacity

    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.integers(min_value=0, max_value=20), max_size=100),
    )
    def test_most_recent_key_always_resident(self, capacity, keys):
        queue = LruQueue(capacity)
        for key in keys:
            if key in queue:
                queue.touch(key)
            else:
                queue.insert(key)
            assert key in queue


class TestTwoTierProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(st.integers(min_value=0, max_value=15), max_size=120),
    )
    def test_size_bound_and_tier_disjointness(self, capacity, keys):
        table = TwoTierTable(capacity)
        for key in keys:
            table.access(key)
            assert len(table) <= table.capacity
            assert not (key in table.t1 and key in table.t2)

    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=120))
    def test_resident_tally_never_exceeds_true_count(self, keys):
        """A synopsis tally can undercount (evict + reinsert) but never
        overcount the true number of sightings."""
        table = TwoTierTable(4)
        true_counts = Counter()
        for key in keys:
            true_counts[key] += 1
            table.access(key)
        for key, tally, _tier in table.items():
            assert tally <= true_counts[key]

    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=120))
    def test_stats_are_consistent(self, keys):
        table = TwoTierTable(4)
        for key in keys:
            table.access(key)
        stats = table.stats
        assert stats.lookups == len(keys)
        assert stats.hits + stats.misses == stats.lookups


class TestAnalyzerProperties:
    @given(transactions_strategy)
    @settings(max_examples=50, deadline=None)
    def test_tables_bounded_and_tallies_sound(self, transactions):
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=8, correlation_capacity=8)
        )
        analyzer.process_stream(transactions)
        assert len(analyzer.items) <= analyzer.items.capacity
        assert len(analyzer.correlations) <= analyzer.correlations.capacity
        truth = exact_pair_counts(transactions)
        for pair, tally in analyzer.pair_frequencies().items():
            assert tally <= truth[pair]
        assert analyzer.correlations.check_index()

    @given(transactions_strategy)
    @settings(max_examples=30, deadline=None)
    def test_unbounded_analyzer_is_exact(self, transactions):
        """With tables larger than the pair population, the synopsis must
        equal exact offline pair counting."""
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=4096, correlation_capacity=4096)
        )
        analyzer.process_stream(transactions)
        assert analyzer.pair_frequencies() == exact_pair_counts(transactions)


class TestFimProperties:
    small_items = st.lists(
        st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=4),
        max_size=25,
    )

    @given(small_items, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_miners_agree(self, transactions, min_support):
        a = apriori(transactions, min_support, max_size=3)
        e = eclat(transactions, min_support, max_size=3)
        f = fpgrowth(transactions, min_support, max_size=3)
        assert a == e == f

    @given(small_items)
    @settings(max_examples=40, deadline=None)
    def test_apriori_pairs_match_exact_counter(self, raw):
        transactions = [
            [Extent(item + 1, 1) for item in txn] for txn in raw
        ]
        mined = itemsets_to_pair_counts(
            apriori(transactions, min_support=1, max_size=2)
        )
        assert mined == exact_pair_counts(transactions)


class TestIntervalProperties:
    @given(st.lists(
        st.tuples(st.integers(0, 100), st.integers(1, 20)).map(
            lambda t: (t[0], t[0] + t[1])
        ),
        max_size=30,
    ))
    def test_merge_intervals_is_disjoint_sorted_and_complete(self, intervals):
        merged = merge_intervals(intervals)
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2  # disjoint and strictly separated
        covered = set()
        for start, end in merged:
            covered.update(range(start, end))
        expected = set()
        for start, end in intervals:
            expected.update(range(start, end))
        assert covered == expected
