"""Second wave of property-based tests: ARC, adaptive tiers, histograms,
serialization, the monitor, and the decayed stream miner."""

import io
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptivePolicy, AdaptiveTwoTierTable
from repro.core.analyzer import OnlineAnalyzer
from repro.core.arc import ArcTable
from repro.core.config import AnalyzerConfig
from repro.core.extent import Extent
from repro.core.serialize import dumps_analyzer, loads_analyzer
from repro.fim.estdec import EstDecConfig, EstDecMiner
from repro.monitor.events import BlockIOEvent
from repro.monitor.histogram import LatencyHistogram
from repro.monitor.monitor import Monitor, TransactionRecorder
from repro.monitor.window import StaticWindow
from repro.trace.record import OpType

keys = st.integers(min_value=0, max_value=30)
key_streams = st.lists(keys, max_size=200)

extents = st.builds(
    Extent,
    start=st.integers(min_value=0, max_value=300),
    length=st.integers(min_value=1, max_value=8),
)
transactions_strategy = st.lists(
    st.lists(extents, min_size=0, max_size=5), max_size=30
)


class TestArcProperties:
    @given(st.integers(min_value=2, max_value=10), key_streams)
    @settings(max_examples=60, deadline=None)
    def test_invariants_always_hold(self, capacity, stream):
        arc = ArcTable(capacity)
        for key in stream:
            arc.access(key)
            assert arc.check_invariants()

    @given(key_streams)
    @settings(max_examples=40, deadline=None)
    def test_tally_never_exceeds_true_count(self, stream):
        from collections import Counter
        arc = ArcTable(6)
        true_counts = Counter()
        for key in stream:
            true_counts[key] += 1
            arc.access(key)
        for key, tally in arc.resident_items():
            assert tally <= true_counts[key]

    @given(key_streams)
    @settings(max_examples=40, deadline=None)
    def test_most_recent_key_resident(self, stream):
        arc = ArcTable(4)
        for key in stream:
            arc.access(key)
            assert key in arc


class TestAdaptiveProperties:
    @given(
        st.integers(min_value=4, max_value=16),
        key_streams,
        st.integers(min_value=4, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_conserved_and_bounded(self, capacity, stream, interval):
        policy = AdaptivePolicy(adjust_interval=interval,
                                step_fraction=0.1, min_tier_fraction=0.2)
        table = AdaptiveTwoTierTable(capacity, capacity, policy=policy)
        total = 2 * capacity
        for key in stream:
            table.access(key)
            t1, t2 = table.tier_split
            assert t1 + t2 == total
            assert t1 >= table._min_tier and t2 >= table._min_tier
            assert len(table) <= total


class TestHistogramProperties:
    @given(st.lists(st.floats(min_value=1e-7, max_value=1.0,
                              allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_quantiles_bounded_by_extremes(self, samples):
        histogram = LatencyHistogram()
        for sample in samples:
            histogram.record(sample)
        low = histogram.percentile(0.0)
        high = histogram.percentile(1.0)
        # Bucket resolution is ~19% relative; allow that slack.
        assert low <= min(samples) * 1.5 + 1e-7
        assert high >= max(samples) * 0.6
        for q in (0.25, 0.5, 0.75):
            assert low <= histogram.percentile(q) <= high * 1.5

    @given(st.lists(st.floats(min_value=1e-7, max_value=1.0,
                              allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_quantiles_monotone_in_q(self, samples):
        histogram = LatencyHistogram()
        for sample in samples:
            histogram.record(sample)
        quantiles = [histogram.percentile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)


class TestSerializeProperties:
    @given(transactions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_everything(self, transactions):
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=6, correlation_capacity=6
        ))
        analyzer.process_stream(transactions)
        restored = loads_analyzer(dumps_analyzer(analyzer))
        assert restored.pair_frequencies() == analyzer.pair_frequencies()
        assert restored.items.items() == analyzer.items.items()
        assert restored.correlations.check_index()


class TestMonitorProperties:
    @given(st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.integers(min_value=0, max_value=100),
        ),
        max_size=60,
    ))
    @settings(max_examples=50, deadline=None)
    def test_every_event_lands_in_exactly_one_transaction(self, raw):
        monitor = Monitor(window=StaticWindow(0.05), dedup=False)
        recorder = TransactionRecorder()
        monitor.add_sink(recorder)
        events = sorted(
            (BlockIOEvent(ts, 1, OpType.READ, start, 1)
             for ts, start in raw),
            key=lambda event: event.timestamp,
        )
        for event in events:
            monitor.on_event(event)
        monitor.flush()
        delivered = sum(len(txn) for txn in recorder.transactions)
        assert delivered == len(events)
        for txn in recorder.transactions:
            assert len(txn) <= monitor.max_transaction_size

    @given(st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        max_size=60,
    ))
    @settings(max_examples=50, deadline=None)
    def test_gap_rule_respected(self, timestamps):
        """Within a transaction, consecutive gaps never exceed the window."""
        window = 0.03
        monitor = Monitor(window=StaticWindow(window),
                          max_transaction_size=10 ** 9)
        recorder = TransactionRecorder()
        monitor.add_sink(recorder)
        for index, ts in enumerate(sorted(timestamps)):
            monitor.on_event(BlockIOEvent(ts, 1, OpType.READ, index, 1))
        monitor.flush()
        for txn in recorder.transactions:
            times = [event.timestamp for event in txn.events]
            for earlier, later in zip(times, times[1:]):
                assert later - earlier <= window + 1e-12


class TestEstDecProperties:
    @given(st.lists(
        st.lists(st.integers(min_value=0, max_value=8),
                 min_size=1, max_size=4),
        max_size=60,
    ))
    @settings(max_examples=40, deadline=None)
    def test_decayed_count_never_exceeds_true_count(self, transactions):
        from collections import Counter
        from itertools import combinations
        miner = EstDecMiner(EstDecConfig(decay=0.97,
                                         insertion_threshold=0.01))
        truth = Counter()
        for transaction in transactions:
            distinct = sorted(set(transaction))
            for a, b in combinations(distinct, 2):
                truth[frozenset((a, b))] += 1
            miner.process(transaction)
        for key, count in miner.frequent_pairs(min_support=0.0):
            assert count <= truth[key] + 1e-9


class TestFlashModelProperties:
    """Mapping-consistency invariants of the flash and zoned devices."""

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=40),
                  st.integers(min_value=0, max_value=3)),
        max_size=300,
    ))
    @settings(max_examples=40, deadline=None)
    def test_multistream_mapping_consistent(self, writes):
        from repro.optimize.multistream import FlashConfig, MultiStreamSsd
        config = FlashConfig(erase_units=16, pages_per_eu=8,
                             streams=4, overprovision_eus=4)
        device = MultiStreamSsd(config)
        live = set()
        for lba, stream in writes:
            try:
                device.write(lba, stream)
            except RuntimeError:
                break  # logical capacity: fine, stop writing
            live.add(lba)
            # Every live LBA maps to exactly one valid page.
            total_valid = sum(device.valid_page_histogram())
            assert total_valid == len(live)
        # WAF is always >= 1 and erases never negative.
        assert device.stats.waf >= 1.0
        assert device.stats.erases >= 0

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=30),
                  st.integers(min_value=0, max_value=5)),
        max_size=300,
    ))
    @settings(max_examples=40, deadline=None)
    def test_zns_mapping_consistent(self, writes):
        from repro.optimize.zns import ZnsConfig, ZnsDevice
        config = ZnsConfig(zones=12, zone_pages=8, open_zone_limit=3,
                           reserved_zones=2)
        device = ZnsDevice(config)
        live = set()
        for lba, group in writes:
            try:
                device.write(lba, group)
            except RuntimeError:
                break
            live.add(lba)
            assert sum(device.zone_validity()) == len(live)
        assert device.stats.waf >= 1.0
