"""Tests for the trace replayer."""

import pytest

from repro.blkdev.device import SsdDevice
from repro.blkdev.replay import (
    replay_no_stall,
    replay_speedup,
    replay_timed,
)
from repro.trace.record import OpType, TraceRecord


def records_spaced(gap: float, count: int = 5):
    return [
        TraceRecord(i * gap, 0, OpType.READ, i * 100, 8)
        for i in range(count)
    ]


class TestReplayTimed:
    def test_events_in_arrival_order(self):
        result = replay_timed(records_spaced(0.01), SsdDevice(seed=1))
        times = [event.timestamp for event in result.events]
        assert times == sorted(times)
        assert result.request_count == 5

    def test_speedup_compresses_arrivals(self):
        device = SsdDevice(seed=1)
        slow = replay_timed(records_spaced(0.01), device)
        fast = replay_timed(records_spaced(0.01), SsdDevice(seed=1), speedup=10.0)
        assert fast.events[-1].timestamp == pytest.approx(
            slow.events[-1].timestamp / 10.0
        )

    def test_queueing_under_overload(self):
        """Arrivals faster than service accumulate queueing delay."""
        tight = replay_timed(records_spaced(1e-9, count=50), SsdDevice(seed=1))
        relaxed = replay_timed(records_spaced(0.1, count=50), SsdDevice(seed=1))
        assert tight.queue_delay_total > 0
        assert relaxed.queue_delay_total == pytest.approx(0.0)
        assert tight.mean_latency > relaxed.mean_latency

    def test_listeners_receive_every_event(self):
        seen = []
        replay_timed(records_spaced(0.01), SsdDevice(seed=1),
                     listeners=[seen.append])
        assert len(seen) == 5
        assert all(event.latency is not None for event in seen)

    def test_collect_false_streams_only(self):
        seen = []
        result = replay_timed(records_spaced(0.01), SsdDevice(seed=1),
                              listeners=[seen.append], collect=False)
        assert result.events == []
        assert len(seen) == 5

    def test_unsorted_records_are_ordered(self):
        records = list(reversed(records_spaced(0.01)))
        result = replay_timed(records, SsdDevice(seed=1))
        times = [event.timestamp for event in result.events]
        assert times == sorted(times)

    def test_invalid_speedup(self):
        with pytest.raises(ValueError):
            replay_timed([], SsdDevice(), speedup=0.0)

    def test_wall_time_covers_last_completion(self):
        result = replay_timed(records_spaced(0.01), SsdDevice(seed=1))
        assert result.wall_time >= result.events[-1].timestamp


class TestReplayNoStall:
    def test_back_to_back_issue(self):
        result = replay_no_stall(records_spaced(100.0), SsdDevice(seed=1))
        # Timestamps ignore the trace's 100-second gaps entirely.
        assert result.wall_time < 1.0
        for earlier, later in zip(result.events, result.events[1:]):
            assert later.timestamp == pytest.approx(
                earlier.timestamp + earlier.latency
            )

    def test_latency_is_pure_service_time(self):
        result = replay_no_stall(records_spaced(0.0), SsdDevice(seed=1))
        assert result.mean_read_latency > 0
        assert result.mean_latency == result.mean_read_latency


class TestReplaySpeedup:
    def test_table2_formula(self):
        # wdev row: 3.65 ms trace latency / 48.00 us measured = 76.0x.
        assert replay_speedup(3.65e-3, 48.00e-6) == pytest.approx(76.0, rel=0.01)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            replay_speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            replay_speedup(1.0, -1.0)


class TestQueueDepth:
    def test_parallel_slots_reduce_queueing(self):
        """Arrivals that overload one server are absorbed by queue depth."""
        records = records_spaced(20e-6, count=100)
        shallow = replay_timed(records, SsdDevice(seed=2, jitter=0.0),
                               queue_depth=1)
        deep = replay_timed(records, SsdDevice(seed=2, jitter=0.0),
                            queue_depth=8)
        assert deep.queue_delay_total < shallow.queue_delay_total
        assert deep.mean_latency <= shallow.mean_latency

    def test_queue_depth_one_matches_default(self):
        records = records_spaced(0.001, count=20)
        default = replay_timed(records, SsdDevice(seed=3))
        explicit = replay_timed(records, SsdDevice(seed=3), queue_depth=1)
        assert [e.latency for e in default.events] == (
            [e.latency for e in explicit.events]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            replay_timed([], SsdDevice(), queue_depth=0)
