"""Tests for seed replication and confidence intervals."""

import pytest

from repro.analysis.replicate import Replication, replicate, summarize


class TestSummarize:
    def test_constant_values(self):
        replication = summarize([5.0, 5.0, 5.0])
        assert replication.mean == 5.0
        assert replication.std == 0.0
        assert replication.ci_low == replication.ci_high == 5.0

    def test_interval_contains_mean(self):
        replication = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert replication.mean == 3.0
        assert replication.ci_low < 3.0 < replication.ci_high

    def test_higher_confidence_widens_interval(self):
        values = [1.0, 2.0, 3.0, 4.0]
        narrow = summarize(values, confidence=0.8)
        wide = summarize(values, confidence=0.99)
        assert (wide.ci_high - wide.ci_low) > (narrow.ci_high - narrow.ci_low)

    def test_single_value(self):
        replication = summarize([7.0])
        assert replication.mean == 7.0
        assert replication.runs == 1
        assert replication.ci_low == replication.ci_high == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.0)

    def test_str_rendering(self):
        text = str(summarize([1.0, 2.0, 3.0]))
        assert "95% CI" in text and "n=3" in text


class TestReplicate:
    def test_runs_experiment_per_seed(self):
        seen = []

        def experiment(seed):
            seen.append(seed)
            return float(seed * 2)

        replication = replicate(experiment, seeds=[1, 2, 3])
        assert seen == [1, 2, 3]
        assert replication.mean == 4.0

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: 0.0, seeds=[])

    def test_detection_stable_across_seeds(self):
        """A miniature of the robustness bench: detection of the top
        planted correlation holds for every seed."""
        from repro.pipeline import characterize
        from repro.workloads.synthetic import (
            SyntheticKind, SyntheticSpec, generate_synthetic,
        )

        def experiment(seed):
            spec = SyntheticSpec(SyntheticKind.ONE_TO_ONE,
                                 duration=20.0, seed=seed)
            records, truth = generate_synthetic(spec)
            detected = {p for p, _t in characterize(records, min_support=3)}
            return 1.0 if truth.pairs[0] in detected else 0.0

        replication = replicate(experiment, seeds=[1, 2, 3])
        assert replication.mean == 1.0
