"""Tests for the one-shot characterization report."""

import pytest

from repro.analysis.report import build_report, render_report
from repro.analysis.sequential import PatternKind
from repro.core.typed import CorrelationKind


@pytest.fixture(scope="module")
def report(small_synthetic):
    records, _truth = small_synthetic
    return build_report(records, support=5, capacity=2048, top=10)


class TestBuildReport:
    def test_sections_populated(self, report, small_synthetic):
        records, truth = small_synthetic
        assert report.trace_stats.requests == len(records)
        assert report.monitor_stats.transactions_emitted > 0
        assert report.detected_correlations >= len(truth.pairs)
        assert report.support == 5
        assert report.capacity == 2048

    def test_top_pairs_contain_planted(self, report, small_synthetic):
        _records, truth = small_synthetic
        top = {pair for pair, _t in report.top_pairs}
        assert truth.pairs[0] in top

    def test_rules_derived(self, report):
        assert report.rules
        assert all(rule.confidence >= 0.5 for rule in report.rules)

    def test_kind_summary_counts_residents(self, report):
        assert sum(report.kind_summary.values()) > 0
        assert set(report.kind_summary) == set(CorrelationKind)

    def test_pattern_composition_sums(self, report):
        composition = report.pattern_composition
        assert composition.total_pairs == report.detected_correlations
        total = sum(composition.fraction(kind) for kind in PatternKind)
        assert total == pytest.approx(1.0)

    def test_cdf_attached(self, report):
        assert report.cdf is not None
        assert report.cdf.total_pairs > 0


class TestRenderReport:
    def test_renders_all_sections(self, report):
        text = render_report(report, name="demo")
        for heading in ("[workload]", "[monitoring]", "[correlations]",
                        "[top correlations]", "[rules]"):
            assert heading in text
        assert "demo" in text

    def test_renders_pairs_and_rules(self, report):
        text = render_report(report)
        assert "->" in text           # at least one rule
        assert " x" in text           # at least one pair tally


class TestPipelineInjection:
    def test_injected_typed_analyzer_receives_transactions(
        self, small_synthetic
    ):
        from repro.core.config import AnalyzerConfig
        from repro.core.typed import TypedOnlineAnalyzer
        from repro.pipeline import run_pipeline

        records, truth = small_synthetic
        analyzer = TypedOnlineAnalyzer(AnalyzerConfig(
            item_capacity=2048, correlation_capacity=2048
        ))
        result = run_pipeline(records, analyzer=analyzer,
                              record_offline=False)
        assert result.analyzer is analyzer
        assert analyzer.report().transactions > 0
        # Types were recorded (the synthetic workload mixes R and W).
        assert sum(analyzer.kind_summary().values()) > 0

    def test_config_and_analyzer_are_exclusive(self, small_synthetic):
        from repro.core.analyzer import OnlineAnalyzer
        from repro.core.config import AnalyzerConfig
        from repro.pipeline import run_pipeline

        records, _truth = small_synthetic
        with pytest.raises(ValueError):
            run_pipeline(records, config=AnalyzerConfig(),
                         analyzer=OnlineAnalyzer())

    def test_analyzer_reuse_across_runs(self, small_synthetic):
        """Continuous operation: the same synopsis carries over."""
        from repro.core.analyzer import OnlineAnalyzer
        from repro.core.config import AnalyzerConfig
        from repro.pipeline import run_pipeline

        records, _truth = small_synthetic
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=2048, correlation_capacity=2048
        ))
        run_pipeline(records, analyzer=analyzer, record_offline=False)
        first = analyzer.report().transactions
        run_pipeline(records, analyzer=analyzer, record_offline=False)
        assert analyzer.report().transactions > first
