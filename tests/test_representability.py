"""Tests for representability vs optimal (Fig. 9)."""

import pytest

from repro.analysis.optimal import optimal_curve
from repro.analysis.representability import (
    representability,
    sweep_table_sizes,
)
from repro.core.config import AnalyzerConfig

from conftest import ext, pair


def truth_example():
    return {
        pair(1, 2): 50,
        pair(3, 4): 30,
        pair(5, 6): 15,
        pair(7, 8): 4,
        pair(9, 10): 1,
    }


class TestRepresentability:
    def test_perfect_capture(self):
        truth = truth_example()
        result = representability(truth, list(truth))
        assert result.captured_fraction == pytest.approx(1.0)
        assert result.quality == pytest.approx(1.0)

    def test_optimal_subset(self):
        truth = truth_example()
        result = representability(truth, [pair(1, 2), pair(3, 4)])
        assert result.captured_fraction == pytest.approx(0.80)
        assert result.optimal_fraction == pytest.approx(0.80)
        assert result.quality == pytest.approx(1.0)

    def test_suboptimal_subset(self):
        truth = truth_example()
        result = representability(truth, [pair(7, 8), pair(9, 10)])
        assert result.captured_fraction == pytest.approx(0.05)
        assert result.quality == pytest.approx(0.05 / 0.80)

    def test_unknown_pairs_capture_nothing(self):
        truth = truth_example()
        result = representability(truth, [pair(500, 600)])
        assert result.captured_fraction == 0.0
        assert result.quality == 0.0

    def test_empty_residents(self):
        result = representability(truth_example(), [])
        assert result.table_entries == 0
        assert result.quality == 1.0  # vacuous: optimal for 0 entries is 0

    def test_precomputed_curve_accepted(self):
        truth = truth_example()
        curve = optimal_curve(truth)
        direct = representability(truth, [pair(1, 2)], curve)
        recomputed = representability(truth, [pair(1, 2)])
        assert direct == recomputed


class TestSweep:
    def _transactions(self):
        """Hot pair repeated heavily, plus streaming noise pairs."""
        stream = []
        for i in range(30):
            stream.append([ext(1), ext(2)])
            stream.append([ext(1000 + i), ext(5000 + i)])
        return stream

    def test_quality_grows_with_capacity(self):
        from repro.fim.pairs import exact_pair_counts
        transactions = self._transactions()
        truth = exact_pair_counts(transactions)
        results = sweep_table_sizes(transactions, truth, [1, 8, 64])
        qualities = [score.quality for _cap, score in results]
        assert qualities[-1] >= qualities[0]
        assert qualities[-1] == pytest.approx(1.0)

    def test_large_table_captures_everything(self):
        from repro.fim.pairs import exact_pair_counts
        transactions = self._transactions()
        truth = exact_pair_counts(transactions)
        (_cap, score), = sweep_table_sizes(transactions, truth, [256])
        assert score.captured_fraction == pytest.approx(1.0)

    def test_config_knobs_forwarded(self):
        from repro.fim.pairs import exact_pair_counts
        transactions = self._transactions()
        truth = exact_pair_counts(transactions)
        config = AnalyzerConfig(promote_threshold=3)
        results = sweep_table_sizes(transactions, truth, [16], config)
        assert len(results) == 1
