"""The fault-injection suite: the service must survive messy reality.

Drives the stack with the deterministic fault harness from
:mod:`repro.resilience.faults` and pins the acceptance bounds of the
resilience layer: lenient ingestion under corrupt trace rows, frequent-pair
recall under dropped/duplicated/reordered/corrupted events, CRC rejection
of bit-flipped checkpoints, atomic checkpoint writes, and sink/observer
quarantine.
"""

import io
import os

import pytest

import repro.core.serialize as serialize_module
from repro.core.config import AnalyzerConfig
from repro.core.serialize import (
    CheckpointCorruptError,
    dumps_analyzer,
    load_checkpoint,
    loads_analyzer,
    save_checkpoint,
)
from repro.monitor.events import BlockIOEvent
from repro.monitor.monitor import ClockPolicy, Monitor, TransactionRecorder
from repro.monitor.window import StaticWindow, WindowPolicy
from repro.resilience import (
    DeadLetterBuffer,
    ErrorPolicy,
    FaultInjector,
    FaultSpec,
    IngestReport,
    ResilientCharacterizationService,
    RowError,
    SimulatedCrash,
    SinkGuard,
    corrupt_msr_csv,
    crash_before_rename,
    flip_bits,
)
from repro.service import CharacterizationService
from repro.trace.io import read_msr_csv, write_msr_csv
from repro.trace.record import OpType
from repro.workloads.enterprise import generate_named

from conftest import ext


def event(ts, start=0, length=8, op=OpType.READ):
    return BlockIOEvent(ts, 1, op, start, length)


def workload_events(requests=6000, seed=7):
    records, _truth = generate_named("wdev", requests=requests, seed=seed)
    return [BlockIOEvent.from_record(record) for record in records]


def service_kwargs():
    return dict(
        config=AnalyzerConfig(item_capacity=4096,
                              correlation_capacity=4096),
        window=StaticWindow(1e-3),
        min_support=5,
        snapshot_interval=500,
    )


def frequent_set(service, min_support=None):
    if min_support is None:
        return {pair for pair, _tally in service.snapshot().frequent_pairs}
    return {
        pair for pair, _tally in service.analyzer.frequent_pairs(min_support)
    }


# ---------------------------------------------------------------------------
# Fault harness
# ---------------------------------------------------------------------------

class TestFaultInjector:
    def test_deterministic_for_same_seed(self):
        events = workload_events(requests=800)
        spec = FaultSpec(drop=0.05, duplicate=0.03, reorder=0.04,
                         corrupt=0.05, seed=11)
        first = list(FaultInjector(spec).inject(events))
        second = list(FaultInjector(spec).inject(events))
        assert first == second

    def test_different_seeds_differ(self):
        events = workload_events(requests=800)
        base = FaultSpec(drop=0.05, duplicate=0.03, corrupt=0.05, seed=1)
        a = list(FaultInjector(base).inject(events))
        b = list(FaultInjector(FaultSpec(drop=0.05, duplicate=0.03,
                                         corrupt=0.05, seed=2)).inject(events))
        assert a != b

    def test_counters_add_up(self):
        events = workload_events(requests=2000)
        injector = FaultInjector(FaultSpec(drop=0.1, duplicate=0.05, seed=3))
        out = list(injector.inject(events))
        counters = injector.counters
        assert counters.events_in == len(events)
        assert counters.events_out == len(out)
        assert (counters.events_out
                == counters.events_in - counters.dropped + counters.duplicated)
        assert counters.dropped > 0 and counters.duplicated > 0

    def test_reorder_preserves_multiset(self):
        events = workload_events(requests=1000)
        injector = FaultInjector(FaultSpec(reorder=0.2, seed=5))
        out = list(injector.inject(events))
        assert sorted(out, key=lambda e: (e.timestamp, e.start)) == \
            sorted(events, key=lambda e: (e.timestamp, e.start))
        assert out != events
        assert injector.counters.reordered > 0

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(drop=1.5)
        with pytest.raises(ValueError):
            FaultSpec(corrupt=-0.1)

    def test_flip_bits_deterministic_and_minimal(self):
        data = bytes(range(256))
        flipped = flip_bits(data, flips=3, seed=9)
        assert flipped != data
        assert flipped == flip_bits(data, flips=3, seed=9)
        differing_bits = sum(
            bin(a ^ b).count("1") for a, b in zip(data, flipped)
        )
        assert differing_bits == 3


# ---------------------------------------------------------------------------
# Lenient ingestion
# ---------------------------------------------------------------------------

class TestLenientIngestion:
    def make_csv(self, requests=2000, seed=13):
        records, _truth = generate_named("rsrch", requests=requests,
                                         seed=seed)
        stream = io.StringIO()
        write_msr_csv(records, stream)
        return stream.getvalue(), len(records)

    def test_strict_dies_lenient_survives(self):
        text, total = self.make_csv()
        corrupted, n_bad = corrupt_msr_csv(text, fraction=0.06, seed=21)
        assert n_bad >= total * 0.05
        with pytest.raises(ValueError):
            list(read_msr_csv(io.StringIO(corrupted)))
        report = IngestReport()
        records = list(read_msr_csv(io.StringIO(corrupted),
                                    policy=ErrorPolicy.LENIENT,
                                    report=report))
        assert report.rows_bad == n_bad
        assert report.rows_ok == len(records) == total - n_bad
        assert report.rows_total == total
        assert report.dead_letters is None  # lenient does not quarantine

    def test_quarantine_samples_dead_letters(self):
        text, total = self.make_csv()
        corrupted, n_bad = corrupt_msr_csv(text, fraction=0.1, seed=22)
        report = IngestReport()
        list(read_msr_csv(io.StringIO(corrupted),
                          policy=ErrorPolicy.QUARANTINE, report=report))
        assert report.rows_bad == n_bad
        letters = report.dead_letters
        assert letters is not None
        assert letters.total == n_bad
        assert 0 < len(letters) <= letters.capacity
        for row_error in letters.rows():
            assert row_error.error
            assert row_error.line_number >= 1

    def test_dead_letter_buffer_bounded_reservoir(self):
        buffer = DeadLetterBuffer(capacity=8, seed=1)
        for index in range(1000):
            buffer.offer(RowError(index, f"row{index}", "bad"))
        assert len(buffer) == 8
        assert buffer.total == 1000
        # Reservoir property: retained rows are not simply the first 8.
        assert any(error.line_number >= 8 for error in buffer.rows())

    def test_corruption_is_deterministic(self):
        text, _total = self.make_csv()
        first = corrupt_msr_csv(text, fraction=0.05, seed=33)
        second = corrupt_msr_csv(text, fraction=0.05, seed=33)
        assert first == second


# ---------------------------------------------------------------------------
# End-to-end accuracy under injected faults (acceptance bound)
# ---------------------------------------------------------------------------

class TestAccuracyUnderFaults:
    def test_recall_under_faults(self):
        """>=5% corrupt rows plus >=2% reordered/duplicated events: the
        service finishes, counts faults accurately, and keeps >=0.9 recall
        of the clean run's frequent pairs."""
        records, _truth = generate_named("wdev", requests=8000, seed=17)

        clean = ResilientCharacterizationService(**service_kwargs())
        clean.submit_many(BlockIOEvent.from_record(r) for r in records)
        clean.flush()
        # The reference set is the clean run's *robustly* frequent pairs
        # (2x the support threshold): a pair whose clean tally sits exactly
        # at the threshold is demoted by losing a single occurrence, so
        # any 5% data loss necessarily sheds some of those -- that is a
        # property of threshold queries, not of the resilience layer.
        min_support = clean.min_support
        clean_pairs = frequent_set(clean, min_support=2 * min_support)
        clean_pairs_at_threshold = frequent_set(clean)
        assert len(clean_pairs) >= 5  # the workload must plant signal

        # Stage 1: the trace file itself has >=5% corrupt rows.
        stream = io.StringIO()
        write_msr_csv(records, stream)
        corrupted_text, n_bad = corrupt_msr_csv(stream.getvalue(),
                                                fraction=0.05, seed=41)
        assert n_bad >= len(records) * 0.05
        report = IngestReport()
        surviving = list(read_msr_csv(io.StringIO(corrupted_text),
                                      policy=ErrorPolicy.QUARANTINE,
                                      report=report))
        assert report.rows_bad == n_bad

        # Stage 2: the event stream is reordered/duplicated/dropped.
        spec = FaultSpec(duplicate=0.01, reorder=0.02, drop=0.005, seed=43)
        injector = FaultInjector(spec)
        faulty = ResilientCharacterizationService(**service_kwargs())
        faulty.submit_many(injector.inject(
            BlockIOEvent.from_record(r) for r in surviving
        ))
        faulty.flush()

        counters = injector.counters
        assert counters.reordered + counters.duplicated \
            >= 0.02 * counters.events_in
        assert counters.events_out \
            == counters.events_in - counters.dropped + counters.duplicated
        assert faulty.monitor.stats.events_seen == counters.events_out
        # Reordered delivery must be visible in the monitor's counters.
        assert faulty.monitor.stats.clock_anomalies > 0

        faulty_pairs = frequent_set(faulty)
        recall = len(clean_pairs & faulty_pairs) / len(clean_pairs)
        assert recall >= 0.9, (
            f"recall {recall:.3f} under faults "
            f"({len(clean_pairs)} clean pairs, {len(faulty_pairs)} faulty)"
        )
        # Borderline pairs (tally at exactly the threshold) may legitimately
        # fall below it when ~5% of their occurrences are destroyed, but the
        # bulk of the threshold set must still survive.
        threshold_recall = (
            len(clean_pairs_at_threshold & faulty_pairs)
            / len(clean_pairs_at_threshold)
        )
        assert threshold_recall >= 0.75, (
            f"same-threshold recall {threshold_recall:.3f} under faults"
        )


# ---------------------------------------------------------------------------
# Checkpoint integrity
# ---------------------------------------------------------------------------

def trained_service():
    service = ResilientCharacterizationService(
        max_io_retries=2, backoff_base=1e-6, sleep=lambda _s: None,
        **service_kwargs(),
    )
    clock = 0.0
    for _round in range(20):
        service.submit(event(clock, 100))
        service.submit(event(clock + 1e-5, 9000, length=16))
        clock += 0.05
    service.flush()
    return service


class TestCheckpointIntegrity:
    def test_bit_flip_rejected(self):
        service = trained_service()
        buffer = io.BytesIO()
        service.checkpoint(buffer)
        data = buffer.getvalue()
        # Flip a payload bit (past the 6-byte magic + 8-byte envelope).
        header_bytes = 14
        for seed in range(5):
            flipped = data[:header_bytes] + flip_bits(
                data[header_bytes:], flips=1, seed=seed
            )
            with pytest.raises(CheckpointCorruptError):
                loads_analyzer(flipped)

    def test_truncation_rejected(self):
        service = trained_service()
        buffer = io.BytesIO()
        service.checkpoint(buffer)
        with pytest.raises(CheckpointCorruptError):
            loads_analyzer(buffer.getvalue()[:-7])

    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointCorruptError, match="magic"):
            loads_analyzer(b"GARBAGEGARBAGEGARBAGE")

    def test_clean_roundtrip_still_works(self, tmp_path):
        service = trained_service()
        path = tmp_path / "synopsis.ckpt"
        service.checkpoint_to(path)
        restored = ResilientCharacterizationService(
            sleep=lambda _s: None, **service_kwargs()
        )
        assert restored.restore_from(path) is True
        assert restored.health().ok
        assert frequent_set(restored) == frequent_set(service)

    def test_corrupt_file_falls_back_fresh_and_degraded(self, tmp_path):
        service = trained_service()
        path = tmp_path / "synopsis.ckpt"
        service.checkpoint_to(path)
        data = path.read_bytes()
        path.write_bytes(data[:20] + flip_bits(data[20:], flips=4, seed=3))

        victim = ResilientCharacterizationService(
            sleep=lambda _s: None, **service_kwargs()
        )
        assert victim.restore_from(path) is False
        health = victim.health()
        assert health.status == "degraded"
        assert health.restore_failures == 1
        assert any("corrupt" in reason for reason in health.reasons)
        # Degraded, not dead: the service keeps serving with a fresh table.
        assert frequent_set(victim) == set()
        clock = 0.0
        for _round in range(10):
            victim.submit(event(clock, 5))
            victim.submit(event(clock + 1e-5, 77))
            clock += 0.05
        victim.flush()
        assert len(frequent_set(victim)) >= 1

    def test_missing_file_falls_back_fresh(self, tmp_path):
        victim = ResilientCharacterizationService(
            max_io_retries=1, backoff_base=1e-6, sleep=lambda _s: None,
            **service_kwargs(),
        )
        assert victim.restore_from(tmp_path / "nope.ckpt") is False
        assert victim.health().status == "degraded"

    def test_v1_checkpoint_still_loads(self):
        """Legacy (pre-CRC) checkpoints must remain readable."""
        service = trained_service()
        data = dumps_analyzer(service.analyzer)
        magic2 = b"RTSYN\x02"
        assert data[:6] == magic2
        payload = data[6 + 8:]
        legacy = b"RTSYN\x01" + payload
        restored = loads_analyzer(legacy)
        assert restored.pair_frequencies() \
            == service.analyzer.pair_frequencies()


class TestAtomicCheckpoint:
    def test_crash_mid_write_preserves_previous(self, tmp_path, monkeypatch):
        service = trained_service()
        path = tmp_path / "synopsis.ckpt"
        service.checkpoint_to(path)
        good = path.read_bytes()

        def exploding_dump(analyzer, stream):
            stream.write(b"RTSYN\x02partial")
            raise OSError("disk full")

        monkeypatch.setattr(serialize_module, "dump_analyzer",
                            exploding_dump)
        crashing = ResilientCharacterizationService(
            max_io_retries=1, backoff_base=1e-6, sleep=lambda _s: None,
            **service_kwargs(),
        )
        with pytest.raises(OSError):
            crashing.checkpoint_to(path)
        assert crashing.health().status == "degraded"
        assert crashing.health().checkpoint_failures == 1
        # The previous checkpoint is untouched and loadable.
        assert path.read_bytes() == good
        load_checkpoint(path)
        # No temp litter.
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_transient_failure_retried(self, tmp_path, monkeypatch):
        service = trained_service()
        path = tmp_path / "synopsis.ckpt"
        real_save = serialize_module.save_checkpoint
        attempts = {"n": 0}

        def flaky_save(analyzer, target):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise OSError("transient")
            return real_save(analyzer, target)

        import repro.resilience.service as resilient_module
        monkeypatch.setattr(resilient_module, "save_checkpoint", flaky_save)
        written = service.checkpoint_to(path)
        assert written > 0
        assert attempts["n"] == 3
        assert service.health().checkpoint_retries == 2
        assert service.health().checkpoint_failures == 0
        load_checkpoint(path)

    def test_save_checkpoint_is_atomic_at_the_file_level(self, tmp_path):
        service = trained_service()
        path = tmp_path / "synopsis.ckpt"
        save_checkpoint(service.analyzer, path)
        first = path.read_bytes()
        service.submit(event(1000.0, 31337))
        service.flush()
        save_checkpoint(service.analyzer, path)
        assert path.read_bytes() != first
        assert [p.name for p in tmp_path.iterdir()] == [path.name]


# ---------------------------------------------------------------------------
# Sink and observer isolation
# ---------------------------------------------------------------------------

class TestSinkIsolation:
    def test_guard_counts_and_quarantines(self):
        failures = {"n": 0}

        def bad_sink(_txn):
            failures["n"] += 1
            raise RuntimeError("boom")

        guard = SinkGuard(bad_sink, failure_limit=3)
        for _ in range(10):
            guard("payload")
        assert failures["n"] == 3          # stopped being invoked
        assert guard.quarantined
        assert guard.failures == 3
        assert guard.suppressed == 7
        assert "boom" in guard.last_error

    def test_intermittent_failures_do_not_quarantine(self):
        calls = {"n": 0}

        def flaky(_txn):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise RuntimeError("sometimes")

        guard = SinkGuard(flaky, failure_limit=3)
        for _ in range(20):
            guard("payload")
        assert not guard.quarantined
        assert guard.failures == 10

    def test_monitor_survives_crashing_sink(self):
        recorder = TransactionRecorder()
        guard = SinkGuard(lambda txn: 1 / 0, failure_limit=2)
        monitor = Monitor(window=StaticWindow(1e-3),
                          sinks=[guard, recorder])
        for i in range(50):
            monitor.on_event(event(i * 0.01, start=i))
        monitor.flush()
        assert len(recorder) == 50          # the healthy sink saw everything
        assert guard.quarantined

    def test_service_quarantines_bad_observer_keeps_good_one(self):
        service = ResilientCharacterizationService(
            observer_failure_limit=2, sleep=lambda _s: None,
            **dict(service_kwargs(), snapshot_interval=5),
        )
        seen = []
        service.observe(lambda snap: (_ for _ in ()).throw(
            RuntimeError("bad observer")))
        service.observe(seen.append)

        clock = 0.0
        for _round in range(30):
            service.submit(event(clock, 100))
            service.submit(event(clock + 1e-5, 9000))
            clock += 0.05
        service.flush()

        assert seen, "healthy observer must keep receiving snapshots"
        health = service.health()
        assert health.status == "degraded"
        assert health.quarantined_observers == 1
        assert health.observer_failures == 2
        assert any("quarantined" in reason for reason in health.reasons)
        # Ingestion never stopped.
        assert service.monitor.stats.events_seen == 60

    def test_clear_degraded_recovers(self):
        service = ResilientCharacterizationService(
            observer_failure_limit=1, sleep=lambda _s: None,
            **dict(service_kwargs(), snapshot_interval=1),
        )
        guard = service.observe(lambda snap: 1 / 0)
        service.submit(event(0.0, 1))
        service.flush()
        assert service.health().status == "degraded"
        service.clear_degraded()
        assert service.health().status == "ok"
        assert not guard.quarantined


# ---------------------------------------------------------------------------
# Clock-anomaly policies
# ---------------------------------------------------------------------------

class TestClockPolicies:
    def run_monitor(self, policy, timestamps, window=1e-3, **kwargs):
        recorder = TransactionRecorder()
        monitor = Monitor(window=StaticWindow(window), sinks=[recorder],
                          clock_policy=policy, **kwargs)
        for index, ts in enumerate(timestamps):
            monitor.on_event(event(ts, start=index))
        monitor.flush()
        return monitor, recorder

    def test_drop_policy_discards_backwards_events(self):
        monitor, recorder = self.run_monitor(
            ClockPolicy.DROP, [0.0, 1e-4, 5e-5, 2e-4]
        )
        delivered = sum(len(txn) for txn in recorder.transactions)
        assert delivered == 3
        assert monitor.stats.clock_anomalies == 1
        assert monitor.stats.events_dropped == 1

    def test_reorder_policy_folds_jitter_into_transaction(self):
        monitor, recorder = self.run_monitor(
            ClockPolicy.REORDER, [0.0, 5e-4, 3e-4, 7e-4]
        )
        assert len(recorder) == 1
        assert len(recorder.transactions[0]) == 4
        assert monitor.stats.events_reordered == 1
        assert monitor.stats.window_resets == 0

    def test_reorder_policy_escalates_large_jump_to_reset(self):
        monitor, recorder = self.run_monitor(
            ClockPolicy.REORDER, [100.0, 100.0001, 0.0, 0.0001]
        )
        assert len(recorder) == 2
        assert monitor.stats.window_resets == 1
        # After the reset the monitor lives in the new clock domain.
        assert [e.start for e in recorder.transactions[1].events] == [2, 3]

    def test_reset_policy_always_flushes(self):
        monitor, recorder = self.run_monitor(
            ClockPolicy.RESET, [0.0, 5e-4, 3e-4]
        )
        assert len(recorder) == 2
        assert monitor.stats.window_resets == 1

    def test_tolerate_matches_legacy_behaviour(self):
        monitor, recorder = self.run_monitor(
            ClockPolicy.TOLERATE, [100.0, 0.0]
        )
        assert len(recorder) == 1           # the historical silent merge
        assert monitor.stats.clock_anomalies == 1  # detected, not acted on

    def test_reordered_event_does_not_shrink_the_window(self):
        monitor, recorder = self.run_monitor(
            ClockPolicy.REORDER, [0.0, 5e-4, 3e-4, 1.4e-3]
        )
        # The gap anchor is the transaction's max timestamp (5e-4), not
        # the folded stale one (3e-4): 1.4e-3 is within one window.
        assert len(recorder) == 1

    def test_explicit_skew_bound(self):
        monitor, recorder = self.run_monitor(
            ClockPolicy.REORDER, [0.0, 1e-3, 0.5e-3],
            max_clock_skew=1e-4,
        )
        # Skew 0.5e-3 exceeds the explicit 1e-4 bound -> reset.
        assert monitor.stats.window_resets == 1


class NastyWindow(WindowPolicy):
    """A window policy that returns a degenerate duration."""

    def __init__(self, value):
        self.value = value

    def duration(self):
        return self.value


class TestWindowGuards:
    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_degenerate_window_clamped(self, bad):
        recorder = TransactionRecorder()
        monitor = Monitor(window=NastyWindow(bad), sinks=[recorder])
        for i in range(4):
            monitor.on_event(event(i * 1e-3, start=i))
        monitor.flush()
        delivered = sum(len(txn) for txn in recorder.transactions)
        assert delivered == 4               # nothing lost
        assert len(recorder) == 4           # zero window: one txn per event
        assert monitor.stats.window_clamps > 0

    def test_zero_window_keeps_simultaneous_events_together(self):
        recorder = TransactionRecorder()
        monitor = Monitor(window=NastyWindow(0.0), sinks=[recorder])
        for i in range(3):
            monitor.on_event(event(1.0, start=i))
        monitor.flush()
        assert len(recorder) == 1
        assert len(recorder.transactions[0]) == 3


# ---------------------------------------------------------------------------
# Crash injection: the pre-rename window
# ---------------------------------------------------------------------------

class TestCrashBeforeRename:
    """A crash between "temp file fsynced" and "rename issued" is the
    narrowest window a checkpoint writer exposes; in it, the previous
    checkpoint must remain untouched and loadable."""

    def test_v2_previous_checkpoint_survives(self, tmp_path):
        service = trained_service()
        path = tmp_path / "synopsis.ckpt"
        save_checkpoint(service.analyzer, path)
        good = path.read_bytes()

        service.submit(event(1000.0, 31337))
        service.flush()
        with crash_before_rename() as calls:
            with pytest.raises(SimulatedCrash):
                save_checkpoint(service.analyzer, path)
        assert calls[0] == 1
        assert path.read_bytes() == good
        load_checkpoint(path)
        # The aborted temp file was cleaned up.
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_v3_previous_checkpoint_survives(self, tmp_path):
        from repro.engine.checkpoint import (
            load_engine_checkpoint,
            save_engine_checkpoint,
        )
        service = ResilientCharacterizationService(
            shards=4, **service_kwargs()
        )
        clock = 0.0
        for _round in range(20):
            service.submit(event(clock, 100))
            service.submit(event(clock + 1e-5, 9000, length=16))
            clock += 0.05
        service.flush()
        path = tmp_path / "engine.ckpt"
        save_engine_checkpoint(service.analyzer, path)
        good = path.read_bytes()

        with crash_before_rename():
            with pytest.raises(SimulatedCrash):
                save_engine_checkpoint(service.analyzer, path)
        assert path.read_bytes() == good
        loaded = load_engine_checkpoint(path)
        assert loaded.corrupt_shards == []
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_checkpoint_to_handles_process_sharded_engine(self, tmp_path):
        """``checkpoint_to`` used to dispatch on the ``ShardedAnalyzer``
        base class and fall through to the single-analyzer v2 writer for
        a process-backed engine (which has no ``.items``); dispatch now
        rides the ``shard_analyzers`` seam, so both sharded shapes take
        the v3 path."""
        from repro.engine.checkpoint import load_engine_checkpoint
        service = ResilientCharacterizationService(
            shards=2, shard_processes=True, **service_kwargs()
        )
        path = tmp_path / "procs.ckpt"
        try:
            clock = 0.0
            for _round in range(20):
                service.submit(event(clock, 100))
                service.submit(event(clock + 1e-5, 9000, length=16))
                clock += 0.05
            service.flush()
            service.checkpoint_to(path)
        finally:
            service.release()
        loaded = load_engine_checkpoint(path)
        assert loaded.corrupt_shards == []
        assert loaded.engine.shards == 2

    def test_after_writes_lets_earlier_saves_through(self, tmp_path):
        service = trained_service()
        first = tmp_path / "a.ckpt"
        second = tmp_path / "b.ckpt"
        with crash_before_rename(after_writes=1) as calls:
            save_checkpoint(service.analyzer, first)  # save 1: allowed
            with pytest.raises(SimulatedCrash):
                save_checkpoint(service.analyzer, second)  # save 2: crash
        assert calls[0] == 2
        load_checkpoint(first)
        assert not second.exists()

    def test_crash_is_not_swallowed_by_checkpoint_retries(self, tmp_path):
        """The resilient service retries transient OSErrors; a simulated
        crash must rip straight through that machinery, exactly like a
        real one would."""
        service = trained_service()
        path = tmp_path / "synopsis.ckpt"
        service.checkpoint_to(path)
        good = path.read_bytes()
        with crash_before_rename():
            with pytest.raises(SimulatedCrash):
                service.checkpoint_to(path)
        # Not retried, not recorded as an I/O failure -- the process
        # would simply be gone.
        assert service.health().checkpoint_failures == 0
        assert path.read_bytes() == good

    def test_hook_is_restored_on_exit(self, tmp_path):
        service = trained_service()
        path = tmp_path / "synopsis.ckpt"
        with crash_before_rename():
            pass
        save_checkpoint(service.analyzer, path)  # hook gone: no crash
        load_checkpoint(path)

    def test_negative_after_writes_rejected(self):
        with pytest.raises(ValueError, match="after_writes"):
            with crash_before_rename(after_writes=-1):
                pass


# ---------------------------------------------------------------------------
# Dead-letter buffer: byte bound and quarantine dump
# ---------------------------------------------------------------------------

def letter(n, size=10):
    return RowError(line_number=n, row="x" * size, error=f"bad row {n}")


class TestDeadLetterBufferBytes:
    def test_byte_budget_evicts_oldest_first(self):
        buffer = DeadLetterBuffer(capacity=1000, max_bytes=100)
        for n in range(20):  # 20 * 10 bytes, budget holds 10 rows
            buffer.offer(letter(n))
        assert buffer.retained_bytes <= 100
        kept = [row.line_number for row in buffer.rows()]
        assert kept == list(range(10, 20))  # newest survive
        assert buffer.total == 20

    def test_oversized_row_retained_truncated(self):
        buffer = DeadLetterBuffer(capacity=8, max_bytes=64)
        buffer.offer(letter(1, size=10_000))
        assert len(buffer) == 1
        row = buffer.rows()[0]
        assert len(row.row.encode()) <= 64
        assert row.error.endswith("[row truncated]")
        assert buffer.retained_bytes <= 64

    def test_big_row_pushes_out_small_ones(self):
        buffer = DeadLetterBuffer(capacity=100, max_bytes=50)
        for n in range(4):
            buffer.offer(letter(n))           # 40 bytes resident
        buffer.offer(letter(99, size=30))     # needs 20 evicted
        kept = [row.line_number for row in buffer.rows()]
        assert kept == [2, 3, 99]
        assert buffer.retained_bytes == 50

    def test_accounting_matches_contents(self):
        buffer = DeadLetterBuffer(capacity=4, max_bytes=1 << 20, seed=3)
        for n in range(50):                   # exercise reservoir swaps
            buffer.offer(letter(n, size=5 + n % 7))
        assert buffer.retained_bytes == sum(
            len(row.row.encode()) for row in buffer.rows()
        )
        assert len(buffer) == 4

    def test_dump_ndjson_roundtrips(self, tmp_path):
        import json as json_module
        buffer = DeadLetterBuffer(capacity=16)
        for n in range(3):
            buffer.offer(letter(n))
        path = tmp_path / "quarantine.ndjson"
        assert buffer.dump_ndjson(path) == 3
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        parsed = [json_module.loads(line) for line in lines]
        assert [entry["line_number"] for entry in parsed] == [0, 1, 2]
        assert all(set(entry) == {"line_number", "error", "row"}
                   for entry in parsed)

    def test_invalid_max_bytes_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            DeadLetterBuffer(max_bytes=0)
