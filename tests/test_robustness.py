"""Robustness and failure-injection tests.

The framework must degrade gracefully on hostile input: out-of-order
events, clock anomalies, malformed trace files, degenerate configurations,
and overload.  These tests pin the intended behaviour in each case.
"""

import io

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.monitor.events import BlockIOEvent
from repro.monitor.monitor import Monitor, TransactionRecorder
from repro.monitor.window import StaticWindow
from repro.trace.io import read_blkparse_text, read_msr_csv
from repro.trace.record import OpType

from conftest import ext


def event(ts, start=0, length=1):
    return BlockIOEvent(ts, 1, OpType.READ, start, length)


class TestMonitorClockAnomalies:
    def test_out_of_order_events_are_not_lost(self):
        """blktrace can deliver slightly out-of-order events across CPUs;
        every event must still land in exactly one transaction."""
        recorder = TransactionRecorder()
        monitor = Monitor(window=StaticWindow(1e-3), sinks=[recorder])
        timestamps = [0.0, 5e-4, 3e-4, 7e-4, 6e-4]  # jitter within window
        for index, ts in enumerate(timestamps):
            monitor.on_event(event(ts, start=index))
        monitor.flush()
        delivered = sum(len(txn) for txn in recorder.transactions)
        assert delivered == len(timestamps)

    def test_backwards_jump_does_not_crash(self):
        recorder = TransactionRecorder()
        monitor = Monitor(window=StaticWindow(1e-3), sinks=[recorder])
        monitor.on_event(event(100.0, 1))
        monitor.on_event(event(0.0, 2))  # clock went backwards
        monitor.flush()
        delivered = sum(len(txn) for txn in recorder.transactions)
        assert delivered == 2

    def test_identical_timestamps(self):
        recorder = TransactionRecorder()
        monitor = Monitor(window=StaticWindow(1e-3), sinks=[recorder])
        for index in range(5):
            monitor.on_event(event(1.0, start=index))
        monitor.flush()
        assert len(recorder.transactions) == 1
        assert len(recorder.transactions[0]) == 5


class TestDegenerateConfigurations:
    def test_capacity_one_analyzer_survives_any_stream(self):
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=1, correlation_capacity=1
        ))
        for i in range(100):
            analyzer.process([ext(i), ext(i + 1000), ext(i + 2000)])
        assert len(analyzer.correlations) <= 2
        assert analyzer.correlations.check_index()

    def test_transaction_cap_one_degrades_to_item_counting(self):
        recorder = TransactionRecorder()
        monitor = Monitor(window=StaticWindow(1.0), sinks=[recorder],
                          max_transaction_size=1)
        for i in range(5):
            monitor.on_event(event(i * 1e-6, start=i))
        monitor.flush()
        assert all(len(txn) == 1 for txn in recorder.transactions)

    def test_analyzer_with_giant_transaction(self):
        """No cap at the analyzer level: a 100-extent transaction is legal
        (if quadratic) -- the cap lives in the monitor by design."""
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=8192, correlation_capacity=8192
        ))
        analyzer.process([ext(i * 10) for i in range(100)])
        assert analyzer.report().pairs_seen == 100 * 99 // 2


class TestMalformedTraceInput:
    def test_msr_csv_bad_field_count(self):
        with pytest.raises(ValueError):
            list(read_msr_csv(io.StringIO("1,2,3,4\n")))

    def test_msr_csv_negative_size_rejected_by_record(self):
        text = "0,h,0,Read,0,-512,0\n"
        with pytest.raises(ValueError):
            list(read_msr_csv(io.StringIO(text)))

    def test_blkparse_garbage_lines_skipped(self):
        noise = io.StringIO(
            "completely unrelated text\n"
            "8,0 garbage\n"
            "\n"
        )
        assert list(read_blkparse_text(noise)) == []

    def test_blkparse_wrong_separator_skipped(self):
        text = "  8,0  0  1  0.5  697  D  R 10 x 8 [x]\n"  # 'x' not '+'
        assert list(read_blkparse_text(io.StringIO(text))) == []


class TestOverload:
    def test_monitor_under_event_flood(self):
        """A burst far beyond the size cap splits cleanly; counters add up."""
        recorder = TransactionRecorder()
        monitor = Monitor(window=StaticWindow(10.0), sinks=[recorder])
        flood = 10_000
        for i in range(flood):
            monitor.on_event(event(i * 1e-9, start=i))
        monitor.flush()
        assert monitor.stats.events_seen == flood
        delivered = sum(len(txn) for txn in recorder.transactions)
        assert delivered == flood
        assert all(len(txn) <= 8 for txn in recorder.transactions)

    def test_synopsis_stable_under_adversarial_unique_stream(self):
        """A stream with no repetition at all: the synopsis holds its
        bound, detects nothing, and never crashes."""
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=64, correlation_capacity=64
        ))
        for i in range(5000):
            analyzer.process([ext(2 * i), ext(2 * i + 100001)])
        assert analyzer.frequent_pairs(min_support=2) == []
        assert len(analyzer.correlations) <= 128
