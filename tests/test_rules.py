"""Tests for association rule mining over correlations."""

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.fim.rules import (
    AssociationRule,
    RuleIndex,
    mine_rules,
    rules_from_analyzer,
)

from conftest import ext, pair


def example_counts():
    """A always co-occurs with B; C sometimes co-occurs with A."""
    pair_counts = {pair(1, 2): 8, pair(1, 3): 2}
    item_counts = {ext(1): 10, ext(2): 8, ext(3): 6}
    return pair_counts, item_counts


class TestMineRules:
    def test_confidence_is_directional(self):
        pair_counts, item_counts = example_counts()
        rules = mine_rules(pair_counts, item_counts, transactions=20,
                           min_support=2, min_confidence=0.1)
        by_direction = {
            (rule.antecedent, rule.consequent): rule for rule in rules
        }
        forward = by_direction[(ext(1), ext(2))]
        backward = by_direction[(ext(2), ext(1))]
        assert forward.confidence == pytest.approx(0.8)   # 8/10
        assert backward.confidence == pytest.approx(1.0)  # 8/8

    def test_min_confidence_filters(self):
        pair_counts, item_counts = example_counts()
        rules = mine_rules(pair_counts, item_counts, transactions=20,
                           min_support=2, min_confidence=0.9)
        assert all(rule.confidence >= 0.9 for rule in rules)
        assert (ext(2), ext(1)) in {
            (r.antecedent, r.consequent) for r in rules
        }

    def test_min_support_filters(self):
        pair_counts, item_counts = example_counts()
        rules = mine_rules(pair_counts, item_counts, transactions=20,
                           min_support=5, min_confidence=0.1)
        assert all(rule.support >= 5 for rule in rules)

    def test_lift_computation(self):
        pair_counts, item_counts = example_counts()
        rules = mine_rules(pair_counts, item_counts, transactions=20,
                           min_support=2, min_confidence=0.1)
        forward = next(r for r in rules
                       if (r.antecedent, r.consequent) == (ext(1), ext(2)))
        # lift = confidence / P(B) = 0.8 / (8/20) = 2.0
        assert forward.lift == pytest.approx(2.0)

    def test_sorted_strongest_first(self):
        pair_counts, item_counts = example_counts()
        rules = mine_rules(pair_counts, item_counts, transactions=20,
                           min_support=1, min_confidence=0.1)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_validation(self):
        pair_counts, item_counts = example_counts()
        with pytest.raises(ValueError):
            mine_rules(pair_counts, item_counts, transactions=0)
        with pytest.raises(ValueError):
            mine_rules(pair_counts, item_counts, 10, min_support=0)
        with pytest.raises(ValueError):
            mine_rules(pair_counts, item_counts, 10, min_confidence=0.0)

    def test_missing_antecedent_count_skipped(self):
        rules = mine_rules({pair(1, 2): 3}, {ext(2): 3}, transactions=5,
                           min_support=1, min_confidence=0.1)
        # Only the direction with a known antecedent count is emitted.
        assert [(r.antecedent, r.consequent) for r in rules] == [
            (ext(2), ext(1))
        ]

    def test_confidence_capped_at_one(self):
        # Synopsis undercounting can make pair > item tallies; cap at 1.
        rules = mine_rules({pair(1, 2): 5}, {ext(1): 3, ext(2): 5},
                           transactions=5, min_support=1, min_confidence=0.1)
        assert all(rule.confidence <= 1.0 for rule in rules)

    def test_str_rendering(self):
        rule = AssociationRule(ext(1), ext(2), 8, 0.8, 2.0)
        assert "->" in str(rule) and "conf=0.80" in str(rule)


class TestRulesFromAnalyzer:
    def test_end_to_end(self):
        analyzer = OnlineAnalyzer(AnalyzerConfig(item_capacity=32,
                                                 correlation_capacity=32))
        for _ in range(6):
            analyzer.process([ext(1), ext(2)])
        analyzer.process([ext(1), ext(99)])
        rules = rules_from_analyzer(analyzer, min_support=3,
                                    min_confidence=0.5)
        directions = {(r.antecedent, r.consequent) for r in rules}
        assert (ext(2), ext(1)) in directions
        assert all(rule.support >= 3 for rule in rules)


class TestRuleIndex:
    def _rules(self):
        return [
            AssociationRule(ext(1), ext(2), 8, 0.8, 2.0),
            AssociationRule(ext(1), ext(3), 4, 0.9, 3.0),
            AssociationRule(ext(5), ext(6), 2, 0.6, 1.5),
        ]

    def test_lookup_sorted_by_confidence(self):
        index = RuleIndex(self._rules())
        assert index.consequents_of(ext(1)) == [ext(3), ext(2)]

    def test_limit(self):
        index = RuleIndex(self._rules())
        assert index.consequents_of(ext(1), limit=1) == [ext(3)]

    def test_unknown_antecedent(self):
        index = RuleIndex(self._rules())
        assert index.consequents_of(ext(42)) == []
        assert index.rules_of(ext(42)) == []

    def test_len(self):
        assert len(RuleIndex(self._rules())) == 3
