"""Tests for correlation-aware I/O scheduling."""

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.optimize.scheduler import (
    CorrelationScheduler,
    FifoScheduler,
    run_dispatch_experiment,
)

from conftest import ext, pair


def trained_analyzer(pairs):
    analyzer = OnlineAnalyzer(AnalyzerConfig(item_capacity=64,
                                             correlation_capacity=64))
    for p in pairs:
        for _ in range(5):
            analyzer.process([p.first, p.second])
    return analyzer


def interleaved_arrivals(pairs, spacing=6, rounds=20):
    """Pair members arrive `spacing` positions apart, noise between."""
    arrivals = []
    noise = 100000
    for round_index in range(rounds):
        p = pairs[round_index % len(pairs)]
        arrivals.append(p.first)
        for _ in range(spacing - 1):
            arrivals.append(ext(noise))
            noise += 1
        arrivals.append(p.second)
    return arrivals


class TestSchedulers:
    def test_fifo_preserves_order(self):
        scheduler = FifoScheduler()
        for extent in (ext(3), ext(1), ext(2)):
            scheduler.submit(extent)
        assert scheduler.dispatch() == ext(3)
        assert scheduler.dispatch() == ext(1)
        assert scheduler.dispatch() == ext(2)
        assert scheduler.dispatch() is None

    def test_correlation_scheduler_promotes_partner(self):
        watched = pair(1, 2)
        analyzer = trained_analyzer([watched])
        scheduler = CorrelationScheduler(analyzer, min_support=2)
        scheduler.submit(ext(1))
        scheduler.submit(ext(500))
        scheduler.submit(ext(2))
        assert scheduler.dispatch() == ext(1)
        assert scheduler.dispatch() == ext(2)  # promoted past ext(500)
        assert scheduler.dispatch() == ext(500)
        assert scheduler.stats_promotions == 1

    def test_fairness_window_bounds_promotion(self):
        watched = pair(1, 2)
        analyzer = trained_analyzer([watched])
        scheduler = CorrelationScheduler(analyzer, min_support=2,
                                         fairness_window=2)
        scheduler.submit(ext(1))
        for i in range(5):
            scheduler.submit(ext(500 + i))
        scheduler.submit(ext(2))  # deeper than the window
        scheduler.dispatch()
        assert scheduler.dispatch() == ext(500)  # no promotion
        assert scheduler.stats_promotions == 0

    def test_validation(self):
        analyzer = trained_analyzer([pair(1, 2)])
        with pytest.raises(ValueError):
            CorrelationScheduler(analyzer, fairness_window=0)


class TestDispatchExperiment:
    def test_correlation_scheduling_tightens_partner_distance(self):
        pairs = [pair(i * 1000, i * 1000 + 500) for i in range(1, 5)]
        arrivals = interleaved_arrivals(pairs)
        analyzer = trained_analyzer(pairs)

        fifo = run_dispatch_experiment(
            arrivals, FifoScheduler(), pairs, queue_depth=16
        )
        smart = run_dispatch_experiment(
            arrivals,
            CorrelationScheduler(analyzer, min_support=2,
                                 fairness_window=16),
            pairs,
            queue_depth=16,
        )
        assert fifo.dispatched == smart.dispatched == len(arrivals)
        assert smart.mean_partner_distance < fifo.mean_partner_distance
        assert smart.adjacent_fraction > fifo.adjacent_fraction
        assert smart.promotions > 0

    def test_all_arrivals_dispatched_exactly_once(self):
        pairs = [pair(1000, 1500)]
        arrivals = interleaved_arrivals(pairs, rounds=8)
        analyzer = trained_analyzer(pairs)
        stats = run_dispatch_experiment(
            arrivals, CorrelationScheduler(analyzer), pairs, queue_depth=4
        )
        assert stats.dispatched == len(arrivals)

    def test_queue_depth_validation(self):
        with pytest.raises(ValueError):
            run_dispatch_experiment([], FifoScheduler(), [], queue_depth=0)

    def test_no_watched_pairs(self):
        stats = run_dispatch_experiment(
            [ext(1), ext(2)], FifoScheduler(), [], queue_depth=2
        )
        assert stats.mean_partner_distance == 0.0
        assert stats.adjacent_fraction == 0.0
