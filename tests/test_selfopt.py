"""Tests for the self-optimizing controller (closing Fig. 3's loop)."""

import pytest

from repro.monitor.events import BlockIOEvent
from repro.monitor.monitor import Monitor
from repro.monitor.transaction import Transaction
from repro.monitor.window import StaticWindow
from repro.optimize.multistream import FlashConfig
from repro.optimize.openchannel import OcssdConfig, StripingPlacement
from repro.optimize.selfopt import SelfOptimizingController
from repro.trace.record import OpType

from conftest import ext

R, W = OpType.READ, OpType.WRITE


def txn(*items):
    """Transaction of (start, length, op) tuples."""
    events = [
        BlockIOEvent(i * 1e-5, 1, op, start, length)
        for i, (start, length, op) in enumerate(items)
    ]
    return Transaction(events)


def small_controller(refresh_interval=10, min_support=2):
    return SelfOptimizingController(
        flash_config=FlashConfig(erase_units=32, pages_per_eu=16,
                                 streams=8, overprovision_eus=6),
        ocssd_config=OcssdConfig(parallel_units=4),
        refresh_interval=refresh_interval,
        min_support=min_support,
    )


def feed_mixed(controller, rounds):
    """Write-correlated group (A) and read-correlated group (B)."""
    for _ in range(rounds):
        controller.on_transaction(
            txn((1000, 8, W), (2000, 8, W))      # write pair
        )
        controller.on_transaction(
            txn((50000, 8, R), (60000, 8, R))    # read pair
        )


class TestColdStart:
    def test_baselines_before_first_refresh(self):
        controller = small_controller(refresh_interval=1000)
        feed_mixed(controller, 3)
        assert not controller.is_optimizing
        assert controller.assign_stream(ext(1000, 8)) == 0
        striping = StripingPlacement(controller.ocssd_config)
        assert controller.place(ext(50000, 8)) == (
            striping.unit_of(ext(50000, 8))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SelfOptimizingController(refresh_interval=0)
        with pytest.raises(ValueError):
            SelfOptimizingController(min_support=0)


class TestRefresh:
    def test_refresh_fires_on_interval(self):
        controller = small_controller(refresh_interval=6)
        feed_mixed(controller, 6)  # 12 transactions -> 2 refreshes
        assert controller.stats.refreshes == 2
        assert controller.stats.transactions == 12

    def test_policies_learn_from_types(self):
        controller = small_controller(refresh_interval=10, min_support=2)
        feed_mixed(controller, 10)
        assert controller.is_optimizing
        # Write partners share a (non-default) stream.
        stream_a = controller.assign_stream(ext(1000, 8))
        stream_b = controller.assign_stream(ext(2000, 8))
        assert stream_a == stream_b != 0
        # Read partners land on distinct parallel units.
        assert controller.place(ext(50000, 8)) != controller.place(ext(60000, 8))
        assert controller.stats.write_pairs_last_refresh >= 1
        assert controller.stats.read_pairs_last_refresh >= 1

    def test_read_pairs_do_not_enter_stream_policy(self):
        controller = small_controller(refresh_interval=10, min_support=2)
        feed_mixed(controller, 10)
        # The read-correlated extents were never write-correlated: they go
        # to the default stream.
        assert controller.assign_stream(ext(50000, 8)) == 0

    def test_manual_refresh(self):
        controller = small_controller(refresh_interval=10 ** 6)
        feed_mixed(controller, 5)
        controller.refresh()
        assert controller.stats.refreshes == 1
        assert controller.is_optimizing


class TestWithMonitor:
    def test_as_monitor_sink_end_to_end(self):
        controller = small_controller(refresh_interval=20, min_support=2)
        monitor = Monitor(window=StaticWindow(1e-3),
                          sinks=[controller.on_transaction])
        clock = 0.0
        for round_index in range(40):
            writes = [
                BlockIOEvent(clock, 1, W, 1000, 8),
                BlockIOEvent(clock + 1e-5, 1, W, 2000, 8),
            ]
            for event in writes:
                monitor.on_event(event)
            clock += 0.1
        monitor.flush()
        assert controller.stats.transactions > 0
        assert controller.is_optimizing
        assert controller.assign_stream(ext(1000, 8)) == (
            controller.assign_stream(ext(2000, 8))
        )
