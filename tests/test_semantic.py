"""Tests for the semantic workload layer (filesystem + applications)."""

import pytest

from repro.core.extent import ExtentPair
from repro.pipeline import run_pipeline
from repro.workloads.semantic import (
    FileServerSpec,
    FilesystemLayout,
    WebsiteSpec,
    generate_fileserver,
    generate_website,
)


class TestFilesystemLayout:
    def test_inodes_low_data_high(self):
        layout = FilesystemLayout(inode_region_blocks=128, seed=1)
        file_object = layout.create_file("f", 32)
        assert file_object.inode.start < 128
        for extent in file_object.data:
            assert extent.start >= 128

    def test_data_extents_never_overlap(self):
        layout = FilesystemLayout(seed=2, fragmentation=0.6)
        extents = []
        for index in range(30):
            file_object = layout.create_file(f"f{index}", 40)
            extents.extend(file_object.all_extents())
        ordered = sorted(extents)
        for a, b in zip(ordered, ordered[1:]):
            assert not a.overlaps(b)

    def test_total_data_blocks_preserved(self):
        layout = FilesystemLayout(seed=3, fragmentation=0.9)
        file_object = layout.create_file("f", 100)
        assert sum(extent.length for extent in file_object.data) == 100

    def test_fragmentation_splits_large_files(self):
        fragmented = FilesystemLayout(seed=4, fragmentation=1.0)
        file_object = fragmented.create_file("f", 64)
        assert len(file_object.data) > 1
        contiguous = FilesystemLayout(seed=4, fragmentation=0.0)
        assert len(contiguous.create_file("f", 64).data) == 1

    def test_semantic_pairs_cover_inode_and_data(self):
        layout = FilesystemLayout(seed=5, fragmentation=1.0)
        file_object = layout.create_file("f", 64)
        pairs = file_object.semantic_pairs()
        extents = file_object.all_extents()
        assert len(pairs) == len(extents) * (len(extents) - 1) // 2
        assert any(pair.involves(file_object.inode) for pair in pairs)

    def test_inode_table_exhaustion(self):
        layout = FilesystemLayout(inode_region_blocks=2, seed=1)
        layout.create_file("a", 4)
        layout.create_file("b", 4)
        with pytest.raises(RuntimeError):
            layout.create_file("c", 4)

    def test_table_allocation(self):
        layout = FilesystemLayout(seed=6)
        table = layout.create_table("t", pages=4, page_blocks=16)
        assert len(table.pages) >= 4
        assert sum(page.length for page in table.pages) == 4 * 16

    def test_validation(self):
        with pytest.raises(ValueError):
            FilesystemLayout(inode_region_blocks=0)
        with pytest.raises(ValueError):
            FilesystemLayout(fragmentation=1.5)
        layout = FilesystemLayout()
        with pytest.raises(ValueError):
            layout.create_file("x", 0)
        with pytest.raises(ValueError):
            layout.create_table("x", 0)


class TestFileServer:
    def test_generated_trace_shape(self):
        records, truth, layout = generate_fileserver(
            FileServerSpec(files=5, requests=50, seed=7)
        )
        assert records
        times = [record.timestamp for record in records]
        assert times == sorted(times)
        assert len(truth.file_pairs) == 5

    def test_inode_data_correlations_detected_online(self):
        """The paper's inode/data example, end to end: the framework must
        detect the hottest file's inode<->data correlation."""
        spec = FileServerSpec(files=8, requests=400, seed=9)
        records, truth, layout = generate_fileserver(spec)
        result = run_pipeline(records, record_offline=False)
        detected = {p for p, _t in result.frequent_pairs(min_support=5)}
        hottest = layout.files[0]  # rank 1 under Zipf popularity
        expected = set(hottest.semantic_pairs())
        assert expected & detected, "no inode/data correlation detected"

    def test_mixed_read_write(self):
        records, _truth, _layout = generate_fileserver(
            FileServerSpec(files=5, requests=200, write_fraction=0.5, seed=3)
        )
        ops = {record.op for record in records}
        assert len(ops) == 2


class TestWebsite:
    def test_truth_includes_web_db_pairs(self):
        records, truth, layout = generate_website(
            WebsiteSpec(pages=4, tables=2, requests=50, seed=11)
        )
        assert truth.web_db_pairs
        # Every web/db pair links a file extent with a table index.
        table_indexes = {table.index for table in layout.tables}
        for pair in truth.web_db_pairs:
            assert pair.first in table_indexes or pair.second in table_indexes

    def test_web_db_correlation_detected_online(self):
        """The paper's web-server/database example, end to end."""
        spec = WebsiteSpec(pages=4, tables=2, requests=300, seed=13)
        records, truth, layout = generate_website(spec)
        result = run_pipeline(records, record_offline=False)
        detected = {p for p, _t in result.frequent_pairs(min_support=5)}
        cross = set(truth.web_db_pairs) & detected
        assert cross, "no web<->database correlation detected"

    def test_deterministic(self):
        spec = WebsiteSpec(requests=40, seed=21)
        first, _t1, _l1 = generate_website(spec)
        second, _t2, _l2 = generate_website(spec)
        assert first == second
