"""Tests for sequential-vs-semantic correlation classification."""

import pytest

from repro.analysis.sequential import (
    ClassifierConfig,
    PatternKind,
    classify_correlations,
    classify_pair,
    split_by_kind,
)
from repro.core.extent import Extent, ExtentPair

from conftest import pair


class TestClassifyPair:
    def test_adjacent_is_sequential(self):
        assert classify_pair(
            ExtentPair(Extent(0, 8), Extent(8, 8))
        ) is PatternKind.SEQUENTIAL

    def test_small_gap_is_sequential(self):
        config = ClassifierConfig(sequential_gap=8)
        assert classify_pair(
            ExtentPair(Extent(0, 8), Extent(12, 8)), config
        ) is PatternKind.SEQUENTIAL

    def test_overlapping_is_sequential(self):
        assert classify_pair(
            ExtentPair(Extent(0, 16), Extent(8, 16))
        ) is PatternKind.SEQUENTIAL

    def test_medium_gap_is_near(self):
        config = ClassifierConfig(sequential_gap=8, locality_span=2048)
        assert classify_pair(
            ExtentPair(Extent(0, 8), Extent(500, 8)), config
        ) is PatternKind.NEAR

    def test_large_gap_is_scattered(self):
        assert classify_pair(
            ExtentPair(Extent(0, 8), Extent(10_000_000, 8))
        ) is PatternKind.SCATTERED

    def test_gap_measured_from_lower_end(self):
        config = ClassifierConfig(sequential_gap=0, locality_span=100)
        # end of low = 10; start of high = 10 -> gap 0 -> sequential.
        assert classify_pair(
            ExtentPair(Extent(0, 10), Extent(10, 5)), config
        ) is PatternKind.SEQUENTIAL

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClassifierConfig(sequential_gap=-1)
        with pytest.raises(ValueError):
            ClassifierConfig(sequential_gap=100, locality_span=50)


class TestComposition:
    def _counts(self):
        return {
            ExtentPair(Extent(0, 8), Extent(8, 8)): 10,          # sequential
            ExtentPair(Extent(100, 8), Extent(400, 8)): 5,       # near
            ExtentPair(Extent(0, 8), Extent(9_000_000, 8)): 3,   # scattered
            ExtentPair(Extent(50, 8), Extent(8_000_000, 8)): 2,  # scattered
        }

    def test_counts_and_weights(self):
        composition = classify_correlations(self._counts())
        assert composition.counts[PatternKind.SEQUENTIAL] == 1
        assert composition.counts[PatternKind.NEAR] == 1
        assert composition.counts[PatternKind.SCATTERED] == 2
        assert composition.weights[PatternKind.SEQUENTIAL] == 10
        assert composition.weights[PatternKind.SCATTERED] == 5

    def test_fractions(self):
        composition = classify_correlations(self._counts())
        assert composition.fraction(PatternKind.SCATTERED) == pytest.approx(0.5)
        assert composition.weighted_fraction(PatternKind.SEQUENTIAL) == (
            pytest.approx(0.5)
        )
        total = sum(composition.fraction(kind) for kind in PatternKind)
        assert total == pytest.approx(1.0)

    def test_empty_composition(self):
        composition = classify_correlations({})
        assert composition.total_pairs == 0
        assert composition.fraction(PatternKind.NEAR) == 0.0

    def test_split_by_kind_partitions(self):
        counts = self._counts()
        partitions = split_by_kind(counts)
        merged = {}
        for subset in partitions.values():
            merged.update(subset)
        assert merged == counts
        assert len(partitions[PatternKind.SCATTERED]) == 2


class TestOnSyntheticTruth:
    def test_planted_correlations_are_not_sequential(self, small_synthetic):
        """The synthetic generator places pair members in disjoint halves
        of their region -- they must classify as semantic, not sequential."""
        _records, truth = small_synthetic
        for planted in truth.pairs:
            assert classify_pair(planted) is not PatternKind.SEQUENTIAL
