"""Tests for synopsis checkpoint/restore."""

import io

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.serialize import (
    dump_analyzer,
    dumps_analyzer,
    load_analyzer,
    loads_analyzer,
    synopsis_size_bytes,
)

from conftest import ext


def trained_analyzer(capacity=32):
    analyzer = OnlineAnalyzer(AnalyzerConfig(
        item_capacity=capacity, correlation_capacity=capacity
    ))
    for i in range(40):
        analyzer.process([ext(1), ext(2)])
        analyzer.process([ext(i * 10 + 100), ext(i * 10 + 5000)])
    return analyzer


class TestRoundtrip:
    def test_pair_frequencies_preserved(self):
        analyzer = trained_analyzer()
        restored = loads_analyzer(dumps_analyzer(analyzer))
        assert restored.pair_frequencies() == analyzer.pair_frequencies()

    def test_item_tallies_preserved(self):
        analyzer = trained_analyzer()
        restored = loads_analyzer(dumps_analyzer(analyzer))
        assert restored.items.items() == analyzer.items.items()

    def test_tier_membership_preserved(self):
        analyzer = trained_analyzer()
        restored = loads_analyzer(dumps_analyzer(analyzer))
        for extent, _tally, tier in analyzer.items.items():
            assert restored.items.tier_of(extent) == tier
        for pair, _tally, tier in analyzer.correlations.items():
            assert restored.correlations.tier_of(pair) == tier

    def test_lru_order_preserved(self):
        """The restored synopsis must evict in the same order."""
        analyzer = trained_analyzer(capacity=8)
        restored = loads_analyzer(dumps_analyzer(analyzer))
        original_order = analyzer.correlations._table.t1.keys_mru_order()
        restored_order = restored.correlations._table.t1.keys_mru_order()
        assert original_order == restored_order

    def test_restored_analyzer_keeps_learning(self):
        analyzer = trained_analyzer()
        restored = loads_analyzer(dumps_analyzer(analyzer))
        before = restored.correlations.tally(
            next(iter(restored.pair_frequencies()))
        )
        restored.process([ext(1), ext(2)])
        from conftest import pair
        assert restored.correlations.tally(pair(1, 2)) is not None
        assert restored.correlations.check_index()

    def test_capacities_and_threshold_preserved(self):
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=16, correlation_capacity=64, promote_threshold=3
        ))
        analyzer.process([ext(1), ext(2)])
        restored = loads_analyzer(dumps_analyzer(analyzer))
        assert restored.items.capacity == analyzer.items.capacity
        assert restored.correlations.capacity == analyzer.correlations.capacity
        assert restored.config.promote_threshold == 3

    def test_empty_analyzer_roundtrip(self):
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=8, correlation_capacity=8
        ))
        restored = loads_analyzer(dumps_analyzer(analyzer))
        assert restored.pair_frequencies() == {}


class TestFormat:
    def test_size_accounting(self):
        analyzer = trained_analyzer()
        data = dumps_analyzer(analyzer)
        assert len(data) == synopsis_size_bytes(analyzer)

    def test_size_tracks_paper_entry_layout(self):
        """Entries serialise at the paper's 16/28-byte sizes."""
        empty = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=8, correlation_capacity=8
        ))
        base = len(dumps_analyzer(empty))
        empty.process([ext(1)])
        with_one_item = len(dumps_analyzer(empty))
        assert with_one_item - base == 16
        empty.process([ext(1), ext(2)])
        with_pair = len(dumps_analyzer(empty))
        assert with_pair - with_one_item == 16 + 28  # one item + one pair

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            load_analyzer(io.BytesIO(b"NOTASYNOPSIS"))

    def test_truncated_stream_rejected(self):
        data = dumps_analyzer(trained_analyzer())
        with pytest.raises(ValueError):
            loads_analyzer(data[:-10])

    def test_stream_dump(self):
        analyzer = trained_analyzer()
        buffer = io.BytesIO()
        written = dump_analyzer(analyzer, buffer)
        assert written == len(buffer.getvalue())
