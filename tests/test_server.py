"""Tests for the serving layer: protocol, backpressure, server, client."""

import os
import socket
import threading

import pytest

from repro.core.config import AnalyzerConfig
from repro.monitor.events import BlockIOEvent
from repro.monitor.window import StaticWindow
from repro.pipeline import run_pipeline
from repro.resilience.policy import BackoffPolicy
from repro.server import protocol
from repro.server.backpressure import Admission, BoundedIngestQueue
from repro.server.client import (
    BatchingWriter,
    CharacterizationClient,
    ServerError,
    ServerOverloadedError,
)
from repro.server.protocol import FrameDecoder, encode_frame
from repro.server.server import CharacterizationServer, ServerThread
from repro.service import CharacterizationService
from repro.telemetry.export import snapshot, snapshot_value
from repro.telemetry.metrics import NULL_REGISTRY, MetricsRegistry
from repro.trace.record import OpType, TraceRecord

from conftest import pair

R = OpType.READ


def event(ts, start, length=8, op=R):
    return BlockIOEvent(ts, 1, op, start, length)


def hot_events(rounds, base=0.0, first=100, second=9000):
    """``rounds`` two-request transactions on one hot extent pair."""
    events = []
    clock = base
    for _ in range(rounds):
        events.append(event(clock, first, 8))
        events.append(event(clock + 1e-5, second, 16))
        clock += 0.05
    return events


def make_service(**overrides):
    defaults = dict(
        config=AnalyzerConfig(item_capacity=512, correlation_capacity=512),
        window=StaticWindow(1e-3),
        min_support=2,
        snapshot_interval=1000,
    )
    defaults.update(overrides)
    return CharacterizationService(**defaults)


def make_server(tmp_path, service=None, registry=None, **kw):
    registry = registry if registry is not None else MetricsRegistry()
    if service is None:
        service = make_service(registry=registry)
    return CharacterizationServer(
        service, unix_path=tmp_path / "server.sock", registry=registry, **kw
    )


class RawConnection:
    """A bare socket speaking the frame protocol, for wire-level tests."""

    def __init__(self, address):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(10.0)
        self.sock.connect(address)
        self.decoder = FrameDecoder()

    def send_raw(self, data: bytes):
        self.sock.sendall(data)

    def read_reply(self):
        while True:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            frames = self.decoder.feed(chunk)
            if frames:
                assert frames[0].ok, frames[0].error
                return frames[0].payload

    def request(self, payload):
        self.send_raw(encode_frame(payload))
        return self.read_reply()

    def close(self):
        self.sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------

class TestFrameCodec:
    def test_roundtrip_single(self):
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frame({"type": "PING", "id": 7}))
        assert len(frames) == 1
        assert frames[0].ok
        assert frames[0].payload == {"type": "PING", "id": 7}

    def test_byte_at_a_time(self):
        """A frame fragmented into 1-byte reads decodes exactly once."""
        decoder = FrameDecoder()
        data = encode_frame({"type": "PING"})
        frames = []
        for i in range(len(data)):
            frames.extend(decoder.feed(data[i:i + 1]))
        assert [f.payload for f in frames] == [{"type": "PING"}]
        assert decoder.pending_bytes == 0

    def test_many_frames_one_feed(self):
        decoder = FrameDecoder()
        blob = b"".join(encode_frame({"type": "PING", "id": i})
                        for i in range(5))
        frames = decoder.feed(blob)
        assert [f.payload["id"] for f in frames] == list(range(5))

    def test_split_across_frame_boundary(self):
        decoder = FrameDecoder()
        blob = encode_frame({"type": "STATS"}) + encode_frame({"type": "PING"})
        cut = len(encode_frame({"type": "STATS"})) + 2  # mid length prefix
        first = decoder.feed(blob[:cut])
        second = decoder.feed(blob[cut:])
        assert [f.type for f in first + second] == ["STATS", "PING"]

    def test_oversized_skipped_and_stream_recovers(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        big = encode_frame({"type": "BATCH", "events": [{"x": 1}] * 50})
        frames = decoder.feed(big + encode_frame({"type": "PING"}))
        assert not frames[0].ok
        assert frames[0].error_code == protocol.ERR_TOO_LARGE
        assert frames[1].ok and frames[1].type == "PING"

    def test_oversized_discard_spans_feeds(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        big = encode_frame({"type": "BATCH", "events": [{"x": 1}] * 50})
        frames = []
        for i in range(0, len(big), 7):
            frames.extend(decoder.feed(big[i:i + 7]))
        frames.extend(decoder.feed(encode_frame({"type": "PING"})))
        assert [f.ok for f in frames] == [False, True]
        assert frames[0].error_code == protocol.ERR_TOO_LARGE

    def test_malformed_json(self):
        decoder = FrameDecoder()
        body = b"{not json}\n"
        frames = decoder.feed(protocol._LENGTH.pack(len(body)) + body)
        assert not frames[0].ok
        assert frames[0].error_code == protocol.ERR_MALFORMED

    def test_non_object_frame_rejected(self):
        decoder = FrameDecoder()
        body = b"[1,2,3]\n"
        frames = decoder.feed(protocol._LENGTH.pack(len(body)) + body)
        assert frames[0].error_code == protocol.ERR_MALFORMED

    def test_missing_type_rejected(self):
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frame({"nope": 1}))
        assert frames[0].error_code == protocol.ERR_MALFORMED

    def test_event_payload_roundtrip(self):
        original = BlockIOEvent(1.5, 7, OpType.WRITE, 4096, 16,
                                latency=2e-3, pgid=3)
        restored = protocol.event_from_payload(
            protocol.event_to_payload(original))
        assert restored == original

    def test_event_payload_omits_defaults(self):
        payload = protocol.event_to_payload(event(0.0, 100))
        assert set(payload) == {"ts", "op", "start", "len", "pid"}
        restored = protocol.event_from_payload(payload)
        assert restored.latency is None and restored.pgid == 0

    def test_events_from_frame_validates(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.events_from_frame({"type": "BATCH", "events": "nope"})
        with pytest.raises(protocol.ProtocolError):
            protocol.events_from_frame({"type": "EVENT",
                                        "event": {"ts": 0.0}})


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

class TestBoundedQueue:
    def test_soft_throttle_hard_reject(self):
        queue = BoundedIngestQueue(soft_limit=10, hard_limit=20)
        assert queue.offer([event(0.0, 1)] * 5) is Admission.ACCEPTED
        assert queue.offer([event(0.0, 1)] * 10) is Admission.THROTTLED
        assert queue.offer([event(0.0, 1)] * 10) is Admission.REJECTED
        assert queue.depth == 15  # the rejected frame left no residue

    def test_whole_frame_admission(self):
        """A frame is accepted or rejected atomically, never split."""
        queue = BoundedIngestQueue(soft_limit=5, hard_limit=10)
        assert queue.offer([event(0.0, 1)] * 8) is Admission.THROTTLED
        assert queue.offer([event(0.0, 1)] * 3) is Admission.REJECTED
        assert queue.stats.rejected_events == 3
        assert queue.stats.accepted_events == 8

    def test_pop_preserves_order_and_tags(self):
        queue = BoundedIngestQueue(soft_limit=100, hard_limit=100)
        queue.offer([event(0.0, 1)], tag="a")
        queue.offer([event(0.0, 2), event(0.0, 3)], tag="b")
        assert queue.pop() == ("a", [event(0.0, 1)])
        tag, batch = queue.pop()
        assert tag == "b" and len(batch) == 2
        assert queue.pop() is None
        assert queue.empty

    def test_watermark_tracks_peak(self):
        queue = BoundedIngestQueue(soft_limit=100, hard_limit=100)
        queue.offer([event(0.0, 1)] * 30)
        queue.drain()
        queue.offer([event(0.0, 1)] * 5)
        assert queue.stats.high_watermark == 30
        assert queue.depth == 5

    def test_retry_after_grows_with_overage(self):
        queue = BoundedIngestQueue(soft_limit=10, hard_limit=100)
        queue.offer([event(0.0, 1)] * 20)
        shallow = queue.retry_after()
        queue.offer([event(0.0, 1)] * 60)
        assert queue.retry_after() > shallow > 0


# ---------------------------------------------------------------------------
# Server + client, end to end over a Unix socket
# ---------------------------------------------------------------------------

class TestServerBasics:
    def test_ping_reports_protocol_version(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with CharacterizationClient(handle.address) as client:
                reply = client.ping()
        assert reply["version"] == protocol.PROTOCOL_VERSION

    def test_ingest_then_query_reads_own_writes(self, tmp_path):
        """A QUERY drains the same connection's queue first."""
        with ServerThread(make_server(tmp_path)) as handle:
            with CharacterizationClient(handle.address) as client:
                client.send_events(hot_events(10))
                top = client.query_top(k=5, min_support=3)
        assert top[0][0] == pair(100, 9000, 8, 16)
        assert top[0][1] >= 9  # the 10th transaction may still be open

    def test_query_items(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with CharacterizationClient(handle.address) as client:
                client.send_events(hot_events(10))
                items = client.query_items(k=4, min_support=3)
        starts = {extent.start for extent, _count in items}
        assert {100, 9000} <= starts

    def test_single_event_frames(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with CharacterizationClient(handle.address) as client:
                for evt in hot_events(5):
                    reply = client.send_event(evt)
                    assert reply["accepted"] == 1
                stats = client.stats()
        assert stats["monitor"]["events_seen"] == 10

    def test_stats_shape(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with CharacterizationClient(handle.address) as client:
                client.send_events(hot_events(4))
                stats = client.stats()
        assert stats["monitor"]["events_seen"] == 8
        assert stats["transactions"] == 3  # last window still open
        assert stats["connections"] == 1
        assert stats["tenants"] == [""]
        assert stats["poisoned_batches"] == 0

    def test_default_backend_is_resilient(self, tmp_path):
        registry = MetricsRegistry()
        server = CharacterizationServer(unix_path=tmp_path / "server.sock",
                                        registry=registry)
        with ServerThread(server) as handle:
            with CharacterizationClient(handle.address) as client:
                stats = client.stats()
        assert stats["health"]["status"] == "ok"

    def test_request_id_echoed(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with RawConnection(handle.address) as raw:
                reply = raw.request({"type": "PING", "id": "req-42"})
        assert reply["id"] == "req-42"

    def test_metrics_frame_serves_prometheus(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with CharacterizationClient(handle.address) as client:
                client.send_events(hot_events(3))
                text = client.metrics_prometheus()
        assert "repro_server_frames_total" in text
        assert "repro_server_connections" in text


class TestFrameErrors:
    """Bad frames get ERROR replies; the connection always survives."""

    def test_malformed_json_keeps_connection(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with RawConnection(handle.address) as raw:
                body = b"this is not json\n"
                raw.send_raw(protocol._LENGTH.pack(len(body)) + body)
                reply = raw.read_reply()
                assert reply["type"] == protocol.REPLY_ERROR
                assert reply["code"] == protocol.ERR_MALFORMED
                # Same socket, next frame: still served.
                assert raw.request({"type": "PING"})["type"] == "PONG"

    def test_oversized_frame_rejected_not_fatal(self, tmp_path):
        server = make_server(tmp_path, max_frame_bytes=512)
        with ServerThread(server) as handle:
            with RawConnection(handle.address) as raw:
                raw.send_raw(encode_frame(
                    protocol.batch_frame(hot_events(100))))
                reply = raw.read_reply()
                assert reply["code"] == protocol.ERR_TOO_LARGE
                assert raw.request({"type": "PING"})["type"] == "PONG"
            with CharacterizationClient(handle.address) as client:
                assert client.stats()["monitor"]["events_seen"] == 0

    def test_unknown_frame_type(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with RawConnection(handle.address) as raw:
                reply = raw.request({"type": "FROBNICATE"})
                assert reply["code"] == protocol.ERR_BAD_REQUEST
                assert raw.request({"type": "PING"})["type"] == "PONG"

    def test_bad_query_parameters(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with CharacterizationClient(handle.address) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.request({"type": "QUERY", "what": "correlations",
                                    "k": -3})
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_bad_event_field_rejected(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with RawConnection(handle.address) as raw:
                reply = raw.request({"type": "EVENT",
                                     "event": {"ts": "yesterday", "op": "R",
                                               "start": 0, "len": 1}})
                assert reply["code"] == protocol.ERR_BAD_REQUEST
                assert raw.request({"type": "PING"})["type"] == "PONG"


class TestBackpressure:
    def test_throttle_acknowledges_and_keeps_events(self, tmp_path):
        """Soft overload: events accepted, client told to back off, and
        the accepted events all reach the engine (observably, in both
        STATS and telemetry)."""
        registry = MetricsRegistry()
        server = make_server(tmp_path, registry=registry, soft_limit=50)
        slept = []
        with ServerThread(server) as handle:
            client = CharacterizationClient(handle.address,
                                            sleep=slept.append)
            with client:
                reply = client.send_events(hot_events(100))  # 200 events
                assert reply["type"] == protocol.REPLY_THROTTLE
                assert reply["accepted"] == 200
                assert reply["retry_after"] > 0
                stats = client.stats()  # drains before answering
        assert client.throttle_count == 1
        assert slept == [reply["retry_after"]]
        assert stats["monitor"]["events_seen"] == 200  # nothing lost
        snap = snapshot(registry)
        assert snapshot_value(snap, "repro_server_throttles_total") == 1
        assert snapshot_value(snap, "repro_server_ingested_events_total") == 200

    def test_hard_rejection_drops_whole_frame(self, tmp_path):
        registry = MetricsRegistry()
        server = make_server(tmp_path, registry=registry,
                             soft_limit=10, hard_limit=100)
        policy = BackoffPolicy(base=1e-4, cap=1e-3, retries=1)
        with ServerThread(server) as handle:
            with CharacterizationClient(handle.address,
                                        policy=policy) as client:
                with pytest.raises(ServerOverloadedError):
                    client.send_events(hot_events(80))  # 160 > hard limit
                assert client.overload_retries == 1
                # The server is alive and no partial frame leaked in.
                assert client.ping()["type"] == "PONG"
                assert client.stats()["monitor"]["events_seen"] == 0
        snap = snapshot(registry)
        assert snapshot_value(snap, "repro_server_rejected_frames_total") == 2
        assert snapshot_value(snap,
                              "repro_server_rejected_events_total") == 320

    def test_batching_writer_flushes_by_count(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with CharacterizationClient(handle.address) as client:
                with BatchingWriter(client, max_batch=16) as writer:
                    writer.add_many(hot_events(40))  # 80 events
                    assert len(writer) < 16
                stats = client.stats()
        assert stats["monitor"]["events_seen"] == 80
        assert writer.batches_flushed == client.frames_sent == 5


class TestConcurrencyAndTenants:
    def test_concurrent_clients_lose_nothing(self, tmp_path):
        """Four producers on one engine: every accepted event is counted."""
        with ServerThread(make_server(tmp_path)) as handle:
            errors = []

            def produce(base):
                try:
                    with CharacterizationClient(handle.address) as client:
                        client.send_events(hot_events(10, base=base))
                        client.stats()  # drain this connection's queue
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=produce, args=(i * 100.0,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            with CharacterizationClient(handle.address) as client:
                stats = client.stats()
        assert errors == []
        assert stats["monitor"]["events_seen"] == 80

    def test_tenants_get_independent_engines(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            alpha = CharacterizationClient(handle.address, tenant="alpha")
            beta = CharacterizationClient(handle.address)
            with alpha, beta:
                alpha.send_events(hot_events(8, first=100, second=9000))
                beta.send_events(hot_events(8, first=5000, second=7000))
                top_alpha = alpha.query_top(k=5, min_support=3)
                top_beta = beta.query_top(k=5, min_support=3)
                stats = alpha.stats()
        pairs_alpha = {p for p, _count in top_alpha}
        pairs_beta = {p for p, _count in top_beta}
        assert pair(100, 9000, 8, 16) in pairs_alpha
        assert pair(5000, 7000, 8, 16) in pairs_beta
        assert pairs_alpha.isdisjoint(pairs_beta)
        assert sorted(stats["tenants"]) == ["", "alpha"]

    def test_tenant_limit_enforced(self, tmp_path):
        with ServerThread(make_server(tmp_path, max_tenants=2)) as handle:
            with CharacterizationClient(handle.address,
                                        tenant="second") as client:
                client.send_events(hot_events(2))  # admits tenant 2 of 2
            with CharacterizationClient(handle.address,
                                        tenant="third") as client:
                with pytest.raises(ServerError) as excinfo:
                    client.send_events(hot_events(2))
        assert excinfo.value.code == protocol.ERR_UNAVAILABLE


class PoisonService(CharacterizationService):
    """Raises on any batch containing the poison extent."""

    def submit_many(self, events, parallel=None):
        events = list(events)
        if any(evt.start == 666 for evt in events):
            raise RuntimeError("poisoned batch")
        return super().submit_many(events, parallel)


class TestFailureIsolation:
    def test_poisoned_batch_degrades_batch_only(self, tmp_path):
        registry = MetricsRegistry()
        service = PoisonService(window=StaticWindow(1e-3), min_support=2,
                                registry=registry)
        server = make_server(tmp_path, service=service, registry=registry)
        with ServerThread(server) as handle:
            with CharacterizationClient(handle.address) as client:
                client.send_events([event(0.0, 666), event(1e-5, 667)])
                stats = client.stats()
                assert stats["poisoned_batches"] == 1
                # The connection and engine still work.
                client.send_events(hot_events(6, base=1.0))
                top = client.query_top(k=3, min_support=3)
        assert top[0][0] == pair(100, 9000, 8, 16)
        snap = snapshot(registry)
        assert snapshot_value(snap,
                              "repro_server_poisoned_frames_total") == 1


class TestLifecycle:
    def test_shutdown_flushes_final_open_transaction(self, tmp_path):
        """The last partial transaction reaches the analyzer and the
        checkpoint -- the stream's tail is not lost on shutdown."""
        checkpoint = tmp_path / "state.ckpt"
        service = make_service(min_support=1)
        server = make_server(tmp_path, service=service,
                             checkpoint_path=checkpoint)
        with ServerThread(server) as handle:
            with CharacterizationClient(handle.address) as client:
                # One transaction whose window never closes on its own.
                client.send_events([event(0.0, 100), event(1e-5, 9000)])
                client.stats()  # ensure it is ingested (still unflushed)
        assert service.closed
        assert service.analyzer.correlations.tally(pair(100, 9000, 8, 8)) == 1
        restored = make_service(min_support=1)
        with open(checkpoint, "rb") as stream:
            restored.restore(stream)
        assert restored.analyzer.correlations.tally(
            pair(100, 9000, 8, 8)) == 1

    def test_restore_on_start(self, tmp_path):
        checkpoint = tmp_path / "state.ckpt"
        first = make_server(tmp_path, checkpoint_path=checkpoint)
        with ServerThread(first) as handle:
            with CharacterizationClient(handle.address) as client:
                client.send_events(hot_events(6))
        assert checkpoint.exists()
        second = make_server(tmp_path, checkpoint_path=checkpoint)
        with ServerThread(second) as handle:
            with CharacterizationClient(handle.address) as client:
                top = client.query_top(k=3, min_support=3)
        assert top[0][0] == pair(100, 9000, 8, 16)
        assert top[0][1] == 6  # shutdown flushed the 6th transaction

    def test_remote_checkpoint_frame(self, tmp_path):
        checkpoint = tmp_path / "state.ckpt"
        server = make_server(tmp_path, checkpoint_path=checkpoint)
        with ServerThread(server) as handle:
            with CharacterizationClient(handle.address) as client:
                client.send_events(hot_events(5))
                reply = client.checkpoint()
        assert reply["bytes"] > 0
        assert reply["path"] == str(checkpoint)

    def test_checkpoint_without_path_is_unavailable(self, tmp_path):
        with ServerThread(make_server(tmp_path)) as handle:
            with CharacterizationClient(handle.address) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.checkpoint()
        assert excinfo.value.code == protocol.ERR_UNAVAILABLE

    def test_unix_socket_removed_on_shutdown(self, tmp_path):
        server = make_server(tmp_path)
        with ServerThread(server) as handle:
            path = handle.address
            with CharacterizationClient(path) as client:
                client.ping()
        assert not os.path.exists(path)


class TestClientResilience:
    def test_reconnect_after_server_restart(self, tmp_path):
        """The client retries through a connection loss (same address)."""
        sock_path = tmp_path / "server.sock"
        registry = MetricsRegistry()
        first = CharacterizationServer(make_service(registry=registry),
                                       unix_path=sock_path,
                                       registry=registry)
        policy = BackoffPolicy(base=0.05, cap=0.5, retries=8)
        client = CharacterizationClient(str(sock_path), policy=policy)
        with ServerThread(first) as handle:
            client.ping()
        # Server gone: restart on the same path while the client retries.
        registry2 = MetricsRegistry()
        second = CharacterizationServer(make_service(registry=registry2),
                                        unix_path=sock_path,
                                        registry=registry2)
        restarter = threading.Timer(
            0.2, lambda: ServerThread(second).start())
        restarter.start()
        try:
            reply = client.send_events(hot_events(3))
        finally:
            restarter.join()
        assert reply["accepted"] == 6
        assert client.reconnects >= 1
        client.close()

    def test_retries_exhausted_raise(self, tmp_path):
        policy = BackoffPolicy(base=1e-4, cap=1e-3, retries=2)
        client = CharacterizationClient(str(tmp_path / "nobody.sock"),
                                        policy=policy)
        with pytest.raises(OSError):
            client.ping()


# ---------------------------------------------------------------------------
# End-to-end equivalence: socket path vs in-process pipeline
# ---------------------------------------------------------------------------

def correlated_records(transactions, groups=50, seed=7):
    """Zipf-flavoured stream: each transaction hits one group's extent
    pair, so the true correlations are the ``groups`` hot pairs."""
    import random

    rng = random.Random(seed)
    records = []
    clock = 0.0
    for _ in range(transactions):
        group = min(int(rng.expovariate(8.0 / groups)), groups - 1)
        base = 10_000 * (group + 1)
        records.append(TraceRecord(clock, 1, OpType.READ, base, 8))
        records.append(TraceRecord(clock + 2e-5, 1, OpType.READ,
                                   base + 64, 16))
        clock += 0.05
    return records


def jaccard(left, right):
    left, right = set(left), set(right)
    if not left and not right:
        return 1.0
    return len(left & right) / len(left | right)


class TestEndToEnd:
    def test_streamed_ingest_matches_in_process_pipeline(self, tmp_path):
        """100k events through the socket reproduce the in-process result:
        the serving layer adds a network boundary, not an accuracy cost."""
        records = correlated_records(50_000)
        assert len(records) == 100_000
        config = AnalyzerConfig(item_capacity=2048,
                                correlation_capacity=2048)
        window = StaticWindow(1e-3)

        reference = run_pipeline(
            records, config=config, window=window,
            record_offline=False, registry=NULL_REGISTRY,
        )
        expected = [p for p, _count in reference.frequent_pairs(5)[:20]]

        service = make_service(config=config, window=window, min_support=5)
        server = make_server(tmp_path, service=service)
        with ServerThread(server) as handle:
            with CharacterizationClient(handle.address) as client:
                with BatchingWriter(client, max_batch=2000) as writer:
                    for record in records:
                        writer.add(BlockIOEvent.from_record(record))
                top = client.query_top(k=20, min_support=5)
        assert client.events_sent == 100_000
        served = [p for p, _count in top]
        assert jaccard(expected, served) >= 0.95
