"""Tests for the continuous characterization service."""

import io

import pytest

from repro.core.config import AnalyzerConfig
from repro.core.typed import CorrelationKind
from repro.monitor.events import BlockIOEvent
from repro.monitor.window import StaticWindow
from repro.service import CharacterizationService
from repro.trace.record import OpType

from conftest import ext, pair

R, W = OpType.READ, OpType.WRITE


def event(ts, start, length=8, op=R, latency=None):
    return BlockIOEvent(ts, 1, op, start, length, latency=latency)


def small_service(**overrides):
    defaults = dict(
        config=AnalyzerConfig(item_capacity=256, correlation_capacity=256),
        window=StaticWindow(1e-3),
        min_support=3,
        snapshot_interval=10,
    )
    defaults.update(overrides)
    return CharacterizationService(**defaults)


def feed_hot_pair(service, rounds, base_ts=0.0):
    clock = base_ts
    for _ in range(rounds):
        service.submit(event(clock, 100, 8))
        service.submit(event(clock + 1e-5, 9000, 16))
        clock += 0.05
    service.flush()
    return clock


class TestIngestion:
    def test_learns_correlations_from_event_stream(self):
        service = small_service()
        feed_hot_pair(service, 10)
        snapshot = service.snapshot()
        assert snapshot.correlations >= 1
        assert snapshot.frequent_pairs[0][0] == pair(100, 9000, 8, 16)
        assert snapshot.events == 20

    def test_kind_filtered_snapshot(self):
        service = small_service()
        clock = 0.0
        for _ in range(6):
            service.submit(event(clock, 100, op=R))
            service.submit(event(clock + 1e-5, 9000, op=R))
            service.submit(event(clock + 0.01, 5_000_000, op=W))
            service.submit(event(clock + 0.01 + 1e-5, 6_000_000, op=W))
            clock += 0.05
        service.flush()
        reads = service.snapshot(CorrelationKind.READ)
        writes = service.snapshot(CorrelationKind.WRITE)
        read_pairs = {p for p, _t in reads.frequent_pairs}
        write_pairs = {p for p, _t in writes.frequent_pairs}
        assert pair(100, 9000, 8, 8) in read_pairs
        assert pair(5_000_000, 6_000_000, 8, 8) in write_pairs
        assert read_pairs.isdisjoint(write_pairs)

    def test_validation(self):
        with pytest.raises(ValueError):
            CharacterizationService(snapshot_interval=0)
        with pytest.raises(ValueError):
            CharacterizationService(min_support=0)


class TestObservers:
    def test_observer_called_on_interval(self):
        service = small_service(snapshot_interval=5)
        seen = []
        service.observe(seen.append)
        feed_hot_pair(service, 12)  # 12 transactions
        assert len(seen) == 2  # at transactions 5 and 10
        assert seen[-1].transactions == 10

    def test_multiple_observers(self):
        service = small_service(snapshot_interval=3)
        first, second = [], []
        service.observe(first.append)
        service.observe(second.append)
        feed_hot_pair(service, 6)
        assert len(first) == len(second) == 2


class TestLifecycle:
    def test_close_flushes_final_partial_transaction(self):
        """Regression: the tail of the stream -- events sitting in the
        monitor's open window -- must reach the analyzer on close."""
        service = small_service(min_support=1)
        service.submit(event(0.0, 100))
        service.submit(event(1e-5, 9000))
        assert not service.analyzer.correlations.tally(pair(100, 9000, 8, 8))
        service.close()
        assert service.closed
        assert service.analyzer.correlations.tally(pair(100, 9000, 8, 8)) == 1

    def test_close_is_idempotent(self):
        service = small_service(min_support=1)
        service.submit(event(0.0, 100))
        service.submit(event(1e-5, 9000))
        service.close()
        service.close()
        assert service.analyzer.correlations.tally(pair(100, 9000, 8, 8)) == 1

    def test_context_manager_closes(self):
        with small_service(min_support=1) as service:
            service.submit(event(0.0, 100))
            service.submit(event(1e-5, 9000))
        assert service.closed
        assert service.analyzer.correlations.tally(pair(100, 9000, 8, 8)) == 1

    def test_transactions_property_is_live(self):
        service = small_service()
        assert service.transactions == 0
        feed_hot_pair(service, 4)
        assert service.transactions == 4


class TestPersistence:
    def test_checkpoint_restore_roundtrip(self):
        service = small_service()
        feed_hot_pair(service, 10)
        before = {p for p, _t in service.snapshot().frequent_pairs}

        buffer = io.BytesIO()
        written = service.checkpoint(buffer)
        assert written == len(buffer.getvalue())

        fresh = small_service()
        assert fresh.snapshot().correlations == 0
        buffer.seek(0)
        fresh.restore(buffer)
        after = {p for p, _t in fresh.snapshot().frequent_pairs}
        assert after == before

    def test_restored_service_keeps_learning(self):
        service = small_service()
        end = feed_hot_pair(service, 10)

        buffer = io.BytesIO()
        service.checkpoint(buffer)
        buffer.seek(0)
        resumed = small_service()
        resumed.restore(buffer)

        tally_before = dict(resumed.snapshot().frequent_pairs)[
            pair(100, 9000, 8, 16)
        ]
        feed_hot_pair(resumed, 5, base_ts=end + 1.0)
        tally_after = dict(resumed.snapshot().frequent_pairs)[
            pair(100, 9000, 8, 16)
        ]
        assert tally_after > tally_before

    def test_checkpoint_flushes_open_transaction(self):
        service = small_service()
        service.submit(event(0.0, 100))
        service.submit(event(1e-5, 9000))
        buffer = io.BytesIO()
        service.checkpoint(buffer)  # no explicit flush beforehand
        buffer.seek(0)
        fresh = small_service()
        fresh.restore(buffer)
        assert fresh.analyzer.correlations.tally(pair(100, 9000, 8, 8)) == 1
