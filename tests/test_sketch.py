"""Tests for the Space-Saving and Count-Min sketch baselines."""

import random
from collections import Counter

import pytest

from repro.fim.sketch import CountMinParams, CountMinSketch, SpaceSaving


class TestSpaceSaving:
    def test_exact_when_under_capacity(self):
        sketch = SpaceSaving(8)
        for key in ("a", "b", "a", "c", "a"):
            sketch.update(key)
        assert sketch.count("a") == 3
        assert sketch.count("b") == 1
        assert sketch.error("a") == 0

    def test_capacity_bound(self):
        sketch = SpaceSaving(4)
        for i in range(100):
            sketch.update(i)
        assert len(sketch) <= 4

    def test_replacement_inherits_minimum(self):
        sketch = SpaceSaving(2)
        sketch.update("a")
        sketch.update("a")
        sketch.update("b")
        sketch.update("c")  # replaces b (count 1) -> c estimated 2, error 1
        assert sketch.count("c") == 2
        assert sketch.error("c") == 1
        assert sketch.guaranteed_count("c") == 1
        assert "b" not in sketch

    def test_never_underestimates_tracked_keys(self):
        rng = random.Random(7)
        sketch = SpaceSaving(16)
        truth = Counter()
        population = [rng.randrange(40) for _ in range(2000)]
        for key in population:
            truth[key] += 1
            sketch.update(key)
        for key, estimate in sketch.frequent():
            assert estimate >= truth[key]
            assert sketch.guaranteed_count(key) <= truth[key]

    def test_heavy_hitter_guarantee(self):
        """Every key with true count > N/capacity must be tracked."""
        rng = random.Random(9)
        capacity = 10
        sketch = SpaceSaving(capacity)
        truth = Counter()
        stream = (["hot"] * 500
                  + [f"x{rng.randrange(1000)}" for _ in range(1500)])
        rng.shuffle(stream)
        for key in stream:
            truth[key] += 1
            sketch.update(key)
        threshold = sketch.total / capacity
        for key, count in truth.items():
            if count > threshold:
                assert key in sketch

    def test_frequent_sorted(self):
        sketch = SpaceSaving(8)
        for key, repeats in (("a", 5), ("b", 2), ("c", 8)):
            for _ in range(repeats):
                sketch.update(key)
        top = sketch.frequent(min_count=3)
        assert [key for key, _c in top] == ["c", "a"]

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)
        sketch = SpaceSaving(2)
        with pytest.raises(ValueError):
            sketch.update("a", increment=0)


class TestCountMin:
    def test_never_underestimates(self):
        rng = random.Random(5)
        sketch = CountMinSketch(CountMinParams(width=64, depth=4))
        truth = Counter()
        for _ in range(3000):
            key = rng.randrange(200)
            truth[key] += 1
            sketch.update(key)
        for key, count in truth.items():
            assert sketch.count(key) >= count

    def test_overestimate_bounded_on_wide_sketch(self):
        rng = random.Random(6)
        sketch = CountMinSketch(CountMinParams(width=4096, depth=4))
        truth = Counter()
        for _ in range(2000):
            key = rng.randrange(100)
            truth[key] += 1
            sketch.update(key)
        # With width >> distinct keys, estimates are essentially exact.
        for key, count in truth.items():
            assert sketch.count(key) - count <= 2

    def test_conservative_update_never_underestimates(self):
        rng = random.Random(7)
        plain = CountMinSketch(CountMinParams(width=64, depth=4))
        conservative = CountMinSketch(CountMinParams(width=64, depth=4),
                                      conservative=True)
        truth = Counter()
        for _ in range(3000):
            key = rng.randrange(200)
            truth[key] += 1
            plain.update(key)
            conservative.update(key)
        for key, count in truth.items():
            assert conservative.count(key) >= count
            # Conservative update only ever skips increments the plain
            # rule would apply, so its estimates cannot be looser.
            assert conservative.count(key) <= plain.count(key)
        total_error = lambda sketch: sum(
            sketch.count(key) - count for key, count in truth.items()
        )
        assert total_error(conservative) < total_error(plain)

    def test_untouched_key_can_be_zero(self):
        sketch = CountMinSketch(CountMinParams(width=1024, depth=4))
        sketch.update("a")
        assert sketch.count("never-seen") >= 0

    def test_heavy_hitters_tracking(self):
        sketch = CountMinSketch(CountMinParams(width=512, depth=4),
                                track_top=3)
        for key, repeats in (("a", 30), ("b", 20), ("c", 10), ("d", 1)):
            for _ in range(repeats):
                sketch.update(key)
        hitters = sketch.heavy_hitters(min_count=5)
        assert [key for key, _c in hitters] == ["a", "b", "c"]

    def test_top_tracking_bounded(self):
        sketch = CountMinSketch(CountMinParams(width=256, depth=2),
                                track_top=5)
        for i in range(1000):
            sketch.update(f"k{i}")
        assert len(sketch._top) <= 10

    def test_memory_counters(self):
        sketch = CountMinSketch(CountMinParams(width=100, depth=3))
        assert sketch.memory_counters == 300

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinParams(width=0)
        sketch = CountMinSketch()
        with pytest.raises(ValueError):
            sketch.update("a", increment=0)
