"""Supervised failover: restart budgets, liveness, warm standby.

The supervisor's contract is narrow but load-bearing: a worker that dies
comes back (with backoff), a worker that wedges gets killed and comes
back, a worker that crash-loops stops being restarted
(:class:`SupervisorGaveUp`), and a worker that exits cleanly is left in
peace.  The warm standby's contract is stricter still: it tails the
primary's journal read-only and promotes to a server whose state is
identical to what the primary would have served.
"""

import multiprocessing
import os
import signal
import sys
import time

import pytest

from repro.resilience.policy import BackoffPolicy
from repro.resilience.wal import (
    FsyncPolicy,
    WalMeta,
    WriteAheadLog,
    write_wal_meta,
)
from repro.server.client import CharacterizationClient
from repro.server.recovery import StandbyGapError
from repro.server.server import ServerThread
from repro.server.supervisor import (
    RestartTracker,
    Supervisor,
    SupervisorGaveUp,
    WarmStandby,
    WorkerConfig,
)
from repro.server.tenants import DEFAULT_TENANT

from test_durability import (
    SUPPORT,
    chunks,
    make_engine,
    reference_pairs,
    wait_for_socket,
    worker_config,
    workload,
)

FAST_BACKOFF = BackoffPolicy(base=0.001, cap=0.01, retries=8)


# Worker targets must be module-level so they cross a spawn boundary too.

def crash_worker(config):
    sys.exit(3)


def clean_worker(config):
    sys.exit(0)


def hang_worker(config):
    time.sleep(120)


def no_sleep(seconds):
    pass


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ---------------------------------------------------------------------------
# Restart budget
# ---------------------------------------------------------------------------

class TestRestartTracker:
    def test_budget_blows_at_max(self):
        tracker = RestartTracker(max_restarts=3, window=30.0,
                                 clock=FakeClock())
        assert [tracker.note() for _ in range(4)] == [True, True, True,
                                                      False]
        assert tracker.total == 3

    def test_window_forgives_old_restarts(self):
        clock = FakeClock()
        tracker = RestartTracker(max_restarts=2, window=10.0, clock=clock)
        assert tracker.note() and tracker.note()
        assert not tracker.note()
        clock.now = 11.0
        assert tracker.recent() == 0
        assert tracker.note()  # budget refilled
        assert tracker.total == 3

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RestartTracker(max_restarts=0)
        with pytest.raises(ValueError):
            RestartTracker(window=0.0)


# ---------------------------------------------------------------------------
# Supervisor state machine (injected crashing/hanging workers)
# ---------------------------------------------------------------------------

class TestSupervisorStateMachine:
    def wait_dead(self, supervisor, timeout=15.0):
        supervisor._proc.join(timeout=timeout)
        assert not supervisor._proc.is_alive()

    def test_restarts_a_crashed_worker(self, tmp_path):
        supervisor = Supervisor(
            WorkerConfig(), target=crash_worker, backoff=FAST_BACKOFF,
            max_restarts=5, sleep=no_sleep,
        )
        supervisor.start()
        self.wait_dead(supervisor)
        assert supervisor.poll_once() == "restarted"
        assert supervisor.restarts == 1
        assert "exited with code 3" in supervisor.last_restart_reason
        supervisor.stop()

    def test_crash_loop_gives_up(self, tmp_path):
        supervisor = Supervisor(
            WorkerConfig(), target=crash_worker, backoff=FAST_BACKOFF,
            max_restarts=2, restart_window=60.0, sleep=no_sleep,
        )
        supervisor.start()
        with pytest.raises(SupervisorGaveUp, match="2 restarts"):
            while True:
                self.wait_dead(supervisor)
                supervisor.poll_once()
        assert supervisor.restarts == 2
        supervisor.stop()

    def test_clean_exit_is_not_restarted(self, tmp_path):
        supervisor = Supervisor(
            WorkerConfig(), target=clean_worker, backoff=FAST_BACKOFF,
            sleep=no_sleep,
        )
        supervisor.start()
        self.wait_dead(supervisor)
        assert supervisor.poll_once() == "stopped"
        assert supervisor.last_exitcode == 0
        assert supervisor.restarts == 0

    def test_stale_heartbeat_kills_and_restarts(self, tmp_path):
        """A wedged worker never beats; liveness must not trust
        ``is_alive`` alone."""
        config = WorkerConfig(heartbeat_path=str(tmp_path / "hb.json"))
        supervisor = Supervisor(
            config, target=hang_worker, backoff=FAST_BACKOFF,
            heartbeat_timeout=0.3, sleep=no_sleep,
        )
        supervisor.start()
        try:
            assert supervisor.poll_once() == "running"
            time.sleep(0.5)  # the heartbeat file never appears
            assert supervisor.poll_once() == "restarted"
            assert "heartbeat stale" in supervisor.last_restart_reason
        finally:
            supervisor.stop()

    def test_fresh_heartbeat_keeps_worker_alive(self, tmp_path):
        """A worker that beats on time is never killed by liveness."""
        heartbeat = tmp_path / "hb.json"
        config = WorkerConfig(heartbeat_path=str(heartbeat))
        supervisor = Supervisor(
            config, target=hang_worker, backoff=FAST_BACKOFF,
            heartbeat_timeout=10.0, sleep=no_sleep,
        )
        supervisor.start()
        try:
            heartbeat.write_text("{}")
            for _ in range(3):
                assert supervisor.poll_once() == "running"
        finally:
            supervisor.stop()

    def test_poll_before_start_raises(self):
        supervisor = Supervisor(WorkerConfig(), target=clean_worker)
        with pytest.raises(RuntimeError, match="not started"):
            supervisor.poll_once()

    def test_restart_ignores_dead_workers_heartbeat(self, tmp_path):
        """After a restart the heartbeat file still carries the *dead*
        worker's last beat; staleness must be measured from the new
        worker's spawn, or every restart slower than the timeout gets
        killed before its first beat (a supervisor-made crash loop)."""
        heartbeat = tmp_path / "hb.json"
        heartbeat.write_text("{}")
        old = time.time() - 100.0
        os.utime(heartbeat, (old, old))
        config = WorkerConfig(heartbeat_path=str(heartbeat))
        supervisor = Supervisor(
            config, target=hang_worker, backoff=FAST_BACKOFF,
            heartbeat_timeout=5.0, sleep=no_sleep,
        )
        supervisor.start()
        try:
            for _ in range(3):
                assert supervisor.poll_once() == "running"
        finally:
            supervisor.stop()


# ---------------------------------------------------------------------------
# Supervising the real server
# ---------------------------------------------------------------------------

class TestSupervisedServer:
    def test_sigkill_restart_recovers_acked_events(self, tmp_path):
        """Kill -9 the real worker; the supervisor restarts it and the
        replacement reports every acked event replayed from the journal."""
        config = worker_config(tmp_path)
        supervisor = Supervisor(config, backoff=FAST_BACKOFF,
                                max_restarts=5)
        supervisor.start()
        try:
            wait_for_socket(config.unix_path)
            batches = chunks(workload(rounds=60))
            with CharacterizationClient(config.unix_path) as client:
                for batch in batches:
                    client.send_events(batch)
            first_pid = supervisor.pid
            os.kill(first_pid, signal.SIGKILL)

            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if supervisor.poll_once() == "restarted":
                    break
                time.sleep(0.02)
            else:
                pytest.fail("supervisor never noticed the kill")
            assert supervisor.pid != first_pid

            wait_for_socket(config.unix_path)
            with CharacterizationClient(config.unix_path) as client:
                recovery = client.stats()["recovery"]
                assert recovery["replayed_events"] == \
                    sum(len(batch) for batch in batches)
                assert recovery["corrupt_records"] == 0
        finally:
            assert supervisor.stop(grace=20.0) == 0  # graceful drain

    def test_worker_config_is_picklable(self, tmp_path):
        """The config must survive a spawn boundary, not just fork."""
        import pickle
        config = worker_config(tmp_path)
        assert pickle.loads(pickle.dumps(config)) == config


# ---------------------------------------------------------------------------
# Warm standby
# ---------------------------------------------------------------------------

class TestWarmStandby:
    def test_standby_tails_without_touching_the_journal(self, tmp_path):
        wal_dir = tmp_path / "wal"
        batches = chunks(workload(rounds=90), size=30)
        writer = WriteAheadLog(wal_dir, fsync=FsyncPolicy.NEVER)
        for batch in batches[:3]:
            writer.append(batch)

        standby = WarmStandby(str(wal_dir), service_factory=make_engine)
        before = sorted(path.name for path in wal_dir.iterdir())
        report = standby.warm_up()
        assert report.replayed_records == 3
        assert standby.applied_seq == 3

        for batch in batches[3:]:
            writer.append(batch)
        assert standby.poll() == len(batches) - 3
        assert standby.applied_seq == len(batches)
        assert standby.poll() == 0  # idempotent once caught up
        # Tailing is strictly read-only: not one file changed its name.
        assert sorted(path.name for path in wal_dir.iterdir()) == before
        writer.close()

    def test_promotion_serves_identical_state(self, tmp_path):
        """The promoted server answers queries exactly as the dead
        primary would have (single-shard determinism, so: identity)."""
        wal_dir = tmp_path / "wal"
        batches = chunks(workload(rounds=120))
        writer = WriteAheadLog(wal_dir, fsync=FsyncPolicy.NEVER)
        for batch in batches[:-1]:
            writer.append(batch)

        standby = WarmStandby(str(wal_dir), service_factory=make_engine)
        standby.warm_up()
        # The primary appends one last frame, then dies unnoticed: the
        # promotion's final catch-up must pick it up.
        writer.append(batches[-1])
        writer.close()

        promoted = standby.promote(unix_path=tmp_path / "takeover.sock")
        with ServerThread(promoted) as thread:
            promoted.service.flush()
            with CharacterizationClient(thread.address) as client:
                served = client.query_top(k=10_000, min_support=SUPPORT)
        assert served == reference_pairs(batches)
        assert served  # real correlations, not vacuous equality

    def test_promote_requires_wal(self, tmp_path):
        from repro.server.server import CharacterizationServer
        standby = WarmStandby(str(tmp_path / "wal"),
                              service_factory=make_engine)
        standby.warm_up()
        with pytest.raises(ValueError, match="wal_dir"):
            CharacterizationServer(standby_recovery=standby.recovery)

    def test_standby_resyncs_across_primary_truncation(self, tmp_path):
        """The primary checkpoints (and truncates) while the standby
        lags; the next poll must bridge the missing range by
        re-restoring the covering checkpoint, not skip it silently."""
        checkpoint = tmp_path / "checkpoint.bin"
        wal_dir = tmp_path / "wal"
        batches = chunks(workload(rounds=120), size=30)
        seen, cut = 1, 3  # standby saw [0,1); primary checkpoints at 3

        primary = make_engine()
        wal = WriteAheadLog(wal_dir, fsync=FsyncPolicy.NEVER)
        for batch in batches[:seen]:
            wal.append(batch)
            primary.submit_many(batch)

        standby = WarmStandby(str(wal_dir),
                              checkpoint_path=str(checkpoint),
                              service_factory=make_engine)
        assert standby.poll() == seen
        assert standby.applied_seq == seen

        # Behind the standby's back: ingest, checkpoint, truncate.
        for batch in batches[seen:cut]:
            wal.append(batch)
            primary.submit_many(batch)
        primary.checkpoint_to(str(checkpoint))
        write_wal_meta(wal_dir, WalMeta(checkpoint_seq=wal.last_seq))
        assert wal.truncate_through(wal.last_seq) >= 1
        for batch in batches[cut:]:
            wal.append(batch)
        wal.close()

        assert standby.poll() == len(batches) - cut  # tail only
        assert standby.applied_seq == len(batches)
        service = standby.router.get(DEFAULT_TENANT)
        service.flush()
        served = service.analyzer.frequent_pairs(SUPPORT)
        assert served == reference_pairs(batches)
        assert served  # real correlations, not vacuous equality

    def test_retained_history_needs_no_resync(self, tmp_path):
        """A moved checkpoint cut with full journal retention is not a
        gap: the standby tails straight through without a checkpoint."""
        wal_dir = tmp_path / "wal"
        batches = chunks(workload(rounds=60), size=30)
        wal = WriteAheadLog(wal_dir, fsync=FsyncPolicy.NEVER)
        wal.append(batches[0])
        standby = WarmStandby(str(wal_dir), service_factory=make_engine)
        standby.warm_up()
        wal.append(batches[1])
        write_wal_meta(wal_dir, WalMeta(checkpoint_seq=wal.last_seq))
        assert standby.poll() == 1  # no checkpoint needed, no raise
        wal.close()

    def test_truncation_without_checkpoint_is_refused(self, tmp_path):
        """A standby that cannot bridge a truncated range must refuse
        loudly instead of serving with acked events missing."""
        wal_dir = tmp_path / "wal"
        batches = chunks(workload(rounds=60), size=30)
        wal = WriteAheadLog(wal_dir, fsync=FsyncPolicy.NEVER)
        wal.append(batches[0])
        standby = WarmStandby(str(wal_dir), service_factory=make_engine)
        standby.warm_up()
        wal.append(batches[1])
        write_wal_meta(wal_dir, WalMeta(checkpoint_seq=wal.last_seq))
        wal.truncate_through(wal.last_seq)
        wal.close()
        with pytest.raises(StandbyGapError, match="truncated"):
            standby.poll()
