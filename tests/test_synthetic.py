"""Tests for the paper's synthetic workloads (Section IV-B1)."""

import pytest

from repro.workloads.synthetic import (
    CORRELATED_MAX_BLOCKS,
    SyntheticKind,
    SyntheticSpec,
    all_synthetic_specs,
    generate_synthetic,
)


def generate(kind, **overrides):
    settings = dict(duration=30.0, seed=5)
    settings.update(overrides)
    spec = SyntheticSpec(kind=kind, **settings)
    return generate_synthetic(spec), spec


class TestConstruction:
    def test_four_correlations_with_zipf_popularity(self):
        (records, truth), _spec = generate(SyntheticKind.MANY_TO_MANY)
        assert len(truth.pairs) == 4
        assert truth.probabilities == pytest.approx([0.48, 0.24, 0.16, 0.12])
        assert truth.occurrences[0] > truth.occurrences[-1]

    def test_one_to_one_shape(self):
        (records, truth), _spec = generate(SyntheticKind.ONE_TO_ONE)
        for pair in truth.pairs:
            assert pair.first.length == 1
            assert pair.second.length == 1
            assert not pair.first.is_adjacent(pair.second)
            assert not pair.first.overlaps(pair.second)

    def test_one_to_many_shape(self):
        (records, truth), _spec = generate(SyntheticKind.ONE_TO_MANY)
        for pair in truth.pairs:
            lengths = sorted((pair.first.length, pair.second.length))
            assert lengths[0] == 1
            assert 1 <= lengths[1] <= CORRELATED_MAX_BLOCKS

    def test_many_to_many_shape(self):
        (records, truth), _spec = generate(SyntheticKind.MANY_TO_MANY)
        assert any(
            pair.first.length > 1 and pair.second.length > 1
            for pair in truth.pairs
        )

    def test_correlations_do_not_overlap_each_other(self):
        (records, truth), _spec = generate(SyntheticKind.MANY_TO_MANY)
        extents = [e for pair in truth.pairs for e in (pair.first, pair.second)]
        for i, a in enumerate(extents):
            for b in extents[i + 1:]:
                assert not a.overlaps(b)


class TestStream:
    def test_records_sorted_by_time(self):
        (records, _truth), spec = generate(SyntheticKind.ONE_TO_ONE)
        times = [record.timestamp for record in records]
        assert times == sorted(times)
        assert times[-1] <= spec.duration + 1e-6

    def test_correlated_members_arrive_close_together(self):
        (records, truth), spec = generate(SyntheticKind.ONE_TO_ONE)
        starts = {pair.first.start: pair for pair in truth.pairs}
        for record in records:
            pair = starts.get(record.start)
            if pair is None:
                continue
            # The partner must appear within the intra-pair gap.
            partners = [
                other for other in records
                if other.start == pair.second.start
                and abs(other.timestamp - record.timestamp)
                <= spec.intra_pair_gap + 1e-9
            ]
            assert partners
            break

    def test_noise_present_and_disjoint_from_correlations(self):
        (records, truth), _spec = generate(SyntheticKind.ONE_TO_ONE)
        correlated_starts = {
            e.start for pair in truth.pairs for e in (pair.first, pair.second)
        }
        noise = [r for r in records if r.start not in correlated_starts]
        assert noise  # mean interarrival 100 ms over 30 s => plenty
        for record in noise:
            assert record.pid == 1001

    def test_occurrences_roughly_zipf(self):
        (records, truth), _spec = generate(
            SyntheticKind.ONE_TO_ONE, duration=200.0
        )
        total = sum(truth.occurrences)
        observed = [count / total for count in truth.occurrences]
        for got, want in zip(observed, truth.probabilities):
            assert got == pytest.approx(want, abs=0.08)

    def test_deterministic_for_seed(self):
        spec = SyntheticSpec(SyntheticKind.ONE_TO_MANY, duration=10.0, seed=1)
        first, _ = generate_synthetic(spec)
        second, _ = generate_synthetic(spec)
        assert first == second

    def test_pair_rank_lookup(self):
        (_records, truth), _spec = generate(SyntheticKind.ONE_TO_ONE)
        assert truth.pair_rank(truth.pairs[2]) == 3
        from repro.core.extent import Extent, ExtentPair
        foreign = ExtentPair(Extent(1, 1), Extent(2, 1))
        assert truth.pair_rank(foreign) is None


class TestSpecs:
    def test_all_synthetic_specs_covers_three_kinds(self):
        specs = all_synthetic_specs()
        assert {spec.kind for spec in specs} == set(SyntheticKind)
        assert len({spec.seed for spec in specs}) == 3
