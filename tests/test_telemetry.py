"""Tests for the telemetry subsystem: registry, tracing, exporters."""

import json
import math
import re

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.engine.sharded import ShardedAnalyzer
from repro.monitor.events import BlockIOEvent
from repro.monitor.monitor import Monitor
from repro.monitor.window import StaticWindow
from repro.resilience.service import ResilientCharacterizationService
from repro.service import CharacterizationService
from repro.telemetry import (
    NULL_REGISTRY,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    SnapshotEmitter,
    StageTimer,
    get_default_registry,
    render_digest,
    render_prometheus,
    set_default_registry,
    snapshot_value,
)
from repro.telemetry.metrics import NULL_INSTRUMENT
from repro.trace.record import OpType


def event(ts, start, length=8, op=OpType.READ):
    return BlockIOEvent(ts, 1, op, start, length)


# ---------------------------------------------------------------------------
# Instruments and registry
# ---------------------------------------------------------------------------

class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_set_total_publishes_external_counter(self):
        counter = MetricsRegistry().counter("c_total")
        counter.set_total(41)
        counter.set_total(42)
        assert counter.value == 42

    def test_labelled_children_are_independent_and_cached(self):
        family = MetricsRegistry().counter("c_total", labelnames=("shard",))
        family.labels(shard="0").inc()
        family.labels(shard=1).inc(4)
        assert family.labels(shard="0") is family.labels(shard=0)
        assert family.labels(shard="0").value == 1
        assert family.labels(shard="1").value == 4

    def test_wrong_label_set_rejected(self):
        family = MetricsRegistry().counter("c_total", labelnames=("shard",))
        with pytest.raises(MetricError):
            family.labels(tier="t1")
        with pytest.raises(MetricError):
            family.labels()

    def test_unlabelled_api_on_labelled_family_rejected(self):
        family = MetricsRegistry().counter("c_total", labelnames=("shard",))
        with pytest.raises(MetricError):
            family.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistogram:
    def test_observe_tracks_count_and_sum(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(99.0)
        child = hist.labels()
        assert child.count == 3
        assert child.sum == pytest.approx(101.0)

    def test_buckets_cumulative_and_end_at_inf(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 0.6, 1.5, 99.0):
            hist.observe(value)
        buckets = hist.labels().buckets()
        assert buckets == [(1.0, 2), (2.0, 3), (math.inf, 4)]

    def test_bucket_counts_monotonic_non_decreasing(self):
        hist = MetricsRegistry().histogram(
            "h", buckets=(0.001, 0.01, 0.1, 1.0)
        )
        for value in (0.0005, 0.005, 0.005, 0.5, 2.0, 0.05):
            hist.observe(value)
        counts = [count for _bound, count in hist.labels().buckets()]
        assert counts == sorted(counts)
        assert counts[-1] == 6

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are le= (inclusive upper bound).
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.labels().buckets()[0] == (1.0, 1)

    def test_unsorted_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("h2", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("h3", buckets=())

    def test_trailing_inf_bound_stripped(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, math.inf))
        assert hist.bounds == (1.0,)


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_labelnames_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("a",))
        with pytest.raises(MetricError):
            registry.counter("x", labelnames=("b",))

    def test_bucket_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(1.0, 3.0))
        # identical bounds (modulo implicit +Inf) are fine
        registry.histogram("h", buckets=(1.0, 2.0, math.inf))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("0starts-with-digit")
        with pytest.raises(MetricError):
            registry.counter("ok", labelnames=("bad-label",))
        with pytest.raises(MetricError):
            registry.counter("ok", labelnames=("__reserved",))
        with pytest.raises(MetricError):
            registry.counter("ok", labelnames=("a", "a"))

    def test_collector_runs_at_collect_time(self):
        registry = MetricsRegistry()
        counter = registry.counter("pull_total")
        state = {"n": 0}
        registry.register_collector(lambda: counter.set_total(state["n"]))
        state["n"] = 7
        registry.collect()
        assert counter.value == 7

    def test_dead_component_collector_pruned(self):
        registry = MetricsRegistry()

        class Component:
            def __init__(self):
                self.counter = registry.counter("component_total")

            def publish(self):
                self.counter.set_total(1)

        component = Component()
        registry.register_collector(component.publish)
        registry.collect()
        assert registry.counter("component_total").value == 1
        del component
        registry.collect()  # must not raise on the dead weakref

    def test_default_registry_is_process_local_singleton(self):
        assert get_default_registry() is get_default_registry()

    def test_set_default_registry_swaps_and_restores(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert get_default_registry() is mine
        finally:
            set_default_registry(previous)
        assert get_default_registry() is previous


class TestNullRegistry:
    def test_disabled_and_shared_instrument(self):
        registry = NullRegistry()
        assert not registry.enabled
        assert registry.counter("c") is NULL_INSTRUMENT
        assert registry.gauge("g") is NULL_INSTRUMENT
        assert registry.histogram("h") is NULL_INSTRUMENT

    def test_whole_api_is_noop(self):
        instrument = NULL_REGISTRY.counter("c")
        instrument.inc()
        instrument.set(3)
        instrument.observe(0.5)
        instrument.set_total(9)
        assert instrument.labels(shard="3") is instrument
        assert instrument.value == 0.0

    def test_collectors_discarded(self):
        registry = NullRegistry()
        registry.register_collector(lambda: 1 / 0)
        assert registry.collect() == []
        assert registry.snapshot() == {"metrics": {}}


# ---------------------------------------------------------------------------
# Stage tracing
# ---------------------------------------------------------------------------

class TestStageTimer:
    def test_span_records_elapsed_into_stage_series(self):
        registry = MetricsRegistry()
        ticks = iter([10.0, 10.5])
        timer = StageTimer(registry, clock=lambda: next(ticks))
        with timer.span("monitor") as span:
            pass
        assert span.elapsed == pytest.approx(0.5)
        child = registry.get("repro_stage_duration_seconds").labels(
            stage="monitor"
        )
        assert child.count == 1
        assert child.sum == pytest.approx(0.5)

    def test_predeclared_stages_appear_before_use(self):
        registry = MetricsRegistry()
        StageTimer(registry, stages=("monitor", "analyze"))
        labels = [
            labels["stage"]
            for labels, _child in
            registry.get("repro_stage_duration_seconds").samples()
        ]
        assert labels == ["monitor", "analyze"]

    def test_null_registry_returns_shared_noop_span(self):
        timer = StageTimer(NULL_REGISTRY)
        assert timer.span("a") is timer.span("b")
        with timer.span("a"):
            pass

    def test_time_wraps_a_callable(self):
        registry = MetricsRegistry()
        timer = StageTimer(registry)
        assert timer.time("work", lambda value: value + 1, 41) == 42
        child = registry.get("repro_stage_duration_seconds").labels(
            stage="work"
        )
        assert child.count == 1

    def test_unstarted_span_stop_raises(self):
        timer = StageTimer(MetricsRegistry())
        with pytest.raises(RuntimeError):
            timer.span("x").stop()


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text):
    """A minimal exposition-format parser (the round-trip oracle).

    Returns ``{(name, (("label", "value"), ...)): float}`` plus the
    ``# TYPE`` map.  Raises on any malformed sample line, which is the
    point: whatever :func:`render_prometheus` writes must parse.
    """
    samples = {}
    types = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _hash, _kw, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        labels = []
        if match.group("labels"):
            for name, value in _LABEL_RE.findall(match.group("labels")):
                labels.append((name, value.replace(r"\"", '"')
                                          .replace(r"\n", "\n")
                                          .replace("\\\\", "\\")))
        key = (match.group("name"), tuple(labels))
        assert key not in samples, f"duplicate sample: {key}"
        samples[key] = float(match.group("value"))
    return samples, types


class TestPrometheusExposition:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("events_total", "Events seen").inc(42)
        shard = registry.counter("shard_total", labelnames=("shard",))
        shard.labels(shard="0").inc(5)
        shard.labels(shard="1").inc(7)
        registry.gauge("occupancy", "entries").set(13.5)
        hist = registry.histogram(
            "latency_seconds", "it varies", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        return registry

    def test_round_trips_through_line_parser(self):
        registry = self.make_registry()
        samples, types = parse_prometheus(render_prometheus(registry))
        assert types == {
            "events_total": "counter",
            "shard_total": "counter",
            "occupancy": "gauge",
            "latency_seconds": "histogram",
        }
        assert samples[("events_total", ())] == 42
        assert samples[("shard_total", (("shard", "0"),))] == 5
        assert samples[("shard_total", (("shard", "1"),))] == 7
        assert samples[("occupancy", ())] == 13.5
        assert samples[("latency_seconds_sum", ())] == pytest.approx(5.55)
        assert samples[("latency_seconds_count", ())] == 3

    def test_histogram_buckets_cumulative_monotonic_in_exposition(self):
        registry = self.make_registry()
        samples, _types = parse_prometheus(render_prometheus(registry))
        by_bound = {
            dict(labels)["le"]: value
            for (name, labels), value in samples.items()
            if name == "latency_seconds_bucket"
        }
        assert by_bound == {"0.1": 1, "1": 2, "+Inf": 3}
        ordered = [by_bound["0.1"], by_bound["1"], by_bound["+Inf"]]
        assert ordered == sorted(ordered)
        assert by_bound["+Inf"] == samples[("latency_seconds_count", ())]

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("weird_total", labelnames=("path",))
        family.labels(path='a"b\\c\nd').inc()
        samples, _types = parse_prometheus(render_prometheus(registry))
        assert samples[("weird_total", (("path", 'a"b\\c\nd'),))] == 1

    def test_snapshot_matches_exposition_values(self):
        registry = self.make_registry()
        samples, _types = parse_prometheus(render_prometheus(registry))
        snap = registry.snapshot()
        assert snapshot_value(snap, "events_total") == \
            samples[("events_total", ())]
        assert snapshot_value(snap, "shard_total") == 12  # summed over shards
        assert snapshot_value(snap, "shard_total", {"shard": "1"}) == 7


class TestJsonSnapshot:
    def test_schema(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help here").inc(3)
        hist = registry.histogram("h_seconds", buckets=(1.0,))
        hist.observe(0.5)
        snap = registry.snapshot()
        assert set(snap) == {"metrics"}
        counter = snap["metrics"]["c_total"]
        assert counter["type"] == "counter"
        assert counter["help"] == "help here"
        assert counter["samples"] == [{"labels": {}, "value": 3.0}]
        histogram = snap["metrics"]["h_seconds"]
        assert histogram["samples"][0]["count"] == 1
        assert histogram["samples"][0]["buckets"] == {"1": 1, "+Inf": 1}

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(math.inf)  # clamped, not emitted as Infinity
        text = json.dumps(registry.snapshot())
        assert json.loads(text)["metrics"]["g"]["samples"][0]["value"] == 0.0

    def test_snapshot_value_default_for_missing(self):
        assert snapshot_value({"metrics": {}}, "nope", default=-1) == -1

    def test_digest_renders_one_line_per_sample(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        lines = render_digest(registry).splitlines()
        assert "c_total 2" in lines
        assert any(
            line.startswith("h count=1 sum=0.5") for line in lines
        )


class TestSnapshotEmitter:
    def test_maybe_emit_gated_by_interval(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        path = tmp_path / "metrics.ndjson"
        emitter = SnapshotEmitter(registry, path, interval=10.0,
                                  clock=lambda: 0.0)
        assert emitter.maybe_emit(now=0.0) is not None
        assert emitter.maybe_emit(now=5.0) is None
        assert emitter.maybe_emit(now=10.0) is not None
        assert emitter.emitted == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for seq, line in enumerate(lines, start=1):
            record = json.loads(line)
            assert record["seq"] == seq
            assert record["ts"] > 0
            assert record["metrics"]["c_total"]["samples"][0]["value"] == 1.0

    def test_on_snapshot_callback_sees_every_emission(self):
        registry = MetricsRegistry()
        seen = []
        emitter = SnapshotEmitter(registry, path=None, interval=1.0,
                                  on_snapshot=seen.append)
        emitter.emit()
        emitter.emit()
        assert [snap["seq"] for snap in seen] == [1, 2]

    def test_write_errors_counted_not_raised(self, tmp_path):
        emitter = SnapshotEmitter(MetricsRegistry(), path=tmp_path,
                                  interval=1.0)  # a directory: open() fails
        emitter.emit()
        assert emitter.write_errors == 1

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SnapshotEmitter(MetricsRegistry(), interval=0)

    def test_background_thread_mode(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "bg.ndjson"
        with SnapshotEmitter(registry, path, interval=60.0) as emitter:
            emitter.start()
        # stop() on context exit emits one final snapshot
        assert emitter.emitted >= 1
        assert len(path.read_text().splitlines()) == emitter.emitted


# ---------------------------------------------------------------------------
# Pipeline integration: every layer publishes into one registry
# ---------------------------------------------------------------------------

class TestComponentIntegration:
    def test_monitor_publishes_stats_through_registry(self):
        registry = MetricsRegistry()
        monitor = Monitor(window=StaticWindow(1e-3), registry=registry)
        monitor.on_event(event(0.0, 100))
        monitor.on_event(event(1e-5, 200))
        monitor.flush()
        snap = registry.snapshot()
        assert snapshot_value(snap, "repro_monitor_events_seen_total") == 2
        assert snapshot_value(
            snap, "repro_monitor_transactions_emitted_total"
        ) == 1
        # the registry numbers are the dataclass numbers
        assert snapshot_value(snap, "repro_monitor_events_seen_total") == \
            monitor.stats.events_seen

    def test_analyzer_publishes_table_and_flow_counters(self):
        registry = MetricsRegistry()
        analyzer = OnlineAnalyzer(
            AnalyzerConfig(item_capacity=64, correlation_capacity=64),
            registry=registry,
        )
        from conftest import ext
        analyzer.process([ext(1), ext(2)])
        analyzer.process([ext(1), ext(2)])
        snap = registry.snapshot()
        assert snapshot_value(
            snap, "repro_analyzer_transactions_total", {"shard": ""}
        ) == 2
        assert snapshot_value(
            snap, "repro_synopsis_lookups_total", {"table": "items"}
        ) == 4
        assert snapshot_value(
            snap, "repro_synopsis_occupancy",
            {"table": "items", "tier": "t1"},
        ) >= 0

    def test_sharded_engine_publishes_per_shard_series(self):
        registry = MetricsRegistry()
        engine = ShardedAnalyzer(
            AnalyzerConfig(item_capacity=64, correlation_capacity=64),
            shards=2, registry=registry,
        )
        from conftest import ext
        engine.process_stream([[ext(i), ext(i + 100)] for i in range(20)])
        snap = registry.snapshot()
        assert snapshot_value(snap, "repro_engine_shards") == 2
        per_shard = [
            snapshot_value(snap, "repro_engine_shard_occupancy",
                           {"table": "items", "shard": str(index)})
            for index in range(2)
        ]
        shards = engine.shard_analyzers
        assert sum(per_shard) == \
            len(shards[0].items) + len(shards[1].items)
        assert snapshot_value(
            snap, "repro_engine_shard_imbalance", {"table": "items"}
        ) >= 1.0
        assert snapshot_value(
            snap, "repro_engine_transactions_total"
        ) == 20
        shard_labels = {
            labels["shard"]
            for labels, _child in
            registry.get("repro_synopsis_lookups_total").samples()
        }
        assert shard_labels == {"0", "1"}

    def test_service_latency_histograms_and_stage_spans(self):
        registry = MetricsRegistry()
        service = CharacterizationService(
            config=AnalyzerConfig(item_capacity=64, correlation_capacity=64),
            window=StaticWindow(1e-3),
            snapshot_interval=5,
            registry=registry,
        )
        service.submit(event(0.0, 100))
        service.submit_many(
            [event(0.1 + index * 0.05, 100 + index) for index in range(10)]
        )
        service.flush()
        service.snapshot()
        snap = registry.snapshot()
        assert snapshot_value(
            snap, "repro_service_submit_latency_seconds", {"path": "event"}
        ) == 1
        assert snapshot_value(
            snap, "repro_service_submit_latency_seconds", {"path": "batch"}
        ) == 1
        assert snapshot_value(snap, "repro_service_batch_events") == 1
        assert snapshot_value(snap, "repro_service_snapshots_total") == 1
        assert snapshot_value(
            snap, "repro_stage_duration_seconds", {"stage": "monitor"}
        ) >= 1

    def test_service_with_null_registry_still_works(self):
        service = CharacterizationService(
            window=StaticWindow(1e-3), registry=NULL_REGISTRY
        )
        service.submit(event(0.0, 100))
        service.submit_many([event(0.1, 200), event(0.10001, 300)])
        service.flush()
        assert service.snapshot().events == 3
        assert NULL_REGISTRY.snapshot() == {"metrics": {}}

    def test_resilient_service_publishes_failure_counters(self, tmp_path):
        registry = MetricsRegistry()
        service = ResilientCharacterizationService(
            window=StaticWindow(1e-3),
            max_io_retries=0,
            registry=registry,
        )
        with pytest.raises(OSError):
            service.checkpoint_to(tmp_path)  # a directory: open() fails
        snap = registry.snapshot()
        assert snapshot_value(
            snap, "repro_resilience_checkpoint_failures_total"
        ) == 1
        assert snapshot_value(snap, "repro_resilience_degraded") == 1.0

    def test_restore_rebinds_engine_telemetry_to_service_registry(self):
        import io

        donor = CharacterizationService(
            window=StaticWindow(1e-3), shards=2, registry=MetricsRegistry()
        )
        donor.submit_many(
            [event(index * 1e-5, 100 + index % 4) for index in range(40)]
        )
        buffer = io.BytesIO()
        donor.checkpoint(buffer)

        registry = MetricsRegistry()
        service = CharacterizationService(
            window=StaticWindow(1e-3), shards=2, registry=registry
        )
        buffer.seek(0)
        service.restore(buffer)
        # The loaded engine was built against the default registry; the
        # service must re-home it so restored tables stay observable.
        assert service.analyzer.registry is registry
        snap = registry.snapshot()
        occupancy = sum(
            sample["value"]
            for sample in snap["metrics"]["repro_synopsis_occupancy"][
                "samples"
            ]
            if sample["labels"]["table"] == "items"
        )
        assert occupancy > 0

    def test_run_pipeline_returns_registry(self):
        from repro.pipeline import run_pipeline
        from repro.workloads.synthetic import (
            SyntheticKind,
            SyntheticSpec,
            generate_synthetic,
        )
        records, _truth = generate_synthetic(
            SyntheticSpec(SyntheticKind.ONE_TO_ONE, duration=5.0)
        )
        registry = MetricsRegistry()
        result = run_pipeline(records, record_offline=False,
                              registry=registry)
        assert result.registry is registry
        snap = registry.snapshot()
        assert snapshot_value(snap, "repro_monitor_events_seen_total") == \
            result.monitor_stats.events_seen
