"""Tests for time-to-detection measurement."""

import pytest

from repro.analysis.timeline import measure_detection_latency
from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig

from conftest import ext, pair


def analyzer_64():
    return OnlineAnalyzer(AnalyzerConfig(item_capacity=64,
                                         correlation_capacity=64))


class TestDetectionLatency:
    def test_detection_at_exact_support(self):
        hot = [ext(1), ext(2)]
        stream = [hot] * 10
        timeline = measure_detection_latency(
            stream, [pair(1, 2)], analyzer_64(), min_support=5
        )
        event = timeline.detections[pair(1, 2)]
        assert event is not None
        assert event.transaction_index == 5
        assert event.occurrence == 5
        assert event.stream_fraction == pytest.approx(0.5)

    def test_interleaved_noise_delays_but_not_prevents(self):
        stream = []
        for i in range(10):
            stream.append([ext(1), ext(2)])
            stream.append([ext(1000 + i), ext(2000 + i)])
        timeline = measure_detection_latency(
            stream, [pair(1, 2)], analyzer_64(), min_support=5
        )
        event = timeline.detections[pair(1, 2)]
        assert event is not None
        assert event.transaction_index == 9  # 5th hot txn is stream #9

    def test_never_frequent_is_missed(self):
        stream = [[ext(1), ext(2)]] * 3
        timeline = measure_detection_latency(
            stream, [pair(1, 2)], analyzer_64(), min_support=5
        )
        assert timeline.detections[pair(1, 2)] is None
        assert timeline.missed() == [pair(1, 2)]
        assert timeline.detection_ratio == 0.0

    def test_multiple_watched_pairs(self):
        stream = []
        for _ in range(8):
            stream.append([ext(1), ext(2)])
        for _ in range(8):
            stream.append([ext(10), ext(20)])
        timeline = measure_detection_latency(
            stream, [pair(1, 2), pair(10, 20)], analyzer_64(), min_support=5
        )
        first = timeline.detections[pair(1, 2)]
        second = timeline.detections[pair(10, 20)]
        assert first.transaction_index < second.transaction_index
        assert timeline.detection_ratio == 1.0

    def test_mean_stream_fraction(self):
        stream = [[ext(1), ext(2)]] * 10
        timeline = measure_detection_latency(
            stream, [pair(1, 2)], analyzer_64(), min_support=2
        )
        assert timeline.mean_stream_fraction() == pytest.approx(0.2)

    def test_empty_watch_list(self):
        timeline = measure_detection_latency(
            [[ext(1), ext(2)]], [], analyzer_64()
        )
        assert timeline.detection_ratio == 1.0
        assert timeline.mean_stream_fraction() == 1.0

    def test_eviction_can_defer_detection(self):
        """With a tiny table, noise can evict the watched pair and reset
        its tally -- detection happens later (or never), which is exactly
        the accuracy/memory trade the paper studies."""
        tiny = OnlineAnalyzer(AnalyzerConfig(item_capacity=2,
                                             correlation_capacity=2))
        stream = []
        for i in range(12):
            stream.append([ext(1), ext(2)])
            stream.append([ext(100 + i), ext(5000 + i)])
            stream.append([ext(300 + i), ext(9000 + i)])
        timeline = measure_detection_latency(
            stream, [pair(1, 2)], tiny, min_support=5
        )
        big_timeline = measure_detection_latency(
            stream, [pair(1, 2)], analyzer_64(), min_support=5
        )
        big_event = big_timeline.detections[pair(1, 2)]
        tiny_event = timeline.detections[pair(1, 2)]
        assert big_event is not None
        if tiny_event is not None:
            assert tiny_event.transaction_index >= big_event.transaction_index
