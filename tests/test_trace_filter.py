"""Tests for trace filtering and sampling utilities."""

import pytest

from repro.trace.filter import (
    busiest_disk,
    downsample,
    filter_by_block_range,
    filter_by_disk,
    filter_by_op,
    filter_by_pid,
    filter_by_time,
    split_reads_writes,
)
from repro.trace.record import OpType, TraceRecord


def records():
    return [
        TraceRecord(0.0, 1, OpType.READ, 0, 8, disk_id=0),
        TraceRecord(1.0, 2, OpType.WRITE, 100, 8, disk_id=1),
        TraceRecord(2.0, 1, OpType.READ, 200, 8, disk_id=1),
        TraceRecord(3.0, 3, OpType.WRITE, 300, 8, disk_id=1),
        TraceRecord(4.0, 1, OpType.READ, 400, 8, disk_id=0),
    ]


class TestFilters:
    def test_filter_by_op(self):
        reads = filter_by_op(records(), OpType.READ)
        assert len(reads) == 3
        assert all(record.is_read for record in reads)

    def test_filter_by_pid(self):
        kept = filter_by_pid(records(), [1])
        assert len(kept) == 3
        assert all(record.pid == 1 for record in kept)

    def test_filter_by_block_range(self):
        kept = filter_by_block_range(records(), 100, 308)
        assert [record.start for record in kept] == [100, 200, 300]

    def test_block_range_requires_full_containment(self):
        kept = filter_by_block_range(records(), 100, 305)
        assert [record.start for record in kept] == [100, 200]

    def test_block_range_validation(self):
        with pytest.raises(ValueError):
            filter_by_block_range(records(), 10, 10)

    def test_filter_by_time_rebases(self):
        kept = filter_by_time(records(), start=1.0, end=3.5)
        assert [record.start for record in kept] == [100, 200, 300]
        assert kept[0].timestamp == 0.0
        assert kept[-1].timestamp == pytest.approx(2.0)

    def test_filter_by_time_no_rebase(self):
        kept = filter_by_time(records(), start=1.0, end=3.5, rebase=False)
        assert kept[0].timestamp == 1.0

    def test_time_validation(self):
        with pytest.raises(ValueError):
            filter_by_time(records(), start=2.0, end=1.0)

    def test_filter_by_disk(self):
        kept = filter_by_disk(records(), 1)
        assert len(kept) == 3


class TestHelpers:
    def test_busiest_disk(self):
        assert busiest_disk(records()) == 1

    def test_busiest_disk_empty(self):
        with pytest.raises(ValueError):
            busiest_disk([])

    def test_downsample(self):
        kept = downsample(records(), 2)
        assert [record.start for record in kept] == [0, 200, 400]
        with pytest.raises(ValueError):
            downsample(records(), 0)

    def test_split_reads_writes(self):
        reads, writes = split_reads_writes(records())
        assert len(reads) == 3 and len(writes) == 2
        assert all(record.is_read for record in reads)
        assert all(record.is_write for record in writes)
