"""Tests for trace serialisation (MSR CSV and binary formats)."""

import io

import pytest

from repro.trace.io import (
    binary_trace_bytes,
    is_gzip_path,
    load_binary,
    load_msr_csv,
    read_binary,
    read_msr_csv,
    save_binary,
    save_msr_csv,
    trace_format_suffix,
    write_binary,
    write_msr_csv,
)
from repro.trace.record import BLOCK_SIZE, OpType, TraceRecord


def sample_records():
    return [
        TraceRecord(0.0, 7, OpType.READ, 100, 8, latency=3.5e-3),
        TraceRecord(0.001, 7, OpType.WRITE, 2048, 16, latency=None),
        TraceRecord(2.5, 8, OpType.READ, 0, 1, latency=50e-6),
    ]


class TestMsrCsv:
    def test_roundtrip(self):
        stream = io.StringIO()
        rows = write_msr_csv(sample_records(), stream)
        assert rows == 3
        stream.seek(0)
        loaded = list(read_msr_csv(stream, pid=7))
        original = sample_records()
        for got, want in zip(loaded, original):
            assert got.timestamp == pytest.approx(want.timestamp, abs=1e-7)
            assert got.op == want.op
            assert got.start == want.start
            assert got.length == want.length
            if want.latency is None:
                assert got.latency is None
            else:
                assert got.latency == pytest.approx(want.latency, abs=1e-7)

    def test_field_convention(self):
        stream = io.StringIO()
        write_msr_csv([sample_records()[0]], stream, hostname="srv1")
        line = stream.getvalue().strip()
        fields = line.split(",")
        assert len(fields) == 7
        assert fields[1] == "srv1"
        assert fields[3] == "Read"
        assert int(fields[4]) == 100 * BLOCK_SIZE   # offset in bytes
        assert int(fields[5]) == 8 * BLOCK_SIZE     # size in bytes

    def test_skips_blank_and_comment_lines(self):
        text = "# header\n\n0,host,0,Read,512,512,0\n"
        records = list(read_msr_csv(io.StringIO(text)))
        assert len(records) == 1
        assert records[0].start == 1
        assert records[0].latency is None  # zero response = unknown

    def test_rejects_malformed_rows(self):
        with pytest.raises(ValueError, match="line 1"):
            list(read_msr_csv(io.StringIO("1,2,3\n")))

    def test_size_rounds_up_to_blocks(self):
        text = "0,h,0,Write,0,100,0\n"  # 100 bytes -> 1 block
        record = next(read_msr_csv(io.StringIO(text)))
        assert record.length == 1

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_msr_csv(sample_records(), path)
        loaded = load_msr_csv(path, pid=7)
        assert len(loaded) == 3


class TestMsrEdgeRows:
    """Boundary rows the MSR corpus (and corrupted copies of it) contain."""

    GOOD = "0,host,0,Read,512,512,1000\n"

    def test_negative_offset_rejected(self):
        text = "0,host,0,Read,-512,512,0\n"
        with pytest.raises(ValueError, match="line 1"):
            list(read_msr_csv(io.StringIO(text)))

    def test_unknown_op_name_rejected(self):
        text = "0,host,0,Frobnicate,512,512,0\n"
        with pytest.raises(ValueError, match="line 1"):
            list(read_msr_csv(io.StringIO(text)))

    def test_zero_response_time_means_unknown_latency(self):
        text = "0,host,0,Write,0,512,0\n"
        record = next(read_msr_csv(io.StringIO(text)))
        assert record.latency is None

    def test_positive_response_time_converted(self):
        # Response times are filetime ticks (100 ns units).
        record = next(read_msr_csv(io.StringIO(self.GOOD)))
        assert record.latency == pytest.approx(1000 * 100e-9)

    def test_trailing_blank_and_comment_lines_ignored(self):
        text = self.GOOD + "\n\n# trailing comment\n   \n"
        records = list(read_msr_csv(io.StringIO(text)))
        assert len(records) == 1

    def test_lenient_policy_skips_edge_rows(self):
        from repro.trace.errors import ErrorPolicy, IngestReport

        text = (
            "0,host,0,Read,-512,512,0\n"      # negative offset
            + self.GOOD
            + "0,host,0,Frobnicate,512,512,0\n"  # unknown op
            + "# comment\n\n"                    # not errors, just skipped
        )
        report = IngestReport()
        records = list(read_msr_csv(io.StringIO(text),
                                    policy=ErrorPolicy.LENIENT,
                                    report=report))
        assert len(records) == 1
        assert report.rows_ok == 1
        assert report.rows_bad == 2
        assert report.error_rate == pytest.approx(2 / 3)


class TestBinary:
    def test_roundtrip_exact(self):
        stream = io.BytesIO()
        written = write_binary(sample_records(), stream)
        assert written == binary_trace_bytes(3)
        stream.seek(0)
        loaded = list(read_binary(stream))
        assert loaded == sample_records()

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            list(read_binary(io.BytesIO(b"NOTATRACE")))

    def test_truncated_record_rejected(self):
        stream = io.BytesIO()
        write_binary(sample_records(), stream)
        data = stream.getvalue()[:-5]
        with pytest.raises(ValueError, match="truncated"):
            list(read_binary(io.BytesIO(data)))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.bin"
        save_binary(sample_records(), path)
        assert load_binary(path) == sample_records()

    def test_empty_trace(self):
        stream = io.BytesIO()
        write_binary([], stream)
        stream.seek(0)
        assert list(read_binary(stream)) == []

    def test_storage_overhead_grows_linearly(self):
        """The offline path's storage cost -- the paper's motivation for
        avoiding trace files -- is linear in request count."""
        per_record = binary_trace_bytes(2) - binary_trace_bytes(1)
        assert binary_trace_bytes(1_000_000) >= 1_000_000 * per_record


class TestGzip:
    """Transparent compression: a ``.gz`` suffix gzips any trace format."""

    def test_msr_csv_gz_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv.gz"
        save_msr_csv(sample_records(), path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # really gzipped
        loaded = load_msr_csv(path, pid=7)
        assert len(loaded) == 3
        assert loaded[0].start == sample_records()[0].start

    def test_binary_gz_roundtrip(self, tmp_path):
        path = tmp_path / "trace.bin.gz"
        save_binary(sample_records(), path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert load_binary(path) == sample_records()

    def test_gz_actually_compresses(self, tmp_path):
        records = sample_records() * 500
        plain = tmp_path / "trace.csv"
        packed = tmp_path / "trace.csv.gz"
        save_msr_csv(records, plain)
        save_msr_csv(records, packed)
        assert packed.stat().st_size < plain.stat().st_size / 2
        assert load_msr_csv(packed) == load_msr_csv(plain)

    def test_is_gzip_path(self, tmp_path):
        assert is_gzip_path("trace.csv.gz")
        assert is_gzip_path(tmp_path / "t.bin.gz")
        assert not is_gzip_path("trace.csv")
        assert not is_gzip_path("trace.gz.csv")

    def test_trace_format_suffix_strips_gz(self):
        assert trace_format_suffix("a/b/trace.csv.gz") == ".csv"
        assert trace_format_suffix("trace.BIN") == ".bin"
        assert trace_format_suffix("trace.txt.gz") == ".txt"
        assert trace_format_suffix("trace.gz") == ""
