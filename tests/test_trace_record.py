"""Tests for trace records."""

import pytest

from repro.core.extent import Extent
from repro.trace.record import BLOCK_SIZE, OpType, TraceRecord


class TestOpType:
    def test_parse_variants(self):
        assert OpType.parse("R") is OpType.READ
        assert OpType.parse("read") is OpType.READ
        assert OpType.parse(" Write ") is OpType.WRITE
        assert OpType.parse("w") is OpType.WRITE

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            OpType.parse("erase")


class TestTraceRecord:
    def test_basic_fields(self):
        record = TraceRecord(1.5, 42, OpType.READ, 100, 8, latency=2e-3)
        assert record.extent == Extent(100, 8)
        assert record.size_bytes == 8 * BLOCK_SIZE
        assert record.is_read and not record.is_write

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1.0, 0, OpType.READ, 0, 1)
        with pytest.raises(ValueError):
            TraceRecord(0.0, 0, OpType.READ, -5, 1)
        with pytest.raises(ValueError):
            TraceRecord(0.0, 0, OpType.READ, 0, 0)
        with pytest.raises(ValueError):
            TraceRecord(0.0, 0, OpType.READ, 0, 1, latency=-1.0)

    def test_shifted(self):
        record = TraceRecord(5.0, 0, OpType.WRITE, 10, 2)
        moved = record.shifted(-2.0)
        assert moved.timestamp == 3.0
        assert moved.start == record.start  # everything else untouched
        assert record.timestamp == 5.0      # original is immutable

    def test_accelerated(self):
        record = TraceRecord(10.0, 0, OpType.READ, 0, 1)
        assert record.accelerated(4.0).timestamp == 2.5
        with pytest.raises(ValueError):
            record.accelerated(0.0)

    def test_latency_optional(self):
        record = TraceRecord(0.0, 0, OpType.READ, 0, 1)
        assert record.latency is None
