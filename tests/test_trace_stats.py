"""Tests for trace statistics (paper Table I)."""

import pytest

from repro.trace.record import BLOCK_SIZE, OpType, TraceRecord
from repro.trace.stats import (
    TraceStats,
    compute_stats,
    format_table1_row,
    merge_intervals,
    unique_blocks,
)


class TestMergeIntervals:
    def test_disjoint(self):
        assert merge_intervals([(0, 2), (5, 7)]) == [(0, 2), (5, 7)]

    def test_overlapping(self):
        assert merge_intervals([(0, 5), (3, 8)]) == [(0, 8)]

    def test_adjacent_merge(self):
        assert merge_intervals([(0, 5), (5, 8)]) == [(0, 8)]

    def test_unsorted_input(self):
        assert merge_intervals([(10, 12), (0, 3), (2, 5)]) == [(0, 5), (10, 12)]

    def test_contained(self):
        assert merge_intervals([(0, 10), (2, 4)]) == [(0, 10)]

    def test_empty(self):
        assert merge_intervals([]) == []

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            merge_intervals([(5, 5)])


class TestUniqueBlocks:
    def test_counts_footprint_not_traffic(self):
        records = [
            TraceRecord(0.0, 0, OpType.READ, 0, 10),
            TraceRecord(1.0, 0, OpType.READ, 0, 10),   # same blocks again
            TraceRecord(2.0, 0, OpType.READ, 5, 10),   # half-overlapping
        ]
        assert unique_blocks(records) == 15


class TestComputeStats:
    def _records(self):
        return [
            TraceRecord(0.0, 0, OpType.READ, 0, 2, latency=1e-3),
            TraceRecord(50e-6, 0, OpType.WRITE, 0, 2, latency=3e-3),  # fast gap
            TraceRecord(1.0, 0, OpType.READ, 100, 4, latency=2e-3),   # slow gap
        ]

    def test_totals(self):
        stats = compute_stats(self._records())
        assert stats.requests == 3
        assert stats.total_bytes == (2 + 2 + 4) * BLOCK_SIZE
        assert stats.unique_bytes == (2 + 4) * BLOCK_SIZE

    def test_interarrival_fraction(self):
        stats = compute_stats(self._records())
        assert stats.fast_interarrival_fraction == pytest.approx(0.5)
        assert stats.fast_interarrival_percent == pytest.approx(50.0)

    def test_mean_latency_and_read_fraction(self):
        stats = compute_stats(self._records())
        assert stats.mean_latency == pytest.approx(2e-3)
        assert stats.read_fraction == pytest.approx(2 / 3)

    def test_unsorted_input_is_sorted_first(self):
        records = list(reversed(self._records()))
        assert compute_stats(records).fast_interarrival_fraction == pytest.approx(0.5)

    def test_latency_optional(self):
        records = [TraceRecord(0.0, 0, OpType.READ, 0, 1)] * 2
        assert compute_stats(records).mean_latency is None

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            compute_stats([])

    def test_duration(self):
        assert compute_stats(self._records()).duration == pytest.approx(1.0)

    def test_gb_properties(self):
        stats = TraceStats(
            requests=1, total_bytes=11_300_000_000, unique_bytes=530_000_000,
            fast_interarrival_fraction=0.784, read_fraction=0.3,
            mean_latency=None, duration=1.0,
        )
        assert stats.total_gb == pytest.approx(11.3)
        assert stats.unique_gb == pytest.approx(0.53)

    def test_format_table1_row(self):
        stats = compute_stats(self._records())
        row = format_table1_row("wdev", "test web server", stats)
        assert "wdev" in row and "GB" in row and "%" in row
