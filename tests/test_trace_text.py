"""Tests for the blkparse-style text format and PGM image output."""

import io

import numpy as np
import pytest

from repro.analysis.heatmap import load_pgm, rasterize_pairs, save_pgm
from repro.trace.io import (
    load_blkparse_text,
    read_blkparse_text,
    save_blkparse_text,
    write_blkparse_text,
)
from repro.trace.record import OpType, TraceRecord

from conftest import pair


def sample_records():
    return [
        TraceRecord(0.000102837, 697, OpType.READ, 223490, 8),
        TraceRecord(0.50, 698, OpType.WRITE, 1024, 16),
    ]


class TestBlkparseText:
    def test_roundtrip(self):
        stream = io.StringIO()
        assert write_blkparse_text(sample_records(), stream) == 2
        stream.seek(0)
        loaded = list(read_blkparse_text(stream))
        for got, want in zip(loaded, sample_records()):
            assert got.timestamp == pytest.approx(want.timestamp)
            assert got.pid == want.pid
            assert got.op == want.op
            assert got.start == want.start
            assert got.length == want.length

    def test_line_shape(self):
        stream = io.StringIO()
        write_blkparse_text([sample_records()[0]], stream, device="8,16")
        line = stream.getvalue()
        fields = line.split()
        assert fields[0] == "8,16"
        assert fields[5] == "D"          # issue action
        assert fields[6] == "R"
        assert fields[8] == "+"

    def test_non_event_lines_skipped(self):
        text = (
            "Total (8,0):\n"
            " Reads Queued:      100,      400KiB\n"
            "\n"
            "  8,0    0        1   0.000102837   697  D   R 223490 + 8 [fio]\n"
            "  8,0    0        2   0.000200000   697  C   R 223490 + 8 [0]\n"
        )
        records = list(read_blkparse_text(io.StringIO(text)))
        assert len(records) == 1   # only the D (issue) event
        assert records[0].start == 223490

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_blkparse_text(sample_records(), path)
        assert len(load_blkparse_text(path)) == 2

    def test_malformed_numeric_fields_skipped(self):
        text = "  8,0  0  1  notatime  697  D  R 10 + 8 [x]\n"
        assert list(read_blkparse_text(io.StringIO(text))) == []


class TestPgm:
    def test_roundtrip_shape(self, tmp_path):
        grid = rasterize_pairs({pair(10, 90): 3}, bins=32, max_block=100)
        path = tmp_path / "plot.pgm"
        save_pgm(grid, path)
        loaded = load_pgm(path)
        assert loaded.shape == grid.shape
        # Occupied cells stay occupied, empty cells stay empty.
        assert np.array_equal(loaded > 0, grid > 0)

    def test_header(self, tmp_path):
        grid = np.zeros((4, 6), dtype=np.int64)
        path = tmp_path / "empty.pgm"
        save_pgm(grid, path)
        with open(path, "rb") as stream:
            assert stream.readline().strip() == b"P5"
            assert stream.readline().split() == [b"6", b"4"]

    def test_gamma_validation(self, tmp_path):
        grid = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            save_pgm(grid, tmp_path / "x.pgm", gamma=0.0)

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(np.zeros(4, dtype=np.int64), tmp_path / "x.pgm")

    def test_empty_grid_all_black(self, tmp_path):
        grid = np.zeros((3, 3), dtype=np.int64)
        path = tmp_path / "black.pgm"
        save_pgm(grid, path)
        assert load_pgm(path).max() == 0

    def test_load_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P2\n1 1\n255\n0")
        with pytest.raises(ValueError):
            load_pgm(path)
