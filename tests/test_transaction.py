"""Tests for transactions and deduplication (paper Section III-D2)."""

import pytest

from repro.core.extent import Extent
from repro.monitor.events import BlockIOEvent
from repro.monitor.transaction import Transaction, dedup_events
from repro.trace.record import OpType, TraceRecord


def event(ts=0.0, start=0, length=1, op=OpType.READ, pid=1):
    return BlockIOEvent(ts, pid, op, start, length)


class TestBlockIOEvent:
    def test_extent_property(self):
        assert event(start=100, length=4).extent == Extent(100, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            event(length=0)
        with pytest.raises(ValueError):
            event(start=-1)

    def test_from_record_overrides(self):
        record = TraceRecord(5.0, 9, OpType.WRITE, 10, 2, latency=1e-3)
        raw = BlockIOEvent.from_record(record)
        assert raw.timestamp == 5.0 and raw.latency == 1e-3
        overridden = BlockIOEvent.from_record(record, timestamp=1.0, latency=2e-3)
        assert overridden.timestamp == 1.0
        assert overridden.latency == 2e-3
        assert overridden.pid == 9


class TestTransaction:
    def test_times_and_span(self):
        txn = Transaction([event(ts=1.0), event(ts=1.2, start=5)])
        assert txn.start_time == 1.0
        assert txn.end_time == 1.2
        assert txn.span == pytest.approx(0.2)

    def test_empty_transaction_has_no_times(self):
        txn = Transaction()
        assert not txn
        with pytest.raises(ValueError):
            _ = txn.start_time
        with pytest.raises(ValueError):
            _ = txn.end_time

    def test_extents_preserve_arrival_order(self):
        txn = Transaction([event(start=30), event(start=10), event(start=20)])
        assert [e.start for e in txn.extents] == [30, 10, 20]

    def test_read_write_split(self):
        txn = Transaction([
            event(op=OpType.READ),
            event(start=5, op=OpType.WRITE),
            event(start=9, op=OpType.WRITE),
        ])
        assert txn.read_write_split() == (1, 2)


class TestDedup:
    def test_exact_shape_duplicates_removed(self):
        events = [event(start=0, length=4), event(ts=1e-5, start=0, length=4)]
        kept, dropped = dedup_events(events)
        assert len(kept) == 1 and dropped == 1

    def test_different_shape_is_not_duplicate(self):
        """Dedup is by extent shape: 0+4 and 0+3 both stay."""
        events = [event(start=0, length=4), event(start=0, length=3)]
        kept, dropped = dedup_events(events)
        assert len(kept) == 2 and dropped == 0

    def test_first_occurrence_kept(self):
        events = [
            event(ts=0.0, start=7),
            event(ts=1e-5, start=8),
            event(ts=2e-5, start=7),
        ]
        kept, dropped = dedup_events(events)
        assert [e.timestamp for e in kept] == [0.0, 1e-5]
        assert dropped == 1

    def test_triplicate(self):
        events = [event(start=3)] * 3
        kept, dropped = dedup_events(events)
        assert len(kept) == 1 and dropped == 2

    def test_empty(self):
        assert dedup_events([]) == ([], 0)
