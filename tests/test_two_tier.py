"""Tests for the two-tier synopsis table (paper Section III-D1)."""

import pytest

from repro.core.two_tier import TIER1, TIER2, TwoTierTable


class TestConstruction:
    def test_default_equal_tiers(self):
        table = TwoTierTable(8)
        assert table.t1.capacity == 8
        assert table.t2.capacity == 8
        assert table.capacity == 16

    def test_explicit_t2_capacity(self):
        table = TwoTierTable(8, 4)
        assert table.t2.capacity == 4

    def test_promote_threshold_must_exceed_one(self):
        with pytest.raises(ValueError):
            TwoTierTable(8, promote_threshold=1)


class TestAccessPath:
    def test_first_sighting_lands_in_t1(self):
        table = TwoTierTable(4)
        result = table.access("x")
        assert not result.hit
        assert result.tier == TIER1
        assert result.tally == 1
        assert table.tier_of("x") == TIER1

    def test_second_sighting_promotes_to_t2(self):
        table = TwoTierTable(4)
        table.access("x")
        result = table.access("x")
        assert result.hit and result.promoted
        assert result.tier == TIER2
        assert result.tally == 2
        assert table.tier_of("x") == TIER2
        assert "x" not in table.t1

    def test_t2_hit_increments_tally(self):
        table = TwoTierTable(4)
        for _ in range(5):
            table.access("x")
        assert table.tier_of("x") == TIER2
        assert table.tally("x") == 5

    def test_higher_promote_threshold(self):
        table = TwoTierTable(4, promote_threshold=3)
        table.access("x")
        table.access("x")
        assert table.tier_of("x") == TIER1  # tally 2 < 3
        result = table.access("x")
        assert result.promoted and table.tier_of("x") == TIER2

    def test_stats_counters(self):
        table = TwoTierTable(4)
        table.access("x")      # miss
        table.access("x")      # t1 hit + promotion
        table.access("x")      # t2 hit
        table.access("y")      # miss
        stats = table.stats
        assert stats.lookups == 4
        assert stats.misses == 2
        assert stats.t1_hits == 1
        assert stats.t2_hits == 1
        assert stats.promotions == 1
        assert stats.hit_ratio == pytest.approx(0.5)


class TestEvictions:
    def test_t1_eviction_on_insert_overflow(self):
        table = TwoTierTable(2)
        table.access("a")
        table.access("b")
        result = table.access("c")
        assert result.evicted == [("a", 1, TIER1)]
        assert "a" not in table

    def test_t2_eviction_on_promotion_overflow(self):
        table = TwoTierTable(4, 1)
        table.access("a")
        table.access("a")  # a -> T2 (fills it)
        table.access("b")
        result = table.access("b")  # b -> T2, evicting a
        assert result.promoted
        assert result.evicted == [("a", 2, TIER2)]
        assert "a" not in table
        assert table.tier_of("b") == TIER2

    def test_t1_lru_eviction_respects_touch_order(self):
        table = TwoTierTable(2, promote_threshold=10)
        table.access("a")
        table.access("b")
        table.access("a")  # refresh a; b is now T1's LRU
        result = table.access("c")
        assert result.evicted[0][0] == "b"

    def test_promotion_frees_t1_slot(self):
        table = TwoTierTable(1, 4)
        table.access("a")
        table.access("a")  # promoted: T1 now empty
        result = table.access("b")
        assert result.evicted == []


class TestDemoteAndRemove:
    def test_demote_in_t1(self):
        table = TwoTierTable(3, promote_threshold=10)
        for key in "abc":
            table.access(key)
        table.demote("c")
        result = table.access("d")
        assert result.evicted[0][0] == "c"
        assert table.stats.demotions == 1

    def test_demote_in_t2(self):
        table = TwoTierTable(4, 2)
        for key in ("a", "a", "b", "b"):
            table.access(key)
        assert table.tier_of("a") == TIER2 and table.tier_of("b") == TIER2
        table.demote("b")  # b is now T2's next victim
        table.access("c")
        table.access("c")  # c promoted, evicting b
        assert "b" not in table
        assert "a" in table

    def test_demote_absent(self):
        table = TwoTierTable(2)
        assert table.demote("ghost") is False
        assert table.stats.demotions == 0

    def test_remove(self):
        table = TwoTierTable(2)
        table.access("a")
        assert table.remove("a") == 1
        assert table.remove("a") is None
        assert "a" not in table

    def test_clear(self):
        table = TwoTierTable(2)
        table.access("a")
        table.access("a")
        table.clear()
        assert len(table) == 0
        assert table.tier_of("a") is None


class TestViews:
    def test_items_lists_both_tiers(self):
        table = TwoTierTable(4)
        table.access("hot")
        table.access("hot")
        table.access("cold")
        entries = {key: (tally, tier) for key, tally, tier in table.items()}
        assert entries == {"hot": (2, TIER2), "cold": (1, TIER1)}

    def test_len_spans_tiers(self):
        table = TwoTierTable(4)
        table.access("a")
        table.access("a")
        table.access("b")
        assert len(table) == 2

    def test_recency_and_frequency_balance(self):
        """The two-tier design keeps a frequent-but-stale entry while a
        purely-LRU structure of the same total size would have lost it."""
        table = TwoTierTable(2, 2)
        table.access("hot")
        table.access("hot")  # hot parked in T2
        # Flood T1 with one-hit wonders -- more than total capacity.
        for i in range(10):
            table.access(f"noise-{i}")
        assert "hot" in table
        assert table.tier_of("hot") == TIER2
