"""Tests for read/write-typed correlation analysis (paper §II-A, §V)."""

import pytest

from repro.core.config import AnalyzerConfig
from repro.core.typed import (
    CorrelationKind,
    TypedOnlineAnalyzer,
    TypeTally,
)
from repro.monitor.events import BlockIOEvent
from repro.monitor.transaction import Transaction
from repro.trace.record import OpType

from conftest import ext, pair

R, W = OpType.READ, OpType.WRITE


def typed_analyzer(**overrides):
    defaults = dict(item_capacity=64, correlation_capacity=64)
    defaults.update(overrides)
    return TypedOnlineAnalyzer(AnalyzerConfig(**defaults))


class TestTypeTally:
    def test_bump_and_total(self):
        tally = TypeTally()
        tally.bump(CorrelationKind.READ)
        tally.bump(CorrelationKind.READ)
        tally.bump(CorrelationKind.WRITE)
        assert tally.total == 3
        assert tally.dominant() is CorrelationKind.READ

    def test_dominant_tiebreak(self):
        tally = TypeTally(read=2, write=2, mixed=1)
        assert tally.dominant() is CorrelationKind.READ
        tally = TypeTally(read=0, write=2, mixed=2)
        assert tally.dominant() is CorrelationKind.WRITE


class TestTypedProcessing:
    def test_read_pair_classified(self):
        analyzer = typed_analyzer()
        analyzer.process_typed([(ext(1), R), (ext(2), R)])
        tally = analyzer.type_tally(pair(1, 2))
        assert tally.read == 1 and tally.write == 0 and tally.mixed == 0

    def test_write_pair_classified(self):
        analyzer = typed_analyzer()
        analyzer.process_typed([(ext(1), W), (ext(2), W)])
        assert analyzer.type_tally(pair(1, 2)).write == 1

    def test_mixed_pair_classified(self):
        analyzer = typed_analyzer()
        analyzer.process_typed([(ext(1), R), (ext(2), W)])
        assert analyzer.type_tally(pair(1, 2)).mixed == 1

    def test_duplicate_extents_keep_first_op(self):
        analyzer = typed_analyzer()
        analyzer.process_typed([(ext(1), R), (ext(1), W), (ext(2), R)])
        tally = analyzer.type_tally(pair(1, 2))
        assert tally.read == 1 and tally.mixed == 0

    def test_tables_match_untyped_behaviour(self):
        """Typed processing must drive the same synopsis updates."""
        from repro.core.analyzer import OnlineAnalyzer
        typed = typed_analyzer()
        plain = OnlineAnalyzer(AnalyzerConfig(item_capacity=64,
                                              correlation_capacity=64))
        stream = [
            [(ext(1), R), (ext(2), R)],
            [(ext(1), W), (ext(3), W)],
            [(ext(1), R), (ext(2), R)],
        ]
        for txn in stream:
            typed.process_typed(txn)
            plain.process([extent for extent, _op in txn])
        assert typed.pair_frequencies() == plain.pair_frequencies()

    def test_process_transaction_adapter(self):
        analyzer = typed_analyzer()
        txn = Transaction([
            BlockIOEvent(0.0, 1, R, 10, 1),
            BlockIOEvent(1e-5, 1, W, 20, 1),
        ])
        analyzer.process_transaction(txn)
        assert analyzer.type_tally(pair(10, 20)).mixed == 1

    def test_eviction_prunes_type_sidecar(self):
        analyzer = typed_analyzer(item_capacity=64, correlation_capacity=1)
        analyzer.process_typed([(ext(1), R), (ext(2), R)])
        analyzer.process_typed([(ext(3), R), (ext(4), R)])
        analyzer.process_typed([(ext(5), R), (ext(6), R)])
        # Only resident pairs keep type info.
        resident = set(analyzer.pair_frequencies())
        typed = {p for p in (pair(1, 2), pair(3, 4), pair(5, 6))
                 if analyzer.type_tally(p) is not None}
        assert typed <= resident


class TestTypedQueries:
    def _mixed_stream(self, analyzer):
        for _ in range(5):
            analyzer.process_typed([(ext(1), R), (ext(2), R)])     # read pair
            analyzer.process_typed([(ext(10), W), (ext(20), W)])   # write pair
        analyzer.process_typed([(ext(30), R), (ext(40), W)])       # mixed once

    def test_read_and_write_correlations(self):
        analyzer = typed_analyzer()
        self._mixed_stream(analyzer)
        reads = [p for p, _t in analyzer.read_correlations(min_support=2)]
        writes = [p for p, _t in analyzer.write_correlations(min_support=2)]
        assert reads == [pair(1, 2)]
        assert writes == [pair(10, 20)]

    def test_purity_filter(self):
        analyzer = typed_analyzer()
        for _ in range(3):
            analyzer.process_typed([(ext(1), R), (ext(2), R)])
        for _ in range(2):
            analyzer.process_typed([(ext(1), W), (ext(2), W)])
        # 3/5 read: passes purity 0.5, fails purity 0.8.
        assert analyzer.frequent_pairs_of_kind(
            CorrelationKind.READ, min_support=2, purity=0.5
        )
        assert not analyzer.frequent_pairs_of_kind(
            CorrelationKind.READ, min_support=2, purity=0.8
        )

    def test_purity_validation(self):
        analyzer = typed_analyzer()
        with pytest.raises(ValueError):
            analyzer.frequent_pairs_of_kind(CorrelationKind.READ, purity=1.5)

    def test_kind_summary(self):
        analyzer = typed_analyzer()
        self._mixed_stream(analyzer)
        summary = analyzer.kind_summary()
        assert summary[CorrelationKind.READ] >= 1
        assert summary[CorrelationKind.WRITE] >= 1
        assert summary[CorrelationKind.MIXED] >= 1

    def test_reset_clears_types(self):
        analyzer = typed_analyzer()
        self._mixed_stream(analyzer)
        analyzer.reset()
        assert analyzer.type_tally(pair(1, 2)) is None
        assert analyzer.kind_summary() == {
            kind: 0 for kind in CorrelationKind
        }
