"""Tests for the segmented write-ahead journal (repro.resilience.wal).

Pins the on-disk contract the durability story stands on: CRC-framed
records inside magic-headed segments, monotone sequence numbers that
survive reopen, rotation by size, torn-tail-tolerant replay, mid-log
corruption containment, checkpoint-cut truncation, and the read-only
mode a warm standby tails with.
"""

import json
import struct
import zlib

import pytest

from repro.monitor.events import BlockIOEvent
from repro.resilience.faults import flip_bits, truncate_tail
from repro.resilience.wal import (
    DEFAULT_FSYNC_INTERVAL,
    FsyncPolicy,
    META_FILENAME,
    WalMeta,
    WalReplayStats,
    WriteAheadLog,
    event_from_payload,
    event_to_payload,
    read_wal_meta,
    write_wal_meta,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.trace.record import OpType


def event(ts, start, length=8, op=OpType.READ, pid=0, latency=None, pgid=0):
    return BlockIOEvent(ts, pid, op, start, length, latency, pgid)


def events(n, base=0.0):
    return [event(base + i * 1e-3, 100 + i * 8) for i in range(n)]


def make_wal(directory, **kw):
    kw.setdefault("fsync", FsyncPolicy.NEVER)
    return WriteAheadLog(directory, **kw)


def replay_all(wal, after_seq=0):
    stats = WalReplayStats()
    records = list(wal.replay(after_seq=after_seq, stats=stats))
    return records, stats


# ---------------------------------------------------------------------------
# Event codec
# ---------------------------------------------------------------------------

class TestEventCodec:
    def test_roundtrip_minimal(self):
        original = event(1.5, 4096, 16)
        assert event_from_payload(event_to_payload(original)) == original

    def test_roundtrip_full(self):
        original = event(2.25, 8192, 32, op=OpType.WRITE, pid=42,
                         latency=0.004, pgid=7)
        assert event_from_payload(event_to_payload(original)) == original

    def test_payload_is_compact(self):
        """Default fields are elided so journalled bytes stay small."""
        payload = event_to_payload(event(1.0, 100))
        assert set(payload) == {"ts", "op", "start", "len"}


# ---------------------------------------------------------------------------
# Append / replay roundtrip
# ---------------------------------------------------------------------------

class TestAppendReplay:
    def test_roundtrip_preserves_everything(self, tmp_path):
        with make_wal(tmp_path) as wal:
            seqs = [
                wal.append(events(3), tenant="acme",
                           producer="p-1", pseq=1),
                wal.append(events(2, base=1.0), tenant="",
                           producer="p-1", pseq=2),
                wal.append(events(1, base=2.0)),
            ]
        records, stats = replay_all(make_wal(tmp_path))
        assert [record.seq for record in records] == seqs == [1, 2, 3]
        assert records[0].tenant == "acme"
        assert records[0].producer == "p-1" and records[0].pseq == 1
        assert records[0].events == events(3)
        assert records[2].producer is None and records[2].pseq is None
        assert stats.records_replayed == 3
        assert stats.events_replayed == 6
        assert not stats.torn_tail and stats.corrupt_records == 0

    def test_after_seq_skips_covered_records(self, tmp_path):
        with make_wal(tmp_path) as wal:
            for i in range(5):
                wal.append(events(1, base=float(i)))
            records, stats = replay_all(wal, after_seq=3)
        assert [record.seq for record in records] == [4, 5]
        assert stats.records_skipped == 3

    def test_seq_monotone_across_reopen(self, tmp_path):
        with make_wal(tmp_path) as wal:
            assert wal.append(events(1)) == 1
            assert wal.append(events(1)) == 2
        with make_wal(tmp_path) as wal:
            assert wal.last_seq == 2
            assert wal.append(events(1)) == 3
        records, _ = replay_all(make_wal(tmp_path))
        assert [record.seq for record in records] == [1, 2, 3]

    def test_bodies_are_ndjson(self, tmp_path):
        """Each record body is one JSON line -- a segment is greppable."""
        with make_wal(tmp_path) as wal:
            wal.append(events(2), tenant="t0")
            path = wal.active_segment
        blob = path.read_bytes()
        line = blob[blob.index(b"{"):blob.index(b"\n") + 1]
        parsed = json.loads(line)
        assert parsed["seq"] == 1 and parsed["tenant"] == "t0"
        assert len(parsed["events"]) == 2

    def test_append_on_closed_log_raises(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.close()
        with pytest.raises(ValueError, match="closed"):
            wal.append(events(1))

    def test_empty_directory_replays_nothing(self, tmp_path):
        records, stats = replay_all(make_wal(tmp_path))
        assert records == [] and stats.records_replayed == 0


# ---------------------------------------------------------------------------
# Fsync policy
# ---------------------------------------------------------------------------

class TestFsyncPolicy:
    @pytest.mark.parametrize("raw,expected", [
        ("always", FsyncPolicy.ALWAYS),
        ("INTERVAL", FsyncPolicy.INTERVAL),
        ("  never ", FsyncPolicy.NEVER),
        (FsyncPolicy.ALWAYS, FsyncPolicy.ALWAYS),
    ])
    def test_parse(self, raw, expected):
        assert FsyncPolicy.parse(raw) is expected

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown fsync policy"):
            FsyncPolicy.parse("sometimes")

    def test_always_fsyncs_every_append(self, tmp_path):
        registry = MetricsRegistry()
        with make_wal(tmp_path, fsync="always", registry=registry) as wal:
            for i in range(3):
                wal.append(events(1, base=float(i)))
        counter = registry.counter("repro_wal_fsyncs_total", "")
        assert counter.value >= 3

    def test_interval_batches_fsyncs(self, tmp_path):
        """A fake clock that never advances: one leading fsync at most."""
        registry = MetricsRegistry()
        with make_wal(tmp_path, fsync="interval", fsync_interval=3600.0,
                      clock=lambda: 0.0, registry=registry) as wal:
            for i in range(50):
                wal.append(events(1, base=float(i)))
            mid_run = registry.counter("repro_wal_fsyncs_total", "").value
        assert mid_run == 0  # interval never elapsed under the fake clock

    def test_sync_forces_durability_now(self, tmp_path):
        registry = MetricsRegistry()
        with make_wal(tmp_path, fsync="never", registry=registry) as wal:
            wal.append(events(1))
            wal.sync()
            assert registry.counter("repro_wal_fsyncs_total", "").value == 1

    def test_invalid_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_interval"):
            make_wal(tmp_path, fsync_interval=0.0)


# ---------------------------------------------------------------------------
# Segments: rotation, naming, torn tails, corruption
# ---------------------------------------------------------------------------

class TestSegments:
    def test_rotation_by_size(self, tmp_path):
        with make_wal(tmp_path, segment_bytes=1024) as wal:
            for i in range(40):
                wal.append(events(4, base=float(i)))
            segments = wal.segments()
        assert len(segments) > 1
        firsts = [int(path.name[len("wal-"):-len(".seg")])
                  for path in segments]
        assert firsts == sorted(firsts) and firsts[0] == 1
        records, stats = replay_all(make_wal(tmp_path, segment_bytes=1024))
        assert [record.seq for record in records] == list(range(1, 41))
        assert stats.segments_scanned == len(segments)

    def test_torn_tail_tolerated(self, tmp_path):
        with make_wal(tmp_path) as wal:
            for i in range(5):
                wal.append(events(2, base=float(i)))
            path = wal.active_segment
        truncate_tail(path, 7)  # tear into the final record's body
        records, stats = replay_all(make_wal(tmp_path, readonly=True))
        assert [record.seq for record in records] == [1, 2, 3, 4]
        assert stats.torn_tail
        assert stats.corrupt_records == 0  # a torn *tail* is not corruption

    def test_append_after_torn_tail_starts_fresh_segment(self, tmp_path):
        """New records must never interleave with half of an old one."""
        with make_wal(tmp_path) as wal:
            wal.append(events(1))
            wal.append(events(1, base=1.0))
            torn = wal.active_segment
        truncate_tail(torn, 5)
        with make_wal(tmp_path) as wal:
            assert wal.last_seq == 1  # the torn record never happened
            assert wal.append(events(1, base=2.0)) == 2
            assert wal.active_segment != torn
        records, stats = replay_all(make_wal(tmp_path, readonly=True))
        assert [record.seq for record in records] == [1, 2]
        assert stats.torn_tail  # the old segment still ends torn

    def test_crc_failure_abandons_rest_of_segment(self, tmp_path):
        with make_wal(tmp_path, segment_bytes=1024) as wal:
            for i in range(40):
                wal.append(events(4, base=float(i)))
            segments = wal.segments()
        assert len(segments) >= 3
        victim = segments[1]
        blob = victim.read_bytes()
        # Flip a bit inside the middle segment's payload area.
        victim.write_bytes(blob[:40] + flip_bits(blob[40:], flips=1, seed=7))
        records, stats = replay_all(make_wal(tmp_path, readonly=True,
                                             segment_bytes=1024))
        seqs = [record.seq for record in records]
        assert stats.corrupt_records >= 1
        # Everything before the corruption and everything in later
        # segments survives; only the damaged segment's remainder is lost.
        later_first = int(segments[2].name[len("wal-"):-len(".seg")])
        assert all(seq in seqs for seq in range(later_first, 41))
        assert seqs == sorted(seqs)

    def test_bad_magic_rejects_segment_but_not_log(self, tmp_path):
        with make_wal(tmp_path, segment_bytes=1024) as wal:
            for i in range(40):
                wal.append(events(4, base=float(i)))
            segments = wal.segments()
        assert len(segments) >= 2
        blob = segments[0].read_bytes()
        segments[0].write_bytes(b"NOTWAL" + blob[6:])
        records, stats = replay_all(make_wal(tmp_path, readonly=True,
                                             segment_bytes=1024))
        assert stats.corrupt_records >= 1
        assert records  # later segments still replay

    def test_record_framing_layout(self, tmp_path):
        """u32 length || u32 crc32 || body, after the segment magic."""
        with make_wal(tmp_path) as wal:
            wal.append(events(1))
            path = wal.active_segment
        blob = path.read_bytes()
        assert blob.startswith(b"RTWAL\x01")
        length, crc = struct.unpack_from("<II", blob, 6)
        body = blob[14:14 + length]
        assert len(body) == length
        assert zlib.crc32(body) == crc
        assert json.loads(body)["seq"] == 1


# ---------------------------------------------------------------------------
# Truncation (checkpoint cut)
# ---------------------------------------------------------------------------

class TestTruncation:
    def test_truncate_removes_covered_segments(self, tmp_path):
        with make_wal(tmp_path, segment_bytes=1024) as wal:
            for i in range(40):
                wal.append(events(4, base=float(i)))
            before = len(wal.segments())
            assert before > 2
            cut_seq = 20
            removed = wal.truncate_through(cut_seq)
            assert removed >= 1
            records, _ = replay_all(wal)
        # Nothing above the cut was lost.
        assert {record.seq for record in records} >= set(range(21, 41))

    def test_full_cut_on_quiescent_log_reclaims_everything(self, tmp_path):
        with make_wal(tmp_path, segment_bytes=1024) as wal:
            for i in range(10):
                wal.append(events(2, base=float(i)))
            wal.truncate_through(wal.last_seq)
            # Only the freshly rotated (empty) active segment remains.
            assert len(wal.segments()) == 1
            records, _ = replay_all(wal)
            assert records == []
            # Sequence numbering is preserved across the cut.
            assert wal.append(events(1, base=99.0)) == 11

    def test_truncate_noop_below_any_segment(self, tmp_path):
        with make_wal(tmp_path) as wal:
            wal.append(events(1))
            assert wal.truncate_through(0) == 0
            records, _ = replay_all(wal)
            assert len(records) == 1


# ---------------------------------------------------------------------------
# Meta file (checkpoint cut + producer high-marks)
# ---------------------------------------------------------------------------

class TestWalMeta:
    def test_roundtrip(self, tmp_path):
        write_wal_meta(tmp_path, WalMeta(checkpoint_seq=17,
                                         producers={"p-1": 9, "p-2": 3}))
        meta = read_wal_meta(tmp_path)
        assert meta.checkpoint_seq == 17
        assert meta.producers == {"p-1": 9, "p-2": 3}

    def test_missing_meta_degrades_to_empty_cut(self, tmp_path):
        meta = read_wal_meta(tmp_path)
        assert meta.checkpoint_seq == 0 and meta.producers == {}

    def test_corrupt_meta_degrades_to_empty_cut(self, tmp_path):
        (tmp_path / META_FILENAME).write_text("{not json")
        assert read_wal_meta(tmp_path).checkpoint_seq == 0

    def test_rewrite_is_atomic_replace(self, tmp_path):
        write_wal_meta(tmp_path, WalMeta(checkpoint_seq=1))
        write_wal_meta(tmp_path, WalMeta(checkpoint_seq=2))
        assert read_wal_meta(tmp_path).checkpoint_seq == 2
        leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []


# ---------------------------------------------------------------------------
# Read-only mode (warm standby)
# ---------------------------------------------------------------------------

class TestReadonly:
    def test_readonly_never_creates_segments(self, tmp_path):
        wal = make_wal(tmp_path, readonly=True)
        assert wal.segments() == []
        assert list(tmp_path.iterdir()) == []  # no active segment created

    def test_readonly_append_raises(self, tmp_path):
        wal = make_wal(tmp_path, readonly=True)
        with pytest.raises(ValueError, match="readonly"):
            wal.append(events(1))

    def test_readonly_sees_live_appends(self, tmp_path):
        """A tailer re-reads segments from disk on every replay call."""
        writer = make_wal(tmp_path)
        tailer = make_wal(tmp_path, readonly=True)
        writer.append(events(1))
        first, _ = replay_all(tailer)
        assert [record.seq for record in first] == [1]
        writer.append(events(1, base=1.0))
        second = list(tailer.replay(after_seq=1))
        assert [record.seq for record in second] == [2]
        writer.close()

    def test_defaults_are_sane(self):
        assert DEFAULT_FSYNC_INTERVAL > 0
