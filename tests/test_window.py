"""Tests for transaction window policies (paper Section III-B)."""

import pytest

from repro.monitor.latency import EwmaLatencyTracker
from repro.monitor.window import DynamicLatencyWindow, StaticWindow


class TestStaticWindow:
    def test_fixed_duration(self):
        window = StaticWindow(0.5e-3)
        assert window.duration() == 0.5e-3
        window.observe_latency(10.0)  # latencies are ignored
        assert window.duration() == 0.5e-3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            StaticWindow(0.0)


class TestDynamicLatencyWindow:
    def test_paper_multiplier_of_two(self):
        """Paper: 'a transaction window size of double the average I/O
        latency'."""
        tracker = EwmaLatencyTracker()
        window = DynamicLatencyWindow(tracker)
        tracker.observe(100e-6)
        assert window.duration() == pytest.approx(200e-6)

    def test_window_tracks_latency_shift(self):
        window = DynamicLatencyWindow(EwmaLatencyTracker(alpha=1.0))
        window.observe_latency(50e-6)
        before = window.duration()
        window.observe_latency(500e-6)
        assert window.duration() == pytest.approx(10 * before)

    def test_floor_clamp(self):
        window = DynamicLatencyWindow(floor=1e-4)
        window.observe_latency(1e-9)
        assert window.duration() == 1e-4

    def test_ceiling_clamp(self):
        window = DynamicLatencyWindow(ceiling=10e-3)
        window.observe_latency(100.0)
        assert window.duration() == 10e-3

    def test_cold_start_uses_tracker_prior(self):
        window = DynamicLatencyWindow(EwmaLatencyTracker(initial=1e-3))
        assert window.duration() == pytest.approx(2e-3)

    def test_custom_multiplier(self):
        window = DynamicLatencyWindow(multiplier=4.0)
        window.observe_latency(100e-6)
        assert window.duration() == pytest.approx(400e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicLatencyWindow(multiplier=0.0)
        with pytest.raises(ValueError):
            DynamicLatencyWindow(floor=0.0)
        with pytest.raises(ValueError):
            DynamicLatencyWindow(floor=1.0, ceiling=0.5)

    def test_default_tracker_created(self):
        window = DynamicLatencyWindow()
        window.observe_latency(1e-3)
        assert window.tracker.count == 1
