"""Tests for the Zipf rank distribution."""

import random

import pytest

from repro.workloads.zipf import ZipfRanks, empirical_frequencies


class TestZipfRanks:
    def test_paper_four_rank_probabilities(self):
        """Paper Section IV-B1: with four correlations, 48/24/16/12 %."""
        ranks = ZipfRanks(4)
        assert ranks.probabilities == pytest.approx(
            [0.48, 0.24, 0.16, 0.12]
        )

    def test_probabilities_sum_to_one(self):
        for n in (1, 5, 100):
            assert sum(ZipfRanks(n).probabilities) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probs = ZipfRanks(20, exponent=0.8).probabilities
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_zero_exponent_is_uniform(self):
        probs = ZipfRanks(4, exponent=0.0).probabilities
        assert probs == pytest.approx([0.25] * 4)

    def test_probability_accessor_bounds(self):
        ranks = ZipfRanks(3)
        assert ranks.probability(1) == max(ranks.probabilities)
        with pytest.raises(ValueError):
            ranks.probability(0)
        with pytest.raises(ValueError):
            ranks.probability(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfRanks(0)
        with pytest.raises(ValueError):
            ZipfRanks(3, exponent=-1.0)

    def test_sampling_matches_distribution(self):
        ranks = ZipfRanks(4)
        rng = random.Random(7)
        samples = ranks.sample_many(rng, 40000)
        observed = empirical_frequencies(samples, 4)
        for got, want in zip(observed, ranks.probabilities):
            assert got == pytest.approx(want, abs=0.01)

    def test_samples_in_range(self):
        ranks = ZipfRanks(6)
        rng = random.Random(3)
        assert all(1 <= s <= 6 for s in ranks.sample_many(rng, 1000))


class TestEmpiricalFrequencies:
    def test_basic(self):
        assert empirical_frequencies([1, 1, 2, 3], 3) == pytest.approx(
            [0.5, 0.25, 0.25]
        )

    def test_empty(self):
        assert empirical_frequencies([], 3) == [0.0, 0.0, 0.0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            empirical_frequencies([5], 3)
