"""Tests for the zoned-namespace (ZNS) placement model."""

import pytest

from repro.core.analyzer import OnlineAnalyzer
from repro.core.config import AnalyzerConfig
from repro.optimize.multistream import (
    CorrelationStreamAssigner,
    SingleStreamAssigner,
    death_time_workload,
)
from repro.optimize.zns import ZnsConfig, ZnsDevice, run_zns_experiment

from conftest import ext


def small_zns(**overrides):
    defaults = dict(zones=16, zone_pages=16, open_zone_limit=4,
                    reserved_zones=2)
    defaults.update(overrides)
    return ZnsConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZnsConfig(zones=1)
        with pytest.raises(ValueError):
            ZnsConfig(open_zone_limit=0)
        with pytest.raises(ValueError):
            ZnsConfig(open_zone_limit=32, zones=32)
        with pytest.raises(ValueError):
            ZnsConfig(reserved_zones=0)

    def test_capacities(self):
        config = small_zns()
        assert config.capacity_pages == 256
        assert config.logical_capacity_pages == (16 - 6) * 16


class TestDevice:
    def test_sequential_write_pointer(self):
        device = ZnsDevice(small_zns())
        for lba in range(10):
            device.write(lba, group=0)
        validity = device.zone_validity()
        assert sum(validity) == 10
        # All ten pages landed sequentially in one zone.
        assert max(validity) == 10

    def test_groups_use_distinct_open_zones(self):
        device = ZnsDevice(small_zns())
        for lba in range(8):
            device.write(lba, group=0)
        for lba in range(100, 108):
            device.write(lba, group=1)
        populated = [count for count in device.zone_validity() if count > 0]
        assert len(populated) == 2

    def test_groups_beyond_limit_share_zones(self):
        config = small_zns(open_zone_limit=2)
        device = ZnsDevice(config)
        device.write(0, group=0)
        device.write(1, group=2)  # 2 % 2 == 0 -> same slot as group 0
        populated = [count for count in device.zone_validity() if count > 0]
        assert len(populated) == 1

    def test_overwrite_invalidates(self):
        device = ZnsDevice(small_zns())
        device.write(5)
        device.write(5)
        assert sum(device.zone_validity()) == 1

    def test_reclaim_resets_zones(self):
        config = small_zns()
        device = ZnsDevice(config)
        logical = config.logical_capacity_pages
        for _round in range(3):
            for lba in range(logical):
                device.write(lba)
        assert device.stats.resets > 0
        assert device.stats.waf >= 1.0

    def test_capacity_enforced(self):
        config = small_zns()
        device = ZnsDevice(config)
        for lba in range(config.logical_capacity_pages):
            device.write(lba)
        with pytest.raises(RuntimeError):
            device.write(10 ** 9)

    def test_write_extent_pages(self):
        device = ZnsDevice(small_zns())
        device.write_extent(ext(0, 17), page_blocks=8)
        assert device.stats.host_writes == 3


class TestZnsExperiment:
    def test_correlation_groups_reduce_reclaim_copies(self):
        """The §V death-time argument transfers to zones: grouping
        correlated writes into zones cuts reclaim copying."""
        transactions = death_time_workload(
            hot_groups=4, extent_blocks=64, rounds=240,
            cold_extents=120, seed=3,
        )
        analyzer = OnlineAnalyzer(AnalyzerConfig(
            item_capacity=256, correlation_capacity=256
        ))
        analyzer.process_stream(transactions)

        config = ZnsConfig(zones=32, zone_pages=16, open_zone_limit=8,
                           reserved_zones=4)
        single = run_zns_experiment(
            transactions, SingleStreamAssigner(), config
        )
        grouped = run_zns_experiment(
            transactions,
            CorrelationStreamAssigner(analyzer, streams=8),
            config,
        )
        assert single.host_writes == grouped.host_writes
        assert single.waf > 1.0
        assert grouped.waf < single.waf
